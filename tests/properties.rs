//! Property-based tests: random traces and random directory-op sequences
//! must never violate an invariant.

use proptest::prelude::*;
use stashdir::common::{BlockAddr, CoreId, SharerSet};
use stashdir::mem::{CacheConfig, ReplKind};
use stashdir::protocol::DirView;
use stashdir::{
    CoverageRatio, DirConfig, DirReplPolicy, DirSpec, DirectoryModel, EvictionAction, Machine,
    MemOp, SystemConfig,
};

/// A 4-core machine tiny enough that random 100-op traces hit every
/// conflict path.
fn tiny(dir: DirSpec, notify: bool, seed: u64) -> SystemConfig {
    SystemConfig {
        cores: 4,
        l1: CacheConfig::new(256, 2, 64, 1, ReplKind::Lru),
        l2: CacheConfig::new(512, 2, 64, 4, ReplKind::Lru),
        llc_bank: CacheConfig::new(1024, 2, 64, 8, ReplKind::Lru),
        dir,
        notify_clean_evictions: notify,
        seed,
        ..SystemConfig::default()
    }
    .with_check_interval(1)
}

fn arb_traces() -> impl Strategy<Value = Vec<Vec<MemOp>>> {
    let op = (0u64..40, prop::bool::ANY, 0u32..4).prop_map(|(block, write, think)| {
        let op = if write {
            MemOp::write(BlockAddr::new(block))
        } else {
            MemOp::read(BlockAddr::new(block))
        };
        op.with_think(think)
    });
    prop::collection::vec(prop::collection::vec(op, 0..120), 4)
}

fn arb_dir() -> impl Strategy<Value = DirSpec> {
    prop_oneof![
        Just(DirSpec::FullMap),
        Just(DirSpec::Sparse {
            coverage: CoverageRatio::new(1, 8),
            assoc: 2,
            repl: DirReplPolicy::Lru,
        }),
        Just(DirSpec::Stash {
            coverage: CoverageRatio::new(1, 8),
            assoc: 2,
            repl: DirReplPolicy::PrivateFirstLru,
        }),
        Just(DirSpec::Stash {
            coverage: CoverageRatio::new(1, 16),
            assoc: 1,
            repl: DirReplPolicy::Lru,
        }),
        Just(DirSpec::Cuckoo {
            coverage: CoverageRatio::new(1, 8),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The machine-wide soundness property: any trace, any organization,
    /// either eviction-notification mode — the invariant checker runs
    /// after every transaction and must stay silent, and every op must
    /// retire.
    #[test]
    fn any_trace_runs_coherently(
        traces in arb_traces(),
        dir in arb_dir(),
        notify in prop::bool::ANY,
        seed in 0u64..1000,
    ) {
        let expected: u64 = traces.iter().map(|t| t.len() as u64).sum();
        let report = Machine::new(tiny(dir, notify, seed)).run(traces);
        prop_assert!(report.violations.is_empty(), "{:?}", &report.violations[..report.violations.len().min(3)]);
        prop_assert_eq!(report.completed_ops, expected);
    }

    /// Determinism: identical inputs give identical statistics.
    #[test]
    fn runs_are_deterministic(
        traces in arb_traces(),
        seed in 0u64..100,
    ) {
        let dir = DirSpec::stash(CoverageRatio::new(1, 8));
        let a = Machine::new(tiny(dir, true, seed)).run(traces.clone());
        let b = Machine::new(tiny(dir, true, seed)).run(traces);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.sink, b.sink);
    }
}

/// Reference-model ops for the directory structures.
#[derive(Debug, Clone)]
enum DirOp {
    Install(u64, u16),
    InstallShared(u64, u16, u16),
    Remove(u64),
}

fn arb_dir_ops() -> impl Strategy<Value = Vec<DirOp>> {
    let op = prop_oneof![
        (0u64..64, 0u16..8).prop_map(|(b, c)| DirOp::Install(b, c)),
        (0u64..64, 0u16..8, 0u16..8).prop_map(|(b, c, d)| DirOp::InstallShared(b, c, d)),
        (0u64..64).prop_map(DirOp::Remove),
    ];
    prop::collection::vec(op, 0..200)
}

fn view_excl(core: u16) -> DirView {
    DirView::Exclusive(CoreId::new(core))
}

fn view_shared(a: u16, b: u16) -> DirView {
    let mut s = SharerSet::new(8);
    s.insert(CoreId::new(a));
    s.insert(CoreId::new(b));
    DirView::Shared(s)
}

fn apply(dir: &mut dyn DirectoryModel, ops: &[DirOp]) -> Vec<EvictionAction> {
    ops.iter()
        .map(|op| match op {
            DirOp::Install(b, c) => dir.install(BlockAddr::new(*b), view_excl(*c)),
            DirOp::InstallShared(b, c, d) => dir.install(BlockAddr::new(*b), view_shared(*c, *d)),
            DirOp::Remove(b) => {
                dir.remove(BlockAddr::new(*b));
                EvictionAction::None
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Structural properties every bounded directory organization must
    /// keep under arbitrary op sequences: capacity respected, no entry
    /// lost without an eviction action, silent evictions only for
    /// private views.
    #[test]
    fn directory_structures_account_for_every_entry(
        ops in arb_dir_ops(),
        which in 0usize..3,
    ) {
        let mut dir: Box<dyn DirectoryModel> = match which {
            0 => DirConfig::sparse(8, 2).build(1),
            1 => DirConfig::stash(8, 2).build(1),
            _ => DirConfig::cuckoo(16).build(1),
        };
        // Reference model: which blocks *should* be tracked.
        let mut tracked = std::collections::HashSet::new();
        for (op, action) in ops.iter().zip(apply(dir.as_mut(), &ops)) {
            match op {
                DirOp::Install(b, _) | DirOp::InstallShared(b, _, _) => {
                    tracked.insert(*b);
                }
                DirOp::Remove(b) => {
                    tracked.remove(b);
                }
            }
            match action {
                EvictionAction::None => {}
                EvictionAction::Silent { block, .. } => {
                    prop_assert!(tracked.remove(&block.get()), "silent-evicted unknown block");
                }
                EvictionAction::Invalidate { block, view } => {
                    prop_assert!(tracked.remove(&block.get()), "evicted unknown block");
                    prop_assert!(view != DirView::Untracked);
                }
            }
            prop_assert!(dir.occupancy() <= dir.capacity());
        }
        // Exactly the reference set is tracked.
        let entries: std::collections::HashSet<u64> =
            dir.entries().iter().map(|(b, _)| b.get()).collect();
        prop_assert_eq!(entries, tracked);
    }

    /// The stash directory's defining property: it never returns an
    /// invalidating eviction whose victim view is private.
    #[test]
    fn stash_never_invalidates_private_victims(ops in arb_dir_ops()) {
        let mut dir = DirConfig::stash(4, 2).build(3);
        for action in apply(dir.as_mut(), &ops) {
            if let EvictionAction::Invalidate { view, .. } = action {
                prop_assert!(!view.is_private(), "stash must hide private victims");
            }
        }
    }

    /// Sparse never evicts silently.
    #[test]
    fn sparse_never_evicts_silently(ops in arb_dir_ops()) {
        let mut dir = DirConfig::sparse(4, 2).build(3);
        for action in apply(dir.as_mut(), &ops) {
            let silent = matches!(action, EvictionAction::Silent { .. });
            prop_assert!(!silent, "sparse evicted silently");
        }
    }
}
