//! Cross-crate integration: every workload in the suite runs coherently
//! on every directory organization, with the machine-wide invariant
//! checker sampling throughout the run.

use stashdir::{CoverageRatio, DirSpec, Machine, SystemConfig, Workload};

/// A reduced machine (8 cores, quarter-size caches) so the whole matrix
/// stays fast while still exercising conflicts at every level.
fn small_config(dir: DirSpec) -> SystemConfig {
    use stashdir::mem::{CacheConfig, ReplKind};
    SystemConfig {
        cores: 8,
        l1: CacheConfig::new(8 * 1024, 4, 64, 1, ReplKind::Lru),
        l2: CacheConfig::new(64 * 1024, 8, 64, 8, ReplKind::Lru),
        llc_bank: CacheConfig::new(256 * 1024, 16, 64, 24, ReplKind::Lru),
        dir,
        ..SystemConfig::default()
    }
    .with_check_interval(500)
}

#[test]
fn every_workload_is_coherent_under_stash_at_eighth() {
    for workload in Workload::suite() {
        let cfg = small_config(DirSpec::stash(CoverageRatio::new(1, 8)));
        let traces = workload.generate(cfg.cores, 3_000, 11);
        let report = Machine::new(cfg).run(traces);
        assert!(
            report.violations.is_empty(),
            "{workload}: {:?}",
            &report.violations[..report.violations.len().min(3)]
        );
        assert_eq!(report.completed_ops, 8 * 3_000, "{workload}");
    }
}

#[test]
fn every_workload_is_coherent_under_sparse_at_eighth() {
    for workload in Workload::suite() {
        let cfg = small_config(DirSpec::sparse(CoverageRatio::new(1, 8)));
        let traces = workload.generate(cfg.cores, 3_000, 12);
        let report = Machine::new(cfg).run(traces);
        assert!(
            report.violations.is_empty(),
            "{workload}: {:?}",
            &report.violations[..report.violations.len().min(3)]
        );
    }
}

#[test]
fn every_workload_is_coherent_under_cuckoo() {
    for workload in Workload::suite() {
        let cfg = small_config(DirSpec::Cuckoo {
            coverage: CoverageRatio::new(1, 8),
        });
        let traces = workload.generate(cfg.cores, 2_000, 13);
        let report = Machine::new(cfg).run(traces);
        assert!(
            report.violations.is_empty(),
            "{workload}: {:?}",
            &report.violations[..report.violations.len().min(3)]
        );
    }
}

#[test]
fn silent_clean_evictions_stay_coherent() {
    for workload in [Workload::Canneal, Workload::Migratory, Workload::Uniform] {
        let mut cfg = small_config(DirSpec::stash(CoverageRatio::new(1, 16)));
        cfg.notify_clean_evictions = false;
        let traces = workload.generate(cfg.cores, 3_000, 14);
        let report = Machine::new(cfg).run(traces);
        assert!(
            report.violations.is_empty(),
            "{workload}: {:?}",
            &report.violations[..report.violations.len().min(3)]
        );
    }
}

#[test]
fn scaling_to_32_cores_is_coherent() {
    let mut cfg = small_config(DirSpec::stash(CoverageRatio::new(1, 8)));
    cfg = cfg.with_cores(32);
    let traces = Workload::Fft.generate(32, 1_500, 15);
    let report = Machine::new(cfg).run(traces);
    report.assert_clean();
    assert_eq!(report.completed_ops, 32 * 1_500);
}

#[test]
fn every_workload_is_coherent_under_dls_and_opaque() {
    for dir in [DirSpec::Dls, DirSpec::opaque(CoverageRatio::new(1, 8))] {
        for workload in Workload::suite() {
            let cfg = small_config(dir);
            let traces = workload.generate(cfg.cores, 2_000, 17);
            let report = Machine::new(cfg).run(traces);
            assert!(
                report.violations.is_empty(),
                "{workload} on {dir}: {:?}",
                &report.violations[..report.violations.len().min(3)]
            );
            assert_eq!(report.completed_ops, 8 * 2_000, "{workload} on {dir}");
        }
    }
}

/// Regression: an Upgrade queued behind other transactions on its block
/// can lose its Shared copy to a crossing invalidation; an *overflowed*
/// limited-pointer entry claims every core, so the home cannot prune the
/// requester from the view and used to grant data-less permission to a
/// dead copy ("data-less grant targets a live copy" panic, E18 migratory
/// at 10k ops). The home now refills such upgrades with data, modelling
/// the requester's retry-as-GetM.
#[test]
fn overflowed_upgrade_crossing_an_inv_refills_data() {
    let spec = DirSpec::LimitedPtr {
        coverage: CoverageRatio::new(576, 4096),
        assoc: 9,
        k: 2,
    };
    let cfg = SystemConfig::default().with_dir(spec);
    let traces = Workload::Migratory.generate(cfg.cores, 6_000, 7);
    let report = Machine::new(cfg).run(traces);
    report.assert_clean();
    assert_eq!(report.completed_ops, 16 * 6_000);
}

#[test]
fn limited_pointer_formats_stay_coherent() {
    use stashdir::SharerFormat;
    for k in [1usize, 2] {
        for workload in [Workload::ReadMostly, Workload::Lu, Workload::Uniform] {
            let mut cfg = small_config(DirSpec::stash(CoverageRatio::new(1, 8)));
            cfg.sharer_format = SharerFormat::LimitedPtr { k };
            let traces = workload.generate(cfg.cores, 2_000, 16);
            let report = Machine::new(cfg).run(traces);
            assert!(
                report.violations.is_empty(),
                "{workload} ptr{k}: {:?}",
                &report.violations[..report.violations.len().min(3)]
            );
        }
    }
}
