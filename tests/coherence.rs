//! Cross-crate integration: every workload in the suite runs coherently
//! on every directory organization, with the machine-wide invariant
//! checker sampling throughout the run.

use stashdir::{CoverageRatio, DirSpec, Machine, SystemConfig, Workload};

/// A reduced machine (8 cores, quarter-size caches) so the whole matrix
/// stays fast while still exercising conflicts at every level.
fn small_config(dir: DirSpec) -> SystemConfig {
    use stashdir::mem::{CacheConfig, ReplKind};
    SystemConfig {
        cores: 8,
        l1: CacheConfig::new(8 * 1024, 4, 64, 1, ReplKind::Lru),
        l2: CacheConfig::new(64 * 1024, 8, 64, 8, ReplKind::Lru),
        llc_bank: CacheConfig::new(256 * 1024, 16, 64, 24, ReplKind::Lru),
        dir,
        ..SystemConfig::default()
    }
    .with_check_interval(500)
}

#[test]
fn every_workload_is_coherent_under_stash_at_eighth() {
    for workload in Workload::suite() {
        let cfg = small_config(DirSpec::stash(CoverageRatio::new(1, 8)));
        let traces = workload.generate(cfg.cores, 3_000, 11);
        let report = Machine::new(cfg).run(traces);
        assert!(
            report.violations.is_empty(),
            "{workload}: {:?}",
            &report.violations[..report.violations.len().min(3)]
        );
        assert_eq!(report.completed_ops, 8 * 3_000, "{workload}");
    }
}

#[test]
fn every_workload_is_coherent_under_sparse_at_eighth() {
    for workload in Workload::suite() {
        let cfg = small_config(DirSpec::sparse(CoverageRatio::new(1, 8)));
        let traces = workload.generate(cfg.cores, 3_000, 12);
        let report = Machine::new(cfg).run(traces);
        assert!(
            report.violations.is_empty(),
            "{workload}: {:?}",
            &report.violations[..report.violations.len().min(3)]
        );
    }
}

#[test]
fn every_workload_is_coherent_under_cuckoo() {
    for workload in Workload::suite() {
        let cfg = small_config(DirSpec::Cuckoo {
            coverage: CoverageRatio::new(1, 8),
        });
        let traces = workload.generate(cfg.cores, 2_000, 13);
        let report = Machine::new(cfg).run(traces);
        assert!(
            report.violations.is_empty(),
            "{workload}: {:?}",
            &report.violations[..report.violations.len().min(3)]
        );
    }
}

#[test]
fn silent_clean_evictions_stay_coherent() {
    for workload in [Workload::Canneal, Workload::Migratory, Workload::Uniform] {
        let mut cfg = small_config(DirSpec::stash(CoverageRatio::new(1, 16)));
        cfg.notify_clean_evictions = false;
        let traces = workload.generate(cfg.cores, 3_000, 14);
        let report = Machine::new(cfg).run(traces);
        assert!(
            report.violations.is_empty(),
            "{workload}: {:?}",
            &report.violations[..report.violations.len().min(3)]
        );
    }
}

#[test]
fn scaling_to_32_cores_is_coherent() {
    let mut cfg = small_config(DirSpec::stash(CoverageRatio::new(1, 8)));
    cfg = cfg.with_cores(32);
    let traces = Workload::Fft.generate(32, 1_500, 15);
    let report = Machine::new(cfg).run(traces);
    report.assert_clean();
    assert_eq!(report.completed_ops, 32 * 1_500);
}

#[test]
fn limited_pointer_formats_stay_coherent() {
    use stashdir::SharerFormat;
    for k in [1usize, 2] {
        for workload in [Workload::ReadMostly, Workload::Lu, Workload::Uniform] {
            let mut cfg = small_config(DirSpec::stash(CoverageRatio::new(1, 8)));
            cfg.sharer_format = SharerFormat::LimitedPtr { k };
            let traces = workload.generate(cfg.cores, 2_000, 16);
            let report = Machine::new(cfg).run(traces);
            assert!(
                report.violations.is_empty(),
                "{workload} ptr{k}: {:?}",
                &report.violations[..report.violations.len().min(3)]
            );
        }
    }
}
