//! The paper's qualitative claims as executable assertions: these are the
//! relationships the full experiment harness (crates/bench) quantifies.

use stashdir::{CostParams, CoverageRatio, DirConfig, DirSpec, Machine, SystemConfig, Workload};

fn run(dir: DirSpec, workload: Workload, ops: usize) -> stashdir::SimReport {
    let cfg = SystemConfig::default().with_dir(dir);
    let traces = workload.generate(cfg.cores, ops, 7);
    let report = Machine::new(cfg).run(traces);
    report.assert_clean();
    report
}

/// The headline: at 1/8 coverage, stash ≈ full-map while sparse suffers,
/// on the private-dominated workloads the paper's motivation describes.
#[test]
fn stash_at_eighth_matches_fullmap_where_sparse_degrades() {
    // Private-streaming: the case the paper's motivation describes, where
    // the separation is dramatic.
    let workload = Workload::DataParallel;
    let ideal = run(DirSpec::FullMap, workload, 8_000);
    let stash = run(DirSpec::stash(CoverageRatio::new(1, 8)), workload, 8_000);
    let sparse = run(DirSpec::sparse(CoverageRatio::new(1, 8)), workload, 8_000);
    let stash_ratio = stash.cycles as f64 / ideal.cycles as f64;
    let sparse_ratio = sparse.cycles as f64 / ideal.cycles as f64;
    assert!(
        stash_ratio < 1.05,
        "stash at 1/8 should be within 5% of ideal, got {stash_ratio:.3}"
    );
    assert!(
        sparse_ratio > 1.2,
        "sparse at 1/8 should degrade badly on private streaming, got {sparse_ratio:.3}"
    );
}

/// On footprint-dominated, incidentally-shared workloads (canneal), both
/// under-provisioned organizations stay close to ideal and to each
/// other: the bottleneck is the LLC, not the directory.
#[test]
fn canneal_is_a_statistical_tie() {
    let workload = Workload::Canneal;
    let ideal = run(DirSpec::FullMap, workload, 8_000);
    let stash = run(DirSpec::stash(CoverageRatio::new(1, 8)), workload, 8_000);
    let sparse = run(DirSpec::sparse(CoverageRatio::new(1, 8)), workload, 8_000);
    let stash_ratio = stash.cycles as f64 / ideal.cycles as f64;
    let sparse_ratio = sparse.cycles as f64 / ideal.cycles as f64;
    assert!(stash_ratio < 1.12, "stash {stash_ratio:.3}");
    assert!(sparse_ratio < 1.12, "sparse {sparse_ratio:.3}");
    assert!(
        (stash_ratio - sparse_ratio).abs() < 0.05,
        "stash {stash_ratio:.3} vs sparse {sparse_ratio:.3} should be close"
    );
}

/// Directory-induced invalidations: near-zero for stash, large for sparse
/// under pressure (experiment E4's shape).
#[test]
fn stash_eliminates_directory_induced_invalidations() {
    let workload = Workload::DataParallel;
    let stash = run(DirSpec::stash(CoverageRatio::new(1, 8)), workload, 8_000);
    let sparse = run(DirSpec::sparse(CoverageRatio::new(1, 8)), workload, 8_000);
    assert!(sparse.invalidations_per_kop() > 100.0 * stash.invalidations_per_kop().max(0.01));
    assert!(stash.silent_eviction_fraction() > 0.95);
}

/// Discoveries are rare relative to the invalidations sparse pays
/// (experiment E6's justification for the broadcast).
#[test]
fn discoveries_are_rare() {
    for workload in [Workload::DataParallel, Workload::Stencil, Workload::Lu] {
        let stash = run(DirSpec::stash(CoverageRatio::new(1, 8)), workload, 8_000);
        let sparse = run(DirSpec::sparse(CoverageRatio::new(1, 8)), workload, 8_000);
        assert!(
            stash.discoveries_per_kop() < sparse.invalidations_per_kop().max(1.0),
            "{workload}: discoveries/kop {:.2} vs sparse invalidations/kop {:.2}",
            stash.discoveries_per_kop(),
            sparse.invalidations_per_kop()
        );
    }
}

/// Traffic: the stash directory's total NoC traffic at 1/8 stays below
/// the sparse directory's (discovery probes cost less than the
/// invalidation + refetch storm they replace) — experiment E7's shape.
#[test]
fn stash_traffic_beats_sparse_under_pressure() {
    let workload = Workload::DataParallel;
    let stash = run(DirSpec::stash(CoverageRatio::new(1, 8)), workload, 8_000);
    let sparse = run(DirSpec::sparse(CoverageRatio::new(1, 8)), workload, 8_000);
    assert!(
        stash.flit_hops() < sparse.flit_hops(),
        "stash {} vs sparse {}",
        stash.flit_hops(),
        sparse.flit_hops()
    );
}

/// The storage claim (E10): an eighth-size stash directory costs well
/// under half the bits of the full-size sparse directory it replaces,
/// even counting the per-LLC-line stash bits.
#[test]
fn storage_claim_holds() {
    let cfg = SystemConfig::default();
    let tracked = cfg.tracked_blocks_per_slice();
    let params: CostParams = cfg.cost_params();
    let sparse_full: Box<dyn stashdir::DirectoryModel> = DirSpec::sparse(CoverageRatio::FULL)
        .slice_config(tracked)
        .build(0);
    let stash_eighth: Box<dyn stashdir::DirectoryModel> = DirSpec::stash(CoverageRatio::new(1, 8))
        .slice_config(tracked)
        .build(0);
    // Per-slice stash bits: the chip-wide bits split across slices.
    let slice_params = CostParams {
        llc_lines: params.llc_lines / cfg.cores as u64,
        ..params
    };
    let sparse_bits = sparse_full.storage_bits(&slice_params);
    let stash_bits = stash_eighth.storage_bits(&slice_params);
    assert!(
        (stash_bits as f64) < 0.55 * sparse_bits as f64,
        "stash/8 {stash_bits} bits vs sparse {sparse_bits} bits"
    );
}

/// At generous coverage (2x), all organizations behave identically —
/// the differences only appear under pressure.
#[test]
fn generous_coverage_equalizes_everyone() {
    let workload = Workload::Stencil;
    let ideal = run(DirSpec::FullMap, workload, 6_000);
    for dir in [
        DirSpec::sparse(CoverageRatio::new(2, 1)),
        DirSpec::stash(CoverageRatio::new(2, 1)),
    ] {
        let r = run(dir, workload, 6_000);
        let ratio = r.cycles as f64 / ideal.cycles as f64;
        assert!(
            (0.98..1.02).contains(&ratio),
            "{dir:?} at 2x should match ideal, got {ratio:.3}"
        );
    }
}

/// DirConfig sizes follow coverage arithmetic end to end.
#[test]
fn coverage_resolves_to_expected_slice_entries() {
    let cfg = SystemConfig::default();
    assert_eq!(cfg.tracked_blocks_per_slice(), 4096);
    let slice: DirConfig = DirSpec::stash(CoverageRatio::new(1, 8)).slice_config(4096);
    assert_eq!(slice.entries(), 512);
}
