//! Workload characterization — the inputs to the paper's "Table 2".
//!
//! For a multi-core trace, computes the properties that determine how a
//! coherence directory behaves: read/write mix, footprint, **sharing
//! degree** (how many cores touch each block) and, crucially, the
//! **private-block fraction** — the share of blocks touched by exactly
//! one core, which is the opportunity the stash directory exploits.

use serde::{Deserialize, Serialize};
use stashdir_common::MemOp;
use std::collections::HashMap;

/// Summary statistics of one multi-core trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// Total operations.
    pub ops: u64,
    /// Fraction of operations that are reads.
    pub read_fraction: f64,
    /// Distinct blocks touched.
    pub footprint_blocks: u64,
    /// Mean number of distinct cores touching each block.
    pub mean_sharing_degree: f64,
    /// Fraction of blocks touched by exactly one core.
    pub private_block_fraction: f64,
    /// Fraction of blocks written by at least two cores.
    pub write_shared_fraction: f64,
}

impl Characterization {
    /// Computes the characterization of `traces`.
    pub fn of(traces: &[Vec<MemOp>]) -> Self {
        type CoreSet = std::collections::HashSet<usize>;
        let mut ops = 0u64;
        let mut reads = 0u64;
        // block -> (cores touching it, cores writing it)
        let mut toucher_sets: HashMap<u64, (CoreSet, CoreSet)> = HashMap::new();
        for (core, trace) in traces.iter().enumerate() {
            for op in trace {
                ops += 1;
                if !op.is_write() {
                    reads += 1;
                }
                let entry = toucher_sets.entry(op.block.get()).or_default();
                entry.0.insert(core);
                if op.is_write() {
                    entry.1.insert(core);
                }
            }
        }

        let footprint = toucher_sets.len() as u64;
        let (mut degree_sum, mut private, mut write_shared) = (0usize, 0u64, 0u64);
        for (readers, writers) in toucher_sets.values() {
            degree_sum += readers.len();
            if readers.len() == 1 {
                private += 1;
            }
            if writers.len() >= 2 {
                write_shared += 1;
            }
        }
        Characterization {
            ops,
            read_fraction: if ops == 0 {
                0.0
            } else {
                reads as f64 / ops as f64
            },
            footprint_blocks: footprint,
            mean_sharing_degree: if footprint == 0 {
                0.0
            } else {
                degree_sum as f64 / footprint as f64
            },
            private_block_fraction: if footprint == 0 {
                0.0
            } else {
                private as f64 / footprint as f64
            },
            write_shared_fraction: if footprint == 0 {
                0.0
            } else {
                write_shared as f64 / footprint as f64
            },
        }
    }

    /// Renders the characterization as table cells (for E2).
    pub fn row(&self) -> Vec<String> {
        vec![
            self.ops.to_string(),
            format!("{:.2}", self.read_fraction),
            self.footprint_blocks.to_string(),
            format!("{:.2}", self.mean_sharing_degree),
            format!("{:.2}", self.private_block_fraction),
            format!("{:.2}", self.write_shared_fraction),
        ]
    }

    /// Column headers matching [`row`](Characterization::row).
    pub fn headers() -> Vec<&'static str> {
        vec![
            "ops",
            "read_frac",
            "footprint",
            "sharing_degree",
            "private_frac",
            "write_shared_frac",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;
    use stashdir_common::BlockAddr;

    #[test]
    fn empty_trace_is_all_zero() {
        let c = Characterization::of(&[]);
        assert_eq!(c.ops, 0);
        assert_eq!(c.footprint_blocks, 0);
        assert_eq!(c.private_block_fraction, 0.0);
    }

    #[test]
    fn hand_built_example() {
        // Core 0 reads A, writes B. Core 1 reads A. A shared(2), B private.
        let traces = vec![
            vec![
                MemOp::read(BlockAddr::new(1)),
                MemOp::write(BlockAddr::new(2)),
            ],
            vec![MemOp::read(BlockAddr::new(1))],
        ];
        let c = Characterization::of(&traces);
        assert_eq!(c.ops, 3);
        assert!((c.read_fraction - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.footprint_blocks, 2);
        assert_eq!(c.mean_sharing_degree, 1.5);
        assert_eq!(c.private_block_fraction, 0.5);
        assert_eq!(c.write_shared_fraction, 0.0);
    }

    #[test]
    fn data_parallel_is_dominantly_private() {
        let traces = Workload::DataParallel.generate(8, 2000, 1);
        let c = Characterization::of(&traces);
        assert!(c.private_block_fraction > 0.9, "{c:?}");
        assert!(c.mean_sharing_degree < 1.5);
    }

    #[test]
    fn read_mostly_shares_widely() {
        let traces = Workload::ReadMostly.generate(8, 4000, 1);
        let c = Characterization::of(&traces);
        assert!(
            c.mean_sharing_degree > 1.5,
            "hot table should be shared: {c:?}"
        );
        assert!(c.read_fraction > 0.9);
    }

    #[test]
    fn migratory_blocks_are_write_shared() {
        let traces = Workload::Migratory.generate(8, 4000, 1);
        let c = Characterization::of(&traces);
        assert!(c.write_shared_fraction > 0.1, "{c:?}");
    }

    #[test]
    fn rows_and_headers_align() {
        let c = Characterization::of(&Workload::Uniform.generate(2, 100, 0));
        assert_eq!(c.row().len(), Characterization::headers().len());
    }
}
