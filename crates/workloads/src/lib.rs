//! Synthetic multi-threaded memory workloads for the Stash Directory
//! reproduction.
//!
//! The paper evaluates on SPLASH-2/PARSEC binaries under a full-system
//! simulator; this repository substitutes deterministic trace generators
//! that reproduce those suites' *sharing archetypes* — the properties a
//! coherence directory actually sees: per-core reuse distances, read/write
//! mix, sharing degree, and the dominance of private blocks. Each
//! generator is a [`Workload`] variant; [`Workload::suite`] returns the
//! twelve-workload set used by every experiment.
//!
//! # Examples
//!
//! ```
//! use stashdir_workloads::Workload;
//!
//! let traces = Workload::DataParallel.generate(16, 1000, 42);
//! assert_eq!(traces.len(), 16);
//! assert_eq!(traces[0].len(), 1000);
//! // Deterministic: same seed, same trace.
//! assert_eq!(traces, Workload::DataParallel.generate(16, 1000, 42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod gen;
pub mod suite;
pub mod trace;
pub mod zipf;

pub use characterize::Characterization;
pub use suite::Workload;
pub use trace::TraceFile;
pub use zipf::Zipf;
