//! The workload suite: one named entry point per sharing archetype.

use crate::gen;
use serde::{Deserialize, Serialize};
use stashdir_common::MemOp;
use std::fmt;

/// A named synthetic workload.
///
/// Each variant mimics the sharing archetype of a SPLASH-2/PARSEC
/// benchmark family (see the module docs of the corresponding
/// [`crate::gen`] submodule).
///
/// # Examples
///
/// ```
/// use stashdir_workloads::Workload;
///
/// for w in Workload::suite() {
///     let traces = w.generate(4, 100, 1);
///     assert_eq!(traces.len(), 4, "{w}");
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Blackscholes-like private streaming (`gen::data_parallel`).
    DataParallel,
    /// Ocean/fluidanimate-like grid solver (`gen::stencil`).
    Stencil,
    /// FFT-like phased all-to-all (`gen::fft`).
    Fft,
    /// LU-like one-to-many pivot sharing (`gen::lu`).
    Lu,
    /// Canneal-like pointer chasing (`gen::canneal`).
    Canneal,
    /// Paired ring buffers (`gen::producer_consumer`).
    ProducerConsumer,
    /// Ring pipeline of stages (`gen::pipeline`).
    Pipeline,
    /// Migratory read-modify-write objects (`gen::migratory`).
    Migratory,
    /// Hot read-shared table (`gen::read_mostly`).
    ReadMostly,
    /// Contended locks with private critical sections (`gen::lock`).
    LockContended,
    /// Barnes-hut-like shared-tree traversal (`gen::tree`).
    Tree,
    /// Uniform random stressor (`gen::uniform`).
    Uniform,
}

impl Workload {
    /// The twelve-workload evaluation suite, in canonical order.
    pub fn suite() -> Vec<Workload> {
        use Workload::*;
        vec![
            DataParallel,
            Stencil,
            Fft,
            Lu,
            Canneal,
            ProducerConsumer,
            Pipeline,
            Migratory,
            ReadMostly,
            LockContended,
            Tree,
            Uniform,
        ]
    }

    /// The short name used in result tables.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::DataParallel => "data_parallel",
            Workload::Stencil => "stencil",
            Workload::Fft => "fft",
            Workload::Lu => "lu",
            Workload::Canneal => "canneal",
            Workload::ProducerConsumer => "prod_cons",
            Workload::Pipeline => "pipeline",
            Workload::Migratory => "migratory",
            Workload::ReadMostly => "read_mostly",
            Workload::LockContended => "lock",
            Workload::Tree => "tree",
            Workload::Uniform => "uniform",
        }
    }

    /// Looks a workload up by its [`name`](Workload::name).
    pub fn from_name(name: &str) -> Option<Workload> {
        Workload::suite().into_iter().find(|w| w.name() == name)
    }

    /// Generates one trace per core, `ops_per_core` operations each,
    /// deterministically from `seed`.
    pub fn generate(&self, cores: u16, ops_per_core: usize, seed: u64) -> Vec<Vec<MemOp>> {
        let f = match self {
            Workload::DataParallel => gen::data_parallel::generate,
            Workload::Stencil => gen::stencil::generate,
            Workload::Fft => gen::fft::generate,
            Workload::Lu => gen::lu::generate,
            Workload::Canneal => gen::canneal::generate,
            Workload::ProducerConsumer => gen::producer_consumer::generate,
            Workload::Pipeline => gen::pipeline::generate,
            Workload::Migratory => gen::migratory::generate,
            Workload::ReadMostly => gen::read_mostly::generate,
            Workload::LockContended => gen::lock::generate,
            Workload::Tree => gen::tree::generate,
            Workload::Uniform => gen::uniform::generate,
        };
        f(cores, ops_per_core, seed)
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_distinct_workloads() {
        let suite = Workload::suite();
        assert_eq!(suite.len(), 12);
        let names: std::collections::HashSet<&str> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn from_name_round_trips() {
        for w in Workload::suite() {
            assert_eq!(Workload::from_name(w.name()), Some(w));
        }
        assert_eq!(Workload::from_name("nope"), None);
    }

    #[test]
    fn every_workload_generates_full_traces() {
        for w in Workload::suite() {
            let traces = w.generate(8, 250, 7);
            assert_eq!(traces.len(), 8, "{w}");
            for t in &traces {
                assert_eq!(t.len(), 250, "{w}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for w in Workload::suite() {
            assert_eq!(w.generate(4, 120, 3), w.generate(4, 120, 3), "{w}");
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Workload::Fft.to_string(), "fft");
        assert_eq!(Workload::LockContended.to_string(), "lock");
    }
}
