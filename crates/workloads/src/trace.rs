//! Trace serialization: save generated traces to disk and reload them,
//! so experiments can be re-run bit-identically without regenerating.

use serde::{Deserialize, Serialize};
use stashdir_common::MemOp;
use std::fs::File;
use std::io::{self, BufReader, BufWriter};
use std::path::Path;

/// A stored multi-core trace with its provenance.
///
/// # Examples
///
/// ```
/// use stashdir_workloads::{TraceFile, Workload};
///
/// let traces = Workload::Uniform.generate(2, 50, 3);
/// let file = TraceFile::new("uniform", 3, traces.clone());
/// let dir = std::env::temp_dir().join("stashdir_doc_trace.json");
/// file.save(&dir).unwrap();
/// let loaded = TraceFile::load(&dir).unwrap();
/// assert_eq!(loaded.traces, traces);
/// # std::fs::remove_file(&dir).ok();
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceFile {
    /// Workload name that produced the trace.
    pub workload: String,
    /// Generator seed.
    pub seed: u64,
    /// One operation sequence per core.
    pub traces: Vec<Vec<MemOp>>,
}

impl TraceFile {
    /// Wraps generated traces with provenance.
    pub fn new(workload: impl Into<String>, seed: u64, traces: Vec<Vec<MemOp>>) -> Self {
        TraceFile {
            workload: workload.into(),
            seed,
            traces,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.traces.len()
    }

    /// Total operations across cores.
    pub fn total_ops(&self) -> usize {
        self.traces.iter().map(Vec::len).sum()
    }

    /// Writes the trace as JSON.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O or serialization error.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let file = File::create(path)?;
        serde_json::to_writer(BufWriter::new(file), self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Reads a trace back from JSON.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O or deserialization error.
    pub fn load(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        serde_json::from_reader(BufReader::new(file))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("stashdir_test_{name}_{}.json", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_everything() {
        let traces = Workload::Migratory.generate(4, 100, 11);
        let tf = TraceFile::new("migratory", 11, traces);
        let path = tmp("roundtrip");
        tf.save(&path).unwrap();
        let loaded = TraceFile::load(&path).unwrap();
        assert_eq!(loaded, tf);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn counting_helpers() {
        let tf = TraceFile::new(
            "x",
            0,
            vec![
                Workload::Uniform.generate(1, 10, 0).remove(0),
                Workload::Uniform.generate(1, 20, 1).remove(0),
            ],
        );
        assert_eq!(tf.cores(), 2);
        assert_eq!(tf.total_ops(), 30);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(TraceFile::load(Path::new("/nonexistent/trace.json")).is_err());
    }
}
