//! Trace serialization: save generated traces to disk and reload them,
//! so experiments can be re-run bit-identically without regenerating.

use serde::{Deserialize, Serialize};
use stashdir_common::json::Value;
use stashdir_common::{BlockAddr, MemOp, MemOpKind};
use std::io;
use std::path::Path;

/// A stored multi-core trace with its provenance.
///
/// # Examples
///
/// ```
/// use stashdir_workloads::{TraceFile, Workload};
///
/// let traces = Workload::Uniform.generate(2, 50, 3);
/// let file = TraceFile::new("uniform", 3, traces.clone());
/// let dir = std::env::temp_dir().join("stashdir_doc_trace.json");
/// file.save(&dir).unwrap();
/// let loaded = TraceFile::load(&dir).unwrap();
/// assert_eq!(loaded.traces, traces);
/// # std::fs::remove_file(&dir).ok();
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceFile {
    /// Workload name that produced the trace.
    pub workload: String,
    /// Generator seed.
    pub seed: u64,
    /// One operation sequence per core.
    pub traces: Vec<Vec<MemOp>>,
}

impl TraceFile {
    /// Wraps generated traces with provenance.
    pub fn new(workload: impl Into<String>, seed: u64, traces: Vec<Vec<MemOp>>) -> Self {
        TraceFile {
            workload: workload.into(),
            seed,
            traces,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.traces.len()
    }

    /// Total operations across cores.
    pub fn total_ops(&self) -> usize {
        self.traces.iter().map(Vec::len).sum()
    }

    /// Writes the trace as JSON.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json().render())
    }

    /// Reads a trace back from JSON.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O or deserialization error.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let value = Value::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Self::from_json(&value)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed trace file"))
    }

    fn to_json(&self) -> Value {
        let traces = self
            .traces
            .iter()
            .map(|ops| Value::array(ops.iter().map(op_to_json).collect()))
            .collect();
        Value::object(vec![
            ("workload".into(), Value::from(self.workload.as_str())),
            ("seed".into(), Value::from(self.seed)),
            ("traces".into(), Value::Array(traces)),
        ])
    }

    fn from_json(value: &Value) -> Option<Self> {
        let workload = value.get("workload")?.as_str()?.to_string();
        let seed = value.get("seed")?.as_u64()?;
        let traces = value
            .get("traces")?
            .as_array()?
            .iter()
            .map(|per_core| {
                per_core
                    .as_array()?
                    .iter()
                    .map(op_from_json)
                    .collect::<Option<Vec<_>>>()
            })
            .collect::<Option<Vec<_>>>()?;
        Some(TraceFile {
            workload,
            seed,
            traces,
        })
    }
}

fn op_to_json(op: &MemOp) -> Value {
    Value::object(vec![
        (
            "kind".into(),
            Value::from(match op.kind {
                MemOpKind::Read => "Read",
                MemOpKind::Write => "Write",
            }),
        ),
        ("block".into(), Value::from(op.block.get())),
        ("think".into(), Value::from(op.think)),
    ])
}

fn op_from_json(value: &Value) -> Option<MemOp> {
    let kind = match value.get("kind")?.as_str()? {
        "Read" => MemOpKind::Read,
        "Write" => MemOpKind::Write,
        _ => return None,
    };
    let block = BlockAddr::new(value.get("block")?.as_u64()?);
    let think = u32::try_from(value.get("think")?.as_u64()?).ok()?;
    Some(MemOp { kind, block, think })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("stashdir_test_{name}_{}.json", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_everything() {
        let traces = Workload::Migratory.generate(4, 100, 11);
        let tf = TraceFile::new("migratory", 11, traces);
        let path = tmp("roundtrip");
        tf.save(&path).unwrap();
        let loaded = TraceFile::load(&path).unwrap();
        assert_eq!(loaded, tf);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn counting_helpers() {
        let tf = TraceFile::new(
            "x",
            0,
            vec![
                Workload::Uniform.generate(1, 10, 0).remove(0),
                Workload::Uniform.generate(1, 20, 1).remove(0),
            ],
        );
        assert_eq!(tf.cores(), 2);
        assert_eq!(tf.total_ops(), 30);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(TraceFile::load(Path::new("/nonexistent/trace.json")).is_err());
    }
}
