//! Zipfian sampling for skewed access distributions.

use stashdir_common::DetRng;

/// A Zipf(α) sampler over `{0, …, n-1}` using inverse-CDF lookup on a
/// precomputed table (exact, O(log n) per sample).
///
/// # Examples
///
/// ```
/// use stashdir_common::DetRng;
/// use stashdir_workloads::Zipf;
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = DetRng::seed_from(1);
/// let x = zipf.sample(&mut rng);
/// assert!(x < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` items with skew `alpha` (0 = uniform;
    /// 1 = classic Zipf).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `alpha` is negative or non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(alpha >= 0.0 && alpha.is_finite(), "bad skew {alpha}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when the sampler covers a single item.
    pub fn is_empty(&self) -> bool {
        false // construction requires n > 0
    }

    /// Draws one item: rank 0 is the most popular.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.unit_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range() {
        let zipf = Zipf::new(10, 1.2);
        let mut rng = DetRng::seed_from(3);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn alpha_zero_is_roughly_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = DetRng::seed_from(4);
        let mut counts = [0usize; 4];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((2_000..3_000).contains(&c), "uniform-ish, got {counts:?}");
        }
    }

    #[test]
    fn high_alpha_concentrates_on_rank_zero() {
        let zipf = Zipf::new(100, 2.0);
        let mut rng = DetRng::seed_from(5);
        let zeros = (0..10_000).filter(|_| zipf.sample(&mut rng) == 0).count();
        assert!(zeros > 5_000, "rank 0 should dominate, got {zeros}");
    }

    #[test]
    fn rank_popularity_is_monotone() {
        let zipf = Zipf::new(8, 1.0);
        let mut rng = DetRng::seed_from(6);
        let mut counts = [0usize; 8];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for w in counts.windows(2) {
            assert!(
                w[0] as f64 >= w[1] as f64 * 0.8,
                "popularity should decay: {counts:?}"
            );
        }
    }

    #[test]
    fn single_item_always_samples_zero() {
        let zipf = Zipf::new(1, 1.0);
        let mut rng = DetRng::seed_from(7);
        assert_eq!(zipf.sample(&mut rng), 0);
        assert_eq!(zipf.len(), 1);
        assert!(!zipf.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
