//! `producer_consumer` — pipelined ring buffers between core pairs.
//!
//! Core `2k` produces into a ring buffer that core `2k+1` consumes,
//! trailing a few slots behind. Every buffer block ping-pongs between
//! exactly two cores: written Modified by the producer, then forwarded
//! Shared to the consumer — the canonical two-party sharing pattern.

use super::{private_region, shared_region};
use stashdir_common::MemOp;

/// Ring buffer size in blocks per pair.
const RING: u64 = 256;
/// How far the consumer trails the producer (slots).
const LAG: u64 = 16;

/// Generates the traces.
pub fn generate(cores: u16, ops_per_core: usize, _seed: u64) -> Vec<Vec<MemOp>> {
    (0..cores as usize)
        .map(|c| {
            let pair = c / 2;
            let ring = shared_region(pair, RING);
            let scratch = private_region(c, 512);
            let producer = c % 2 == 0;
            let mut ops = Vec::with_capacity(ops_per_core);
            let mut slot = 0u64;
            while ops.len() < ops_per_core {
                if producer {
                    // Compute into scratch, publish to the ring.
                    ops.push(MemOp::read(scratch.block(slot)).with_think(4));
                    ops.push(MemOp::write(ring.block(slot)).with_think(2));
                } else {
                    // Consume a trailing slot, accumulate privately.
                    let behind = slot.wrapping_sub(LAG);
                    ops.push(MemOp::read(ring.block(behind)).with_think(2));
                    ops.push(MemOp::write(scratch.block(behind % 512)).with_think(4));
                }
                slot += 1;
            }
            ops.truncate(ops_per_core);
            ops
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = generate(4, 600, 0);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|t| t.len() == 600));
        assert_eq!(a, generate(4, 600, 1));
    }

    #[test]
    fn pairs_share_a_ring() {
        let traces = generate(4, 1000, 0);
        let ring0: std::collections::HashSet<u64> = traces[0]
            .iter()
            .filter(|o| o.is_write())
            .map(|o| o.block.get())
            .collect();
        let consumed0: std::collections::HashSet<u64> = traces[1]
            .iter()
            .filter(|o| !o.is_write())
            .map(|o| o.block.get())
            .filter(|b| *b >= (1 << 30))
            .collect();
        assert!(
            ring0.intersection(&consumed0).count() > 0,
            "consumer must read producer-written slots"
        );
    }

    #[test]
    fn different_pairs_use_different_rings() {
        let traces = generate(4, 1000, 0);
        let ring_of = |t: &Vec<MemOp>| -> std::collections::HashSet<u64> {
            t.iter()
                .map(|o| o.block.get())
                .filter(|b| *b >= (1 << 30))
                .collect()
        };
        let r0 = ring_of(&traces[0]);
        let r2 = ring_of(&traces[2]);
        assert_eq!(r0.intersection(&r2).count(), 0, "pairs are independent");
    }
}
