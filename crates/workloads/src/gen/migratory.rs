//! `migratory` — objects that hop core to core under read-modify-write.
//!
//! A pool of multi-block objects is visited by cores in staggered
//! rotation: each visit reads and then writes every block of the object.
//! Ownership migrates with the visitor — exactly one writer at a time,
//! heavy use of owner-to-owner (FwdGetM) transfers, near-zero stable
//! sharing.

use super::{private_region, shared_region};
use stashdir_common::{DetRng, MemOp};

/// Objects in the pool.
const OBJECTS: u64 = 64;
/// Blocks per object.
const OBJ_BLOCKS: u64 = 4;

/// Generates the traces.
pub fn generate(cores: u16, ops_per_core: usize, seed: u64) -> Vec<Vec<MemOp>> {
    let pool = shared_region(0, OBJECTS * OBJ_BLOCKS);
    let mut root = DetRng::seed_from(seed);
    (0..cores as usize)
        .map(|c| {
            let mut rng = root.fork();
            let scratch = private_region(c, 256);
            let mut ops = Vec::with_capacity(ops_per_core);
            // Stagger: each core starts its rotation at a different object.
            let mut visit = (c as u64 * OBJECTS) / cores as u64;
            while ops.len() < ops_per_core {
                let obj = visit % OBJECTS;
                for k in 0..OBJ_BLOCKS {
                    if ops.len() >= ops_per_core {
                        break;
                    }
                    let b = pool.block(obj * OBJ_BLOCKS + k);
                    ops.push(MemOp::read(b).with_think(2));
                    ops.push(MemOp::write(b).with_think(3));
                }
                // Local work between visits keeps migration visible.
                for _ in 0..4 {
                    if ops.len() >= ops_per_core {
                        break;
                    }
                    ops.push(MemOp::read(scratch.block(rng.below(256))).with_think(5));
                }
                visit += 1;
            }
            ops.truncate(ops_per_core);
            ops
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = generate(4, 700, 8);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|t| t.len() == 700));
        assert_eq!(a, generate(4, 700, 8));
    }

    #[test]
    fn objects_are_written_by_multiple_cores() {
        let traces = generate(4, 4000, 1);
        let mut writers: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            Default::default();
        for (c, t) in traces.iter().enumerate() {
            for op in t
                .iter()
                .filter(|o| o.is_write() && o.block.get() >= (1 << 30))
            {
                writers.entry(op.block.get()).or_default().insert(c);
            }
        }
        let migrating = writers.values().filter(|w| w.len() >= 3).count();
        assert!(
            migrating > OBJECTS as usize,
            "most object blocks migrate across >=3 cores, got {migrating}"
        );
    }

    #[test]
    fn visits_do_rmw() {
        let traces = generate(1, 1000, 1);
        // Consecutive read-then-write of the same shared block.
        let rmw = traces[0]
            .windows(2)
            .filter(|w| !w[0].is_write() && w[1].is_write() && w[0].block == w[1].block)
            .count();
        assert!(rmw > 100, "visits are read-modify-writes, got {rmw}");
    }
}
