//! `fft` — an FFT-like phased kernel with all-to-all transposes.
//!
//! Computation alternates between *butterfly* phases (each core
//! read-modify-writes its own partition) and *transpose* phases (each
//! core reads one stripe from every other core's partition and writes it
//! into its own). Sharing is bursty and all-to-all, but each block still
//! has one writer per phase — migratory-read behavior that exercises
//! owner forwarding.

use super::shared_region;
use stashdir_common::MemOp;

/// Blocks per core partition.
const PARTITION: u64 = 1024;
/// Butterfly ops between transposes.
const PHASE_LEN: usize = 2048;

/// Generates the traces.
pub fn generate(cores: u16, ops_per_core: usize, _seed: u64) -> Vec<Vec<MemOp>> {
    let matrix = shared_region(0, PARTITION * cores as u64);
    let n = cores as u64;
    (0..cores as usize)
        .map(|c| {
            let my_base = c as u64 * PARTITION;
            let mut ops = Vec::with_capacity(ops_per_core);
            let mut i = 0u64;
            let mut phase = 0u64;
            while ops.len() < ops_per_core {
                // Butterfly phase: private RMW over own partition.
                for _ in 0..PHASE_LEN / 2 {
                    if ops.len() >= ops_per_core {
                        break;
                    }
                    let b = matrix.block(my_base + (i % PARTITION));
                    ops.push(MemOp::read(b).with_think(3));
                    ops.push(MemOp::write(b).with_think(3));
                    i += 1;
                }
                // Transpose: read a stripe of every peer's partition,
                // write results into own partition.
                let stripe = PARTITION / n.max(1);
                for peer in 0..n {
                    for k in 0..stripe.min(8) {
                        if ops.len() >= ops_per_core {
                            break;
                        }
                        let src = matrix.block(peer * PARTITION + (phase * 8 + k) % PARTITION);
                        ops.push(MemOp::read(src).with_think(1));
                        let dst = matrix.block(my_base + (peer * stripe + k) % PARTITION);
                        ops.push(MemOp::write(dst).with_think(2));
                    }
                }
                phase += 1;
            }
            ops.truncate(ops_per_core);
            ops
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = generate(4, 1000, 0);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|t| t.len() == 1000));
        assert_eq!(a, generate(4, 1000, 5));
    }

    #[test]
    fn transpose_reads_cross_partitions() {
        let traces = generate(4, 2 * PHASE_LEN + 200, 0);
        // Core 0 must read blocks from core 3's partition.
        let foreign_base = super::super::shared_region(0, PARTITION * 4)
            .block(3 * PARTITION)
            .get();
        let crossed = traces[0].iter().any(|o| {
            !o.is_write() && (foreign_base..foreign_base + PARTITION).contains(&o.block.get())
        });
        assert!(crossed, "transpose must read remote partitions");
    }

    #[test]
    fn writes_stay_in_own_partition() {
        let traces = generate(4, 6000, 0);
        let region = super::super::shared_region(0, PARTITION * 4);
        for (c, t) in traces.iter().enumerate() {
            let base = region.block(c as u64 * PARTITION).get();
            for op in t.iter().filter(|o| o.is_write()) {
                assert!(
                    (base..base + PARTITION).contains(&op.block.get()),
                    "core {c} wrote outside its partition"
                );
            }
        }
    }
}
