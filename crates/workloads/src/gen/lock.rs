//! `lock` — contended lock acquisition with private critical sections.
//!
//! Cores spin over a small set of hot lock words: read the lock, write it
//! (acquire), run a short private critical section, write it again
//! (release). Lock blocks ping-pong violently between cores; the
//! protected data stays private. This is the stress case for exclusive
//! ownership transfers and for directory entries that are *always*
//! private-but-hot (stash must not pay for hiding them wrongly).

use super::{private_region, shared_region};
use stashdir_common::{DetRng, MemOp};

/// Number of distinct locks.
const LOCKS: u64 = 8;
/// Private blocks touched inside each critical section.
const CRIT_BLOCKS: u64 = 6;

/// Generates the traces.
pub fn generate(cores: u16, ops_per_core: usize, seed: u64) -> Vec<Vec<MemOp>> {
    let locks = shared_region(0, LOCKS);
    let mut root = DetRng::seed_from(seed);
    (0..cores as usize)
        .map(|c| {
            let mut rng = root.fork();
            let data = private_region(c, 512);
            let mut ops = Vec::with_capacity(ops_per_core);
            let mut i = 0u64;
            while ops.len() < ops_per_core {
                let lock = locks.block(rng.below(LOCKS));
                // Acquire: test then test-and-set.
                ops.push(MemOp::read(lock).with_think(1));
                ops.push(MemOp::write(lock).with_think(1));
                // Critical section on private data.
                for k in 0..CRIT_BLOCKS {
                    if ops.len() >= ops_per_core {
                        break;
                    }
                    let b = data.block(i + k);
                    ops.push(MemOp::read(b).with_think(2));
                    ops.push(MemOp::write(b).with_think(2));
                }
                i += CRIT_BLOCKS;
                // Release.
                ops.push(MemOp::write(lock).with_think(1));
            }
            ops.truncate(ops_per_core);
            ops
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = generate(4, 650, 21);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|t| t.len() == 650));
        assert_eq!(a, generate(4, 650, 21));
    }

    #[test]
    fn locks_are_written_by_every_core() {
        let traces = generate(4, 2000, 1);
        let lock0 = super::super::shared_region(0, LOCKS).block(0).get();
        for (c, t) in traces.iter().enumerate() {
            assert!(
                t.iter()
                    .any(|o| o.is_write() && (lock0..lock0 + LOCKS).contains(&o.block.get())),
                "core {c} never acquired a lock"
            );
        }
    }

    #[test]
    fn critical_sections_are_private() {
        let traces = generate(4, 3000, 2);
        let mut writers: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            Default::default();
        for (c, t) in traces.iter().enumerate() {
            for op in t
                .iter()
                .filter(|o| o.is_write() && o.block.get() < (1 << 30))
            {
                writers.entry(op.block.get()).or_default().insert(c);
            }
        }
        assert!(
            writers.values().all(|w| w.len() == 1),
            "critical-section data has one writer each"
        );
    }
}
