//! `data_parallel` — a blackscholes-like embarrassingly parallel kernel.
//!
//! Each core streams over its own array of work items (four private block
//! accesses per item: three reads, one write) and occasionally consults a
//! small shared read-only parameter table. Almost every block is private;
//! this is the workload class where a conventional sparse directory
//! wastes the most invalidations and the stash directory saves them all.

use super::{private_region, shared_region};
use stashdir_common::{DetRng, MemOp};

/// Per-core working set in blocks (~a quarter of the default 4096-block
/// private L2, re-streamed many times).
const WORKING_SET: u64 = 3072;
/// Shared read-only parameter table.
const PARAMS: u64 = 32;

/// Generates the traces.
pub fn generate(cores: u16, ops_per_core: usize, seed: u64) -> Vec<Vec<MemOp>> {
    let params = shared_region(0, PARAMS);
    let mut root = DetRng::seed_from(seed);
    (0..cores as usize)
        .map(|c| {
            let mut rng = root.fork();
            let mine = private_region(c, WORKING_SET);
            let mut ops = Vec::with_capacity(ops_per_core);
            let mut item = 0u64;
            while ops.len() < ops_per_core {
                // One work item: read input blocks, write the result.
                ops.push(MemOp::read(mine.block(item)).with_think(4));
                ops.push(MemOp::read(mine.block(item + 1)).with_think(2));
                if rng.chance(0.05) {
                    ops.push(MemOp::read(params.block(rng.below(PARAMS))).with_think(1));
                }
                ops.push(MemOp::write(mine.block(item)).with_think(6));
                item += 2;
            }
            ops.truncate(ops_per_core);
            ops
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stashdir_common::MemOpKind;

    #[test]
    fn shape_and_determinism() {
        let a = generate(4, 500, 9);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|t| t.len() == 500));
        assert_eq!(a, generate(4, 500, 9));
    }

    #[test]
    fn mostly_private_blocks() {
        let traces = generate(4, 2000, 1);
        let mut holders: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            Default::default();
        for (c, t) in traces.iter().enumerate() {
            for op in t {
                holders.entry(op.block.get()).or_default().insert(c);
            }
        }
        let private = holders.values().filter(|h| h.len() == 1).count();
        let frac = private as f64 / holders.len() as f64;
        assert!(
            frac > 0.9,
            "data-parallel should be >90% private, got {frac}"
        );
    }

    #[test]
    fn has_reads_and_writes() {
        let traces = generate(2, 400, 2);
        let writes = traces[0]
            .iter()
            .filter(|o| o.kind == MemOpKind::Write)
            .count();
        assert!(writes > 50, "roughly one write per item, got {writes}");
        assert!(writes < 250);
    }
}
