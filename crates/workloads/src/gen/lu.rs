//! `lu` — an LU-decomposition-like kernel with one-to-many pivot sharing.
//!
//! Each outer iteration, one core (round-robin) computes a small *pivot*
//! block set that every other core then reads while updating its own
//! private panel. The pivot blocks flip from exclusively written to
//! widely read-shared every iteration — the classic one-producer,
//! many-consumers pattern.

use super::{private_region, shared_region};
use stashdir_common::MemOp;

/// Blocks in the pivot set per iteration.
const PIVOT_BLOCKS: u64 = 8;
/// Panel updates per iteration per core.
const PANEL_UPDATES: usize = 128;
/// Per-core private panel size in blocks.
const PANEL: u64 = 2048;

/// Generates the traces.
pub fn generate(cores: u16, ops_per_core: usize, _seed: u64) -> Vec<Vec<MemOp>> {
    let pivots = shared_region(0, PIVOT_BLOCKS * 64);
    (0..cores as usize)
        .map(|c| {
            let panel = private_region(c, PANEL);
            let mut ops = Vec::with_capacity(ops_per_core);
            let mut iter = 0u64;
            let mut i = 0u64;
            while ops.len() < ops_per_core {
                let pivot_owner = (iter % cores as u64) as usize;
                let pivot_base = (iter % 64) * PIVOT_BLOCKS;
                if c == pivot_owner {
                    // Produce the pivot.
                    for k in 0..PIVOT_BLOCKS {
                        ops.push(MemOp::write(pivots.block(pivot_base + k)).with_think(8));
                    }
                }
                // Everyone reads the pivot and updates their panel.
                for u in 0..PANEL_UPDATES {
                    if ops.len() >= ops_per_core {
                        break;
                    }
                    ops.push(
                        MemOp::read(pivots.block(pivot_base + (u as u64 % PIVOT_BLOCKS)))
                            .with_think(1),
                    );
                    let mine = panel.block(i % PANEL);
                    ops.push(MemOp::read(mine).with_think(2));
                    ops.push(MemOp::write(mine).with_think(4));
                    i += 1;
                }
                iter += 1;
            }
            ops.truncate(ops_per_core);
            ops
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = generate(4, 1200, 0);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|t| t.len() == 1200));
        assert_eq!(a, generate(4, 1200, 77));
    }

    #[test]
    fn pivot_blocks_are_read_by_everyone() {
        let traces = generate(4, 2000, 0);
        let pivot0 = super::super::shared_region(0, PIVOT_BLOCKS * 64)
            .block(0)
            .get();
        for (c, t) in traces.iter().enumerate() {
            assert!(
                t.iter().any(|o| o.block.get() == pivot0),
                "core {c} never touched the pivot"
            );
        }
    }

    #[test]
    fn pivot_writes_rotate_among_cores() {
        let traces = generate(4, 4000, 0);
        let writers: Vec<bool> = traces
            .iter()
            .map(|t| t.iter().any(|o| o.is_write() && o.block.get() >= (1 << 30)))
            .collect();
        assert!(
            writers.iter().filter(|&&w| w).count() >= 2,
            "pivot production must rotate: {writers:?}"
        );
    }
}
