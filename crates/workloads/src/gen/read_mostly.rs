//! `read_mostly` — a hot read-shared table with rare updates.
//!
//! All cores read a Zipf-skewed shared table (think routing tables,
//! dictionaries, interned strings); one in a hundred accesses updates an
//! entry, invalidating every reader of that block. The stable state is
//! wide sharing — the workload whose directory entries a stash directory
//! must *not* evict silently (they are shared, so it cannot), exercising
//! the private-first policy's fallback path.

use super::{private_region, shared_region};
use crate::zipf::Zipf;
use stashdir_common::{DetRng, MemOp};

/// Shared table size in blocks.
const TABLE: u64 = 4096;
/// Fraction of table accesses that write.
const WRITE_FRAC: f64 = 0.01;
/// Fraction of accesses going to the private working set.
const PRIVATE_FRAC: f64 = 0.4;

/// Generates the traces.
pub fn generate(cores: u16, ops_per_core: usize, seed: u64) -> Vec<Vec<MemOp>> {
    let table = shared_region(0, TABLE);
    let zipf = Zipf::new(TABLE as usize, 0.8);
    let mut root = DetRng::seed_from(seed);
    (0..cores as usize)
        .map(|c| {
            let mut rng = root.fork();
            let mine = private_region(c, 1024);
            let mut ops = Vec::with_capacity(ops_per_core);
            let mut i = 0u64;
            while ops.len() < ops_per_core {
                if rng.chance(PRIVATE_FRAC) {
                    let b = mine.block(i);
                    ops.push(MemOp::read(b).with_think(2));
                    i += 1;
                } else {
                    let entry = table.block(zipf.sample(&mut rng) as u64);
                    if rng.chance(WRITE_FRAC) {
                        ops.push(MemOp::write(entry).with_think(4));
                    } else {
                        ops.push(MemOp::read(entry).with_think(2));
                    }
                }
            }
            ops.truncate(ops_per_core);
            ops
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = generate(4, 900, 12);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|t| t.len() == 900));
        assert_eq!(a, generate(4, 900, 12));
    }

    #[test]
    fn writes_are_rare() {
        let traces = generate(4, 10_000, 1);
        let total: usize = traces.iter().map(|t| t.len()).sum();
        let writes: usize = traces
            .iter()
            .map(|t| t.iter().filter(|o| o.is_write()).count())
            .sum();
        let frac = writes as f64 / total as f64;
        assert!(frac < 0.02, "read-mostly means <2% writes, got {frac}");
    }

    #[test]
    fn hot_entries_are_shared_by_all_cores() {
        let traces = generate(4, 5000, 2);
        let hot = super::super::shared_region(0, TABLE).block(0).get();
        for (c, t) in traces.iter().enumerate() {
            assert!(
                t.iter().any(|o| o.block.get() == hot),
                "core {c} should hit the hottest entry"
            );
        }
    }
}
