//! The individual trace generators.
//!
//! Every generator produces one `Vec<MemOp>` per core, deterministically
//! from a seed. Address-space layout is shared across generators:
//! per-core private regions live at [`private_region`], shared regions at
//! [`shared_region`], so a workload's private and shared traffic never
//! alias.

pub mod canneal;
pub mod data_parallel;
pub mod fft;
pub mod lock;
pub mod lu;
pub mod migratory;
pub mod pipeline;
pub mod producer_consumer;
pub mod read_mostly;
pub mod stencil;
pub mod tree;
pub mod uniform;

use stashdir_common::BlockAddr;

/// A contiguous range of block addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: u64,
    blocks: u64,
}

impl Region {
    /// Creates a region of `blocks` blocks starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    pub fn new(base: u64, blocks: u64) -> Self {
        assert!(blocks > 0, "a region holds at least one block");
        Region { base, blocks }
    }

    /// The `i`-th block of the region (wrapping).
    pub fn block(&self, i: u64) -> BlockAddr {
        BlockAddr::new(self.base + (i % self.blocks))
    }

    /// Number of blocks.
    pub fn len(&self) -> u64 {
        self.blocks
    }

    /// Regions are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Deterministic SplitMix64-style scatter for region bases.
fn scatter(salt: u64, index: u64) -> u64 {
    let mut z = index.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(salt);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core `c`'s private region: up to 64 Ki blocks of address space per
/// core, based at 16 Mi blocks (1 GiB with 64-byte blocks).
///
/// Each core gets a 128 Ki-block aligned slot with a **hashed sub-slot
/// offset**. The hash matters: with regular (power-of-two, or even
/// prime-byte-stride) placement, different cores' regions land on
/// correlated sets of the chip's power-of-two-indexed structures — LLC
/// banks and directory slices — concentrating the whole machine's
/// traffic in a few sets, an aliasing pathology that real OS physical
/// page placement does not produce. Hashing the base decorrelates set
/// mappings at any bank count.
pub fn private_region(core: usize, blocks: u64) -> Region {
    assert!(
        blocks <= 1 << 16,
        "private regions hold at most 64Ki blocks"
    );
    let slot = (1 << 24) + (core as u64) * (1 << 17);
    Region::new(slot + scatter(0xA11C_E5ED, core as u64) % (1 << 16), blocks)
}

/// The `i`-th shared region: up to 1 Mi blocks of address space each,
/// based at 1 Gi blocks in 2 Mi-block aligned slots with hashed sub-slot
/// offsets (see [`private_region`] for why the hash is load-bearing).
pub fn shared_region(index: usize, blocks: u64) -> Region {
    assert!(blocks <= 1 << 20, "shared regions hold at most 1Mi blocks");
    let slot = (1 << 30) + (index as u64) * (1 << 21);
    Region::new(
        slot + scatter(0x5EED_5A17, index as u64) % (1 << 20),
        blocks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_wraps() {
        let r = Region::new(100, 4);
        assert_eq!(r.block(0), BlockAddr::new(100));
        assert_eq!(r.block(5), BlockAddr::new(101));
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
    }

    #[test]
    fn private_regions_are_disjoint() {
        let a = private_region(0, 1 << 16);
        let b = private_region(1, 1 << 16);
        assert!(
            a.block(u64::MAX).get() < b.block(0).get()
                || b.block(u64::MAX).get() < a.block(0).get()
        );
    }

    #[test]
    fn shared_and_private_never_alias() {
        let p = private_region(63, 1 << 16);
        let s = shared_region(0, 1 << 20);
        assert!(p.block(u64::MAX).get() < s.block(0).get());
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_region_panics() {
        let _ = Region::new(0, 0);
    }
}
