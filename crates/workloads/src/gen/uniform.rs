//! `uniform` — uniformly random mixed traffic.
//!
//! Not modeled on any benchmark; a configurable stressor used by tests
//! and ablations. Every core draws uniform random reads/writes over one
//! shared pool, maximizing conflict and race coverage.

use super::shared_region;
use stashdir_common::{DetRng, MemOp};

/// Generates traces over a pool of `pool_blocks` with the given write
/// fraction.
///
/// # Panics
///
/// Panics if `pool_blocks` is zero.
pub fn generate_with(
    cores: u16,
    ops_per_core: usize,
    seed: u64,
    pool_blocks: u64,
    write_frac: f64,
) -> Vec<Vec<MemOp>> {
    assert!(pool_blocks > 0, "pool must hold at least one block");
    let pool = shared_region(0, pool_blocks);
    let mut root = DetRng::seed_from(seed);
    (0..cores as usize)
        .map(|_| {
            let mut rng = root.fork();
            (0..ops_per_core)
                .map(|_| {
                    let b = pool.block(rng.below(pool_blocks));
                    let op = if rng.chance(write_frac) {
                        MemOp::write(b)
                    } else {
                        MemOp::read(b)
                    };
                    op.with_think(rng.below(4) as u32)
                })
                .collect()
        })
        .collect()
}

/// The default stressor: a 2048-block pool, 30% writes.
pub fn generate(cores: u16, ops_per_core: usize, seed: u64) -> Vec<Vec<MemOp>> {
    generate_with(cores, ops_per_core, seed, 2048, 0.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = generate(4, 100, 5);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|t| t.len() == 100));
        assert_eq!(a, generate(4, 100, 5));
    }

    #[test]
    fn write_fraction_respected() {
        let traces = generate_with(2, 10_000, 1, 64, 0.5);
        let writes = traces[0].iter().filter(|o| o.is_write()).count();
        assert!((4_000..6_000).contains(&writes), "got {writes}");
    }

    #[test]
    fn pool_bounds_respected() {
        let traces = generate_with(2, 1000, 2, 16, 0.3);
        let base = super::super::shared_region(0, 16).block(0).get();
        for t in &traces {
            for op in t {
                assert!((base..base + 16).contains(&op.block.get()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_pool_panics() {
        let _ = generate_with(1, 1, 0, 0, 0.5);
    }
}
