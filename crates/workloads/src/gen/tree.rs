//! `tree` — a barnes-hut-like shared-tree traversal.
//!
//! All cores repeatedly walk a shared binary tree from the root: upper
//! levels are read by everyone (wide, stable sharing — exactly the
//! entries a stash directory must *not* hide), leaf-adjacent levels are
//! effectively private to whoever's particles land there, and each core
//! read-modify-writes its own particle array between walks. One core
//! periodically rebuilds a small part of the tree (rare writes that
//! invalidate wide reader sets).

use super::{private_region, shared_region};
use stashdir_common::{DetRng, MemOp};

/// Tree depth (node count = 2^DEPTH - 1 blocks).
const DEPTH: u32 = 12;
/// Particles per core (blocks).
const PARTICLES: u64 = 1024;
/// Probability a traversal is followed by a (root-ward) tree update.
const REBUILD_PROB: f64 = 0.002;

fn node_count() -> u64 {
    (1 << DEPTH) - 1
}

/// Generates the traces.
pub fn generate(cores: u16, ops_per_core: usize, seed: u64) -> Vec<Vec<MemOp>> {
    let tree = shared_region(0, node_count());
    let mut root_rng = DetRng::seed_from(seed);
    (0..cores as usize)
        .map(|c| {
            let mut rng = root_rng.fork();
            let particles = private_region(c, PARTICLES);
            let mut ops = Vec::with_capacity(ops_per_core);
            let mut p = 0u64;
            while ops.len() < ops_per_core {
                // Walk root to a leaf, branching pseudo-randomly per
                // particle (deterministic from the RNG stream).
                let mut node = 0u64;
                for _level in 0..DEPTH {
                    if ops.len() >= ops_per_core {
                        break;
                    }
                    ops.push(MemOp::read(tree.block(node)).with_think(1));
                    node = 2 * node + 1 + rng.below(2);
                    if node >= node_count() {
                        break;
                    }
                }
                // Update the particle with the forces found.
                let mine = particles.block(p % PARTICLES);
                ops.push(MemOp::read(mine).with_think(3));
                ops.push(MemOp::write(mine).with_think(3));
                p += 1;
                // Occasional tree rebuild near the top.
                if rng.chance(REBUILD_PROB) {
                    let victim = rng.below(31); // top 5 levels
                    ops.push(MemOp::write(tree.block(victim)).with_think(4));
                }
            }
            ops.truncate(ops_per_core);
            ops
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = generate(4, 600, 5);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|t| t.len() == 600));
        assert_eq!(a, generate(4, 600, 5));
    }

    #[test]
    fn everyone_reads_the_root() {
        let traces = generate(4, 1000, 1);
        let root = super::super::shared_region(0, node_count()).block(0).get();
        for (c, t) in traces.iter().enumerate() {
            assert!(
                t.iter().any(|o| !o.is_write() && o.block.get() == root),
                "core {c} never read the root"
            );
        }
    }

    #[test]
    fn walks_descend_levels() {
        let traces = generate(1, 200, 2);
        // Consecutive tree reads within a walk go to strictly deeper
        // nodes: child index > parent index.
        let base = super::super::shared_region(0, node_count()).block(0).get();
        let tree_reads: Vec<u64> = traces[0]
            .iter()
            .filter(|o| !o.is_write() && o.block.get() >= base)
            .map(|o| o.block.get() - base)
            .collect();
        let descending_pairs = tree_reads
            .windows(2)
            .filter(|w| w[1] == 2 * w[0] + 1 || w[1] == 2 * w[0] + 2)
            .count();
        assert!(
            descending_pairs > tree_reads.len() / 2,
            "most consecutive reads follow child edges"
        );
    }

    #[test]
    fn rebuild_writes_hit_the_top_levels() {
        let traces = generate(8, 20_000, 3);
        let base = super::super::shared_region(0, node_count()).block(0).get();
        let tree_writes: Vec<u64> = traces
            .iter()
            .flatten()
            .filter(|o| o.is_write() && o.block.get() >= base)
            .map(|o| o.block.get() - base)
            .collect();
        assert!(!tree_writes.is_empty(), "rebuilds happen");
        assert!(
            tree_writes.iter().all(|&n| n < 31),
            "rebuilds stay near the root"
        );
    }

    #[test]
    fn particles_stay_private() {
        let traces = generate(4, 3000, 4);
        let mut writers: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            Default::default();
        for (c, t) in traces.iter().enumerate() {
            for op in t
                .iter()
                .filter(|o| o.is_write() && o.block.get() < (1 << 30))
            {
                writers.entry(op.block.get()).or_default().insert(c);
            }
        }
        assert!(writers.values().all(|w| w.len() == 1));
    }
}
