//! `canneal` — a canneal-like pointer-chasing annealer.
//!
//! Cores wander a huge shared netlist with essentially no locality,
//! occasionally swapping two elements (paired writes). Reuse distances
//! are enormous, sharing is incidental (any core may touch any block),
//! and most blocks a directory tracks are dead by the time they conflict
//! — the ideal case for silent eviction of stale private entries.

use super::shared_region;
use stashdir_common::{DetRng, MemOp};

/// Shared netlist size in blocks (much larger than the chip's caches).
const NETLIST: u64 = 1 << 18;
/// Probability an element visit performs a swap (two writes).
const SWAP_PROB: f64 = 0.1;

/// Generates the traces.
pub fn generate(cores: u16, ops_per_core: usize, seed: u64) -> Vec<Vec<MemOp>> {
    let netlist = shared_region(0, NETLIST);
    let mut root = DetRng::seed_from(seed);
    (0..cores as usize)
        .map(|_| {
            let mut rng = root.fork();
            let mut ops = Vec::with_capacity(ops_per_core);
            while ops.len() < ops_per_core {
                // Chase a few random pointers.
                let a = rng.below(NETLIST);
                let b = rng.below(NETLIST);
                ops.push(MemOp::read(netlist.block(a)).with_think(2));
                ops.push(MemOp::read(netlist.block(b)).with_think(2));
                if rng.chance(SWAP_PROB) {
                    ops.push(MemOp::write(netlist.block(a)).with_think(3));
                    ops.push(MemOp::write(netlist.block(b)).with_think(3));
                }
            }
            ops.truncate(ops_per_core);
            ops
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = generate(4, 800, 3);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|t| t.len() == 800));
        assert_eq!(a, generate(4, 800, 3));
        assert_ne!(a, generate(4, 800, 4), "different seeds wander differently");
    }

    #[test]
    fn poor_locality() {
        let traces = generate(1, 5000, 1);
        let distinct: std::collections::HashSet<u64> =
            traces[0].iter().map(|o| o.block.get()).collect();
        assert!(
            distinct.len() > 4000,
            "pointer chasing should rarely repeat, got {} distinct",
            distinct.len()
        );
    }

    #[test]
    fn swaps_write_in_pairs() {
        let traces = generate(1, 10_000, 2);
        let writes = traces[0].iter().filter(|o| o.is_write()).count();
        // ~10% of visits swap; each visit is ~2 reads (+2 writes when
        // swapping), so writes ≈ ops * 2*0.1/2.2 ≈ 9%.
        let frac = writes as f64 / traces[0].len() as f64;
        assert!((0.04..0.2).contains(&frac), "write fraction {frac}");
    }
}
