//! `pipeline` — a dedup/ferret-like pipeline-parallel kernel.
//!
//! Cores form a ring of stages; work items flow stage to stage through
//! per-edge queues. Unlike [`producer_consumer`](super::producer_consumer)
//! (isolated pairs), every core is simultaneously a consumer of its
//! predecessor and a producer for its successor, so queue blocks chain
//! ownership transfers across the whole chip, and each stage keeps a
//! private working area (hash tables, buffers).

use super::{private_region, shared_region};
use stashdir_common::{DetRng, MemOp};

/// Queue capacity in blocks per pipeline edge.
const QUEUE: u64 = 128;
/// Consumer lag behind the producer (slots).
const LAG: u64 = 8;
/// Private working-area size per stage.
const SCRATCH: u64 = 1024;

/// Generates the traces.
pub fn generate(cores: u16, ops_per_core: usize, seed: u64) -> Vec<Vec<MemOp>> {
    let mut root = DetRng::seed_from(seed);
    (0..cores as usize)
        .map(|c| {
            let mut rng = root.fork();
            // Edge i connects stage i -> stage (i+1) % cores.
            let inbound = shared_region((c + cores as usize - 1) % cores as usize, QUEUE);
            let outbound = shared_region(c, QUEUE);
            let scratch = private_region(c, SCRATCH);
            let mut ops = Vec::with_capacity(ops_per_core);
            let mut slot = 0u64;
            while ops.len() < ops_per_core {
                // Take an item from the inbound queue (trailing the
                // upstream producer).
                ops.push(MemOp::read(inbound.block(slot.wrapping_sub(LAG))).with_think(2));
                // Stage work: hash-table style scatter into the private
                // working area.
                for _ in 0..3 {
                    if ops.len() >= ops_per_core {
                        break;
                    }
                    let b = scratch.block(rng.below(SCRATCH));
                    ops.push(MemOp::read(b).with_think(2));
                    ops.push(MemOp::write(b).with_think(2));
                }
                // Emit to the outbound queue.
                ops.push(MemOp::write(outbound.block(slot)).with_think(2));
                slot += 1;
            }
            ops.truncate(ops_per_core);
            ops
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = generate(4, 500, 3);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|t| t.len() == 500));
        assert_eq!(a, generate(4, 500, 3));
    }

    #[test]
    fn stages_chain_through_queues() {
        let traces = generate(4, 2000, 1);
        // Stage 1 reads what stage 0 writes (queue region 0).
        let stage0_writes: std::collections::HashSet<u64> = traces[0]
            .iter()
            .filter(|o| o.is_write() && o.block.get() >= (1 << 30))
            .map(|o| o.block.get())
            .collect();
        let stage1_reads: std::collections::HashSet<u64> = traces[1]
            .iter()
            .filter(|o| !o.is_write() && o.block.get() >= (1 << 30))
            .map(|o| o.block.get())
            .collect();
        assert!(
            stage0_writes.intersection(&stage1_reads).count() > 0,
            "stage 1 consumes stage 0's queue"
        );
    }

    #[test]
    fn ring_wraps_around() {
        let traces = generate(4, 2000, 1);
        // Stage 0 reads stage 3's outbound queue (region 3).
        let region3 = super::super::shared_region(3, QUEUE).block(0).get();
        assert!(
            traces[0]
                .iter()
                .any(|o| !o.is_write() && (region3..region3 + QUEUE).contains(&o.block.get())),
            "the pipeline is a ring"
        );
    }

    #[test]
    fn scratch_stays_private() {
        let traces = generate(4, 2000, 2);
        let mut writers: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            Default::default();
        for (c, t) in traces.iter().enumerate() {
            for op in t
                .iter()
                .filter(|o| o.is_write() && o.block.get() < (1 << 30))
            {
                writers.entry(op.block.get()).or_default().insert(c);
            }
        }
        assert!(writers.values().all(|w| w.len() == 1));
    }
}
