//! `stencil` — an ocean/fluidanimate-like iterative grid solver.
//!
//! The grid's rows are block-partitioned across cores. Each sweep reads
//! the core's own rows plus the boundary rows of its two neighbors, then
//! writes its own rows. Sharing is pairwise between neighbors: blocks are
//! mostly private with a thin read-shared halo that gets re-written by
//! its owner every sweep (producer→consumer between neighbors).

use super::shared_region;
use stashdir_common::MemOp;

/// Rows (in blocks) owned by each core.
const ROWS_PER_CORE: u64 = 512;

/// Generates the traces.
pub fn generate(cores: u16, ops_per_core: usize, _seed: u64) -> Vec<Vec<MemOp>> {
    // The whole grid lives in one shared region, but partitioning makes
    // interior blocks effectively private.
    let grid = shared_region(0, ROWS_PER_CORE * cores as u64);
    (0..cores as usize)
        .map(|c| {
            let my_base = c as u64 * ROWS_PER_CORE;
            let up_boundary = ((c as u64 + cores as u64 - 1) % cores as u64) * ROWS_PER_CORE
                + (ROWS_PER_CORE - 1);
            let down_boundary = ((c as u64 + 1) % cores as u64) * ROWS_PER_CORE;
            let mut ops = Vec::with_capacity(ops_per_core);
            let mut row = 0u64;
            while ops.len() < ops_per_core {
                let mine = grid.block(my_base + row);
                // 5-point stencil: self, up, down (left/right share the
                // block at 64-byte granularity).
                ops.push(MemOp::read(mine).with_think(2));
                let up = if row == 0 {
                    grid.block(up_boundary)
                } else {
                    grid.block(my_base + row - 1)
                };
                let down = if row == ROWS_PER_CORE - 1 {
                    grid.block(down_boundary)
                } else {
                    grid.block(my_base + row + 1)
                };
                ops.push(MemOp::read(up).with_think(1));
                ops.push(MemOp::read(down).with_think(1));
                ops.push(MemOp::write(mine).with_think(5));
                row = (row + 1) % ROWS_PER_CORE;
            }
            ops.truncate(ops_per_core);
            ops
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = generate(4, 300, 0);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|t| t.len() == 300));
        assert_eq!(a, generate(4, 300, 99), "stencil ignores the seed");
    }

    #[test]
    fn neighbors_share_boundary_rows() {
        let traces = generate(4, 4 * ROWS_PER_CORE as usize, 0);
        // Core 1 must read core 0's last row and core 2's first row.
        let core1_blocks: std::collections::HashSet<u64> =
            traces[1].iter().map(|o| o.block.get()).collect();
        let core0_last = traces[0]
            .iter()
            .filter(|o| o.is_write())
            .map(|o| o.block.get())
            .max()
            .unwrap();
        assert!(
            core1_blocks.contains(&core0_last),
            "core 1 reads core 0's boundary row"
        );
    }

    #[test]
    fn writes_stay_in_own_partition() {
        let traces = generate(4, 2000, 0);
        let base = super::super::shared_region(0, ROWS_PER_CORE * 4)
            .block(0)
            .get();
        for (c, t) in traces.iter().enumerate() {
            for op in t.iter().filter(|o| o.is_write()) {
                let row = op.block.get() - base;
                let owner = row / ROWS_PER_CORE;
                assert_eq!(owner as usize, c, "cores write only their own rows");
            }
        }
    }
}
