//! The per-core private cache hierarchy: L1 + L2, with L2 as the
//! coherence point and L1 kept strictly inclusive below it.
//!
//! Coherence state ([`PrivState`]) lives in L2 lines. The L1 holds a
//! presence + writability mirror: an L1 line exists only when the L2 line
//! does, and is writable only when the L2 line is Modified. Probes land on
//! L2 and back-propagate into L1.
//!
//! Dirty evictions park their data in a **writeback buffer** until the
//! home has processed the `PutM`; probes that race with the eviction are
//! answered from the buffer, which is how the protocol resolves the
//! owner-evicted-while-forward-in-flight race.

use serde::{Deserialize, Serialize};
use stashdir_common::{BlockAddr, CoreId, FxHashMap, MemOp, MemOpKind};
use stashdir_mem::{CacheConfig, CacheStats, SetAssoc};
use stashdir_protocol::{
    local_access, probe as probe_fsm, AccessOutcome, Grant, PrivState, Probe, ProbeReply, Request,
};

/// An L2 line: coherence state plus the data version it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct L2Line {
    /// MESI state.
    pub state: PrivState,
    /// Version of the data held (see [`crate::values`]).
    pub version: u64,
}

/// A parked eviction awaiting `Put*` processing at the home.
///
/// Every eviction that sends a `Put` parks here until the home processes
/// the message. Probes that race with the eviction are answered from this
/// buffer and mark the entry **claimed**; the home uses the claim flag to
/// decide whether an untracked-but-stashed `PutM` is the hidden owner's
/// authoritative writeback (unclaimed) or a raced duplicate whose data
/// already reached its new owner (claimed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WbEntry {
    /// Version of the data in flight (meaningful when `dirty`).
    pub version: u64,
    /// The data was dirty (a `PutM`).
    pub dirty: bool,
    /// A probe already extracted this entry's data.
    pub claimed: bool,
}

/// The outcome of a core's access attempt against its private hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// Served locally.
    Hit {
        /// L1 or L2 latency.
        latency: u64,
        /// Version observed (pre-write value for stores).
        version: u64,
        /// `true` when served by the L1.
        in_l1: bool,
    },
    /// A coherence transaction is needed.
    Miss {
        /// The request to send to the home.
        request: Request,
        /// Lookup latency spent before the request leaves (L1 + L2).
        latency: u64,
    },
}

/// A private block evicted by a fill, with the message it owes the home.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The displaced block.
    pub block: BlockAddr,
    /// `PutS`/`PutE`/`PutM` to send, or `None` for silent clean drops.
    pub put: Option<Request>,
    /// Version carried by a `PutM` (0 otherwise).
    pub version: u64,
}

/// A private cache's answer to a probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeAnswer {
    /// The wire reply.
    pub reply: ProbeReply,
    /// Version of any data carried.
    pub version: u64,
    /// `true` when the cache keeps a (downgraded) valid copy.
    pub retained: bool,
}

/// One core's L1 + L2 + writeback buffer.
#[derive(Debug)]
pub struct PrivateHier {
    core: CoreId,
    /// Payload is "writable": true iff the L2 line is Modified.
    l1: SetAssoc<bool>,
    l2: SetAssoc<L2Line>,
    wb: FxHashMap<BlockAddr, WbEntry>,
    l1_latency: u64,
    l2_latency: u64,
    notify_clean: bool,
    /// L1 accounting.
    pub l1_stats: CacheStats,
    /// L2 accounting.
    pub l2_stats: CacheStats,
}

impl PrivateHier {
    /// Builds the hierarchy for `core` from the two level configurations.
    pub fn new(
        core: CoreId,
        l1: &CacheConfig,
        l2: &CacheConfig,
        notify_clean: bool,
        seed: u64,
    ) -> Self {
        PrivateHier {
            core,
            l1: SetAssoc::new(l1.num_sets(), l1.assoc(), l1.repl, seed ^ 0xA5A5),
            l2: SetAssoc::new(l2.num_sets(), l2.assoc(), l2.repl, seed ^ 0x5A5A),
            wb: FxHashMap::default(),
            l1_latency: l1.latency,
            l2_latency: l2.latency,
            notify_clean,
            l1_stats: CacheStats::default(),
            l2_stats: CacheStats::default(),
        }
    }

    /// The owning core.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Attempts `op` locally. Hits mutate state (recency, silent E→M
    /// upgrade); misses leave state untouched and name the request to
    /// send.
    pub fn access(&mut self, op: MemOp) -> AccessResult {
        let block = op.block;
        // L1 first. Inclusion (L1 content ⊆ L2 content) means the L2 line
        // is readable up front; if it were somehow absent the L1 entry is
        // stale, so treat that as an L1 miss and resolve below rather
        // than panicking on the hot path.
        if let (Some(&writable), Some(l2_line)) = (self.l1.get(block), self.l2.get(block).copied())
        {
            match op.kind {
                MemOpKind::Read => {
                    self.l1_stats.hits.incr();
                    self.l1.touch(block);
                    self.l2.touch(block);
                    return AccessResult::Hit {
                        latency: self.l1_latency,
                        version: l2_line.version,
                        in_l1: true,
                    };
                }
                MemOpKind::Write if writable => {
                    debug_assert_eq!(l2_line.state, PrivState::Modified);
                    self.l1_stats.hits.incr();
                    self.l1.touch(block);
                    self.l2.touch(block);
                    return AccessResult::Hit {
                        latency: self.l1_latency,
                        version: l2_line.version,
                        in_l1: true,
                    };
                }
                MemOpKind::Write => {
                    // Present but not writable: resolve at L2 below
                    // (silent E→M upgrade or a coherence Upgrade).
                    self.l1_stats.misses.incr();
                }
            }
        } else {
            debug_assert!(self.l1.get(block).is_none(), "L1 content ⊄ L2 content");
            self.l1_stats.misses.incr();
        }

        // L2.
        let Some(line) = self.l2.get(block).copied() else {
            self.l2_stats.misses.incr();
            let request = match op.kind {
                MemOpKind::Read => Request::GetS,
                MemOpKind::Write => Request::GetM,
            };
            return AccessResult::Miss {
                request,
                latency: self.l1_latency + self.l2_latency,
            };
        };
        match local_access(line.state, op.kind) {
            AccessOutcome::Hit(next) => {
                self.l2_stats.hits.incr();
                // The line was just read from L2, so the mutable lookup
                // cannot miss; skip the write rather than panic if it
                // ever did.
                debug_assert!(self.l2.get(block).is_some());
                if let Some(l) = self.l2.access_mut(block) {
                    l.state = next;
                }
                self.refresh_l1(block, next);
                AccessResult::Hit {
                    latency: self.l1_latency + self.l2_latency,
                    version: line.version,
                    in_l1: false,
                }
            }
            AccessOutcome::Miss(request) => {
                self.l2_stats.misses.incr();
                AccessResult::Miss {
                    request,
                    latency: self.l1_latency + self.l2_latency,
                }
            }
        }
    }

    /// Brings `block` into L1 (filling or refreshing) with the writability
    /// implied by the L2 state, evicting an L1 victim silently if needed.
    fn refresh_l1(&mut self, block: BlockAddr, state: PrivState) {
        let writable = state == PrivState::Modified;
        match self.l1.get_mut(block) {
            Some(w) => {
                *w = writable;
                self.l1.touch(block);
            }
            None => {
                if self.l1.insert(block, writable).is_some() {
                    self.l1_stats.evictions.incr();
                }
            }
        }
    }

    /// Installs a granted block (data reply from the home or owner),
    /// returning the L2 victim this displaces, if any.
    ///
    /// # Panics
    ///
    /// Panics if the block is already present in L2 (grants follow
    /// misses).
    pub fn fill(&mut self, block: BlockAddr, grant: Grant, version: u64) -> Option<Evicted> {
        let state = match grant {
            Grant::Shared => PrivState::Shared,
            Grant::Exclusive => PrivState::Exclusive,
            Grant::Modified => PrivState::Modified,
        };
        let evicted = self
            .l2
            .insert(block, L2Line { state, version })
            .map(|(vblock, vline)| self.evict_line(vblock, vline));
        self.refresh_l1(block, state);
        evicted
    }

    fn evict_line(&mut self, block: BlockAddr, line: L2Line) -> Evicted {
        self.l2_stats.evictions.incr();
        // Inclusive hierarchy: purge the L1 copy.
        self.l1.remove(block);
        let put = match line.state {
            PrivState::Modified => {
                self.l2_stats.writebacks.incr();
                Some(Request::PutM)
            }
            PrivState::Exclusive => self.notify_clean.then_some(Request::PutE),
            PrivState::Shared => self.notify_clean.then_some(Request::PutS),
            PrivState::Invalid => unreachable!("invalid lines are never stored"),
        };
        if put.is_some() {
            // Park until the home processes the Put, so racing probes can
            // be answered and claims detected.
            self.wb.insert(
                block,
                WbEntry {
                    version: line.version,
                    dirty: line.state == PrivState::Modified,
                    claimed: false,
                },
            );
        }
        Evicted {
            block,
            put,
            version: if line.state == PrivState::Modified {
                line.version
            } else {
                0
            },
        }
    }

    /// Grants write permission to an already-present block (data-less
    /// `Upgrade` completion).
    ///
    /// # Panics
    ///
    /// Panics if the block is absent from L2 — the home decided the copy
    /// was still live, so it must be.
    pub fn grant_permission(&mut self, block: BlockAddr) -> u64 {
        let line = self
            .l2
            .access_mut(block)
            // lint: allow(expect) — documented panic contract (doc comment).
            .expect("data-less grant targets a live copy");
        line.state = PrivState::Modified;
        let version = line.version;
        self.refresh_l1(block, PrivState::Modified);
        version
    }

    /// Stamps a completed write: the block must be present and Modified.
    ///
    /// # Panics
    ///
    /// Panics if the block is absent or not writable.
    pub fn record_write(&mut self, block: BlockAddr, version: u64) {
        // lint: allow(expect) — documented panic contract (doc comment).
        let line = self.l2.get_mut(block).expect("write target present");
        assert_eq!(line.state, PrivState::Modified, "write without ownership");
        line.version = version;
    }

    /// Applies a coherence probe, answering from L2, the writeback
    /// buffer, or (for races/stale discoveries) thin air.
    pub fn apply_probe(&mut self, block: BlockAddr, p: Probe) -> ProbeAnswer {
        if let Some(line) = self.l2.get(block).copied() {
            let effect = probe_fsm(line.state, p);
            if effect.next == PrivState::Invalid {
                self.l2.remove(block);
                self.l1.remove(block);
                self.l2_stats.coherence_invalidations.incr();
            } else if effect.next != line.state {
                // Just read from L2; a miss here is unreachable, so skip
                // the write instead of panicking.
                debug_assert!(self.l2.get(block).is_some());
                if let Some(l) = self.l2.get_mut(block) {
                    l.state = effect.next;
                }
                if self.l1.contains(block) {
                    self.refresh_l1(block, effect.next);
                }
            }
            return ProbeAnswer {
                reply: effect.reply,
                version: line.version,
                retained: effect.next != PrivState::Invalid,
            };
        }
        if let Some(entry) = self.wb.get_mut(&block) {
            // The copy is in flight to the home; surrender its data and
            // mark the parked Put as claimed.
            entry.claimed = true;
            return ProbeAnswer {
                reply: if entry.dirty {
                    ProbeReply::AckDirtyData
                } else {
                    ProbeReply::AckData
                },
                version: entry.version,
                retained: false,
            };
        }
        let effect = probe_fsm(PrivState::Invalid, p);
        ProbeAnswer {
            reply: effect.reply,
            version: 0,
            retained: false,
        }
    }

    /// Removes and returns the parked eviction entry once the home has
    /// processed its `Put` (accepted or stale).
    pub fn wb_take(&mut self, block: BlockAddr) -> Option<WbEntry> {
        self.wb.remove(&block)
    }

    /// The block's current L2 state (Invalid when absent).
    pub fn state_of(&self, block: BlockAddr) -> PrivState {
        self.l2
            .get(block)
            .map_or(PrivState::Invalid, |line| line.state)
    }

    /// Snapshot of all L2-resident blocks.
    pub fn l2_entries(&self) -> Vec<(BlockAddr, L2Line)> {
        self.l2.iter().map(|(b, l)| (b, *l)).collect()
    }

    /// Snapshot of all L1-resident blocks.
    pub fn l1_blocks(&self) -> Vec<BlockAddr> {
        self.l1.iter().map(|(b, _)| b).collect()
    }

    /// Snapshot of parked writebacks.
    pub fn wb_entries(&self) -> Vec<(BlockAddr, WbEntry)> {
        let mut v: Vec<_> = self.wb.iter().map(|(b, e)| (*b, *e)).collect();
        v.sort_by_key(|(b, _)| *b);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stashdir_mem::ReplKind;

    fn hier(notify: bool) -> PrivateHier {
        let l1 = CacheConfig::new(256, 2, 64, 1, ReplKind::Lru); // 4 blocks
        let l2 = CacheConfig::new(512, 2, 64, 8, ReplKind::Lru); // 8 blocks
        PrivateHier::new(CoreId::new(0), &l1, &l2, notify, 7)
    }

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(i)
    }

    #[test]
    fn cold_read_misses_with_gets() {
        let mut h = hier(true);
        match h.access(MemOp::read(b(1))) {
            AccessResult::Miss { request, latency } => {
                assert_eq!(request, Request::GetS);
                assert_eq!(latency, 9);
            }
            other => panic!("expected miss, got {other:?}"),
        }
        assert_eq!(h.l2_stats.misses.get(), 1);
    }

    #[test]
    fn fill_then_read_hits_l1() {
        let mut h = hier(true);
        h.fill(b(1), Grant::Exclusive, 0);
        match h.access(MemOp::read(b(1))) {
            AccessResult::Hit { latency, in_l1, .. } => {
                assert_eq!(latency, 1);
                assert!(in_l1);
            }
            other => panic!("expected L1 hit, got {other:?}"),
        }
    }

    #[test]
    fn write_to_exclusive_upgrades_silently() {
        let mut h = hier(true);
        h.fill(b(1), Grant::Exclusive, 0);
        match h.access(MemOp::write(b(1))) {
            AccessResult::Hit { in_l1, .. } => assert!(!in_l1, "upgrade resolves at L2"),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(h.state_of(b(1)), PrivState::Modified);
        // Second write now hits in L1 (writable mirror updated).
        match h.access(MemOp::write(b(1))) {
            AccessResult::Hit { in_l1, .. } => assert!(in_l1),
            other => panic!("expected L1 hit, got {other:?}"),
        }
    }

    #[test]
    fn write_to_shared_needs_upgrade() {
        let mut h = hier(true);
        h.fill(b(1), Grant::Shared, 3);
        match h.access(MemOp::write(b(1))) {
            AccessResult::Miss { request, .. } => assert_eq!(request, Request::Upgrade),
            other => panic!("expected upgrade miss, got {other:?}"),
        }
        assert_eq!(
            h.state_of(b(1)),
            PrivState::Shared,
            "state untouched on miss"
        );
    }

    #[test]
    fn grant_permission_completes_upgrade() {
        let mut h = hier(true);
        h.fill(b(1), Grant::Shared, 3);
        let version = h.grant_permission(b(1));
        assert_eq!(version, 3);
        assert_eq!(h.state_of(b(1)), PrivState::Modified);
    }

    #[test]
    fn record_write_stamps_version() {
        let mut h = hier(true);
        h.fill(b(1), Grant::Modified, 0);
        h.record_write(b(1), 42);
        match h.access(MemOp::read(b(1))) {
            AccessResult::Hit { version, .. } => assert_eq!(version, 42),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn dirty_eviction_parks_in_wb_buffer() {
        let mut h = hier(true);
        // L2 has 4 sets x 2 ways; blocks 0, 4, 8 share set 0.
        h.fill(b(0), Grant::Modified, 0);
        h.record_write(b(0), 10);
        h.fill(b(4), Grant::Exclusive, 0);
        let evicted = h.fill(b(8), Grant::Exclusive, 0).expect("set 0 overflows");
        assert_eq!(evicted.block, b(0));
        assert_eq!(evicted.put, Some(Request::PutM));
        assert_eq!(evicted.version, 10);
        assert_eq!(
            h.wb_entries(),
            vec![(
                b(0),
                WbEntry {
                    version: 10,
                    dirty: true,
                    claimed: false
                }
            )]
        );
        // A racing probe is served from the buffer and claims it.
        let ans = h.apply_probe(b(0), Probe::FwdGetM);
        assert_eq!(ans.reply, ProbeReply::AckDirtyData);
        assert_eq!(ans.version, 10);
        assert!(!ans.retained);
        let entry = h.wb_take(b(0)).unwrap();
        assert!(entry.claimed);
        assert!(h.wb_entries().is_empty());
    }

    #[test]
    fn clean_evictions_notify_or_stay_silent() {
        for (notify, expected) in [(true, Some(Request::PutE)), (false, None)] {
            let mut h = hier(notify);
            h.fill(b(0), Grant::Exclusive, 0);
            h.fill(b(4), Grant::Exclusive, 0);
            let evicted = h.fill(b(8), Grant::Exclusive, 0).unwrap();
            assert_eq!(evicted.put, expected, "notify={notify}");
            if notify {
                // Clean evictions park too (clean, unclaimed) so racing
                // probes can answer and the home can detect claims.
                let entry = h.wb_take(b(0)).unwrap();
                assert!(!entry.dirty);
                assert!(!entry.claimed);
            } else {
                assert!(h.wb_entries().is_empty(), "silent drops never park");
            }
        }
    }

    #[test]
    fn clean_wb_entry_answers_probes_with_clean_data() {
        let mut h = hier(true);
        h.fill(b(0), Grant::Exclusive, 0);
        h.fill(b(4), Grant::Exclusive, 0);
        h.fill(b(8), Grant::Exclusive, 0); // evicts b(0) cleanly, parks it
        let ans = h.apply_probe(b(0), Probe::FwdGetS);
        assert_eq!(ans.reply, ProbeReply::AckData);
        assert!(!ans.retained);
        assert!(h.wb_take(b(0)).unwrap().claimed);
    }

    #[test]
    fn shared_eviction_sends_puts() {
        let mut h = hier(true);
        h.fill(b(0), Grant::Shared, 0);
        h.fill(b(4), Grant::Shared, 0);
        let evicted = h.fill(b(8), Grant::Shared, 0).unwrap();
        assert_eq!(evicted.put, Some(Request::PutS));
    }

    #[test]
    fn probe_invalidation_purges_both_levels() {
        let mut h = hier(true);
        h.fill(b(1), Grant::Modified, 0);
        h.record_write(b(1), 5);
        let ans = h.apply_probe(b(1), Probe::Inv);
        assert_eq!(ans.reply, ProbeReply::AckDirtyData);
        assert_eq!(ans.version, 5);
        assert!(!ans.retained);
        assert_eq!(h.state_of(b(1)), PrivState::Invalid);
        assert!(h.l1_blocks().is_empty());
        assert_eq!(h.l2_stats.coherence_invalidations.get(), 1);
        // Subsequent access misses.
        assert!(matches!(
            h.access(MemOp::read(b(1))),
            AccessResult::Miss { .. }
        ));
    }

    #[test]
    fn probe_downgrade_keeps_readable_copy() {
        let mut h = hier(true);
        h.fill(b(1), Grant::Modified, 0);
        h.record_write(b(1), 9);
        let ans = h.apply_probe(b(1), Probe::FwdGetS);
        assert!(ans.retained);
        assert_eq!(h.state_of(b(1)), PrivState::Shared);
        // Read still hits; write now misses with Upgrade.
        assert!(matches!(
            h.access(MemOp::read(b(1))),
            AccessResult::Hit { .. }
        ));
        assert!(matches!(
            h.access(MemOp::write(b(1))),
            AccessResult::Miss {
                request: Request::Upgrade,
                ..
            }
        ));
    }

    #[test]
    fn probe_to_absent_block_acks_without_data() {
        let mut h = hier(true);
        let ans = h.apply_probe(b(9), Probe::Inv);
        assert_eq!(ans.reply, ProbeReply::Ack);
        assert!(!ans.retained);
        let ans = h.apply_probe(
            b(9),
            Probe::Discovery(stashdir_protocol::DiscoveryIntent::Share),
        );
        assert_eq!(ans.reply, ProbeReply::NotPresent);
    }

    #[test]
    fn l1_inclusion_is_maintained_under_churn() {
        let mut h = hier(true);
        for i in 0..64 {
            h.fill(b(i), Grant::Exclusive, 0);
            h.access(MemOp::read(b(i)));
        }
        let l2: std::collections::HashSet<_> =
            h.l2_entries().into_iter().map(|(blk, _)| blk).collect();
        for blk in h.l1_blocks() {
            assert!(l2.contains(&blk), "L1 block {blk} missing from L2");
        }
    }

    #[test]
    #[should_panic(expected = "live copy")]
    fn permission_grant_to_absent_block_panics() {
        hier(true).grant_permission(b(1));
    }
}
