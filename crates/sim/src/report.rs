//! Simulation results.

use crate::fault::FaultSummary;
use serde::{Deserialize, Serialize};
use stashdir_common::StatSink;

/// One point of the run's time series (enabled with
/// [`SystemConfig::with_timeline`]).
///
/// [`SystemConfig::with_timeline`]: crate::SystemConfig::with_timeline
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineSample {
    /// Sample timestamp (cycles).
    pub cycle: u64,
    /// Directory entries in use chip-wide at the sample point.
    pub dir_occupancy: u64,
    /// Cumulative retired operations.
    pub ops: u64,
    /// Cumulative silent (stash) evictions.
    pub silent_evictions: u64,
    /// Cumulative invalidating directory evictions.
    pub invalidating_evictions: u64,
    /// Cumulative discovery rounds (demand + LLC-eviction).
    pub discoveries: u64,
}

/// One witnessed (row × column) protocol transition and how often it
/// fired, recorded only when the fault layer runs with transition
/// witnessing enabled ([`FaultConfig::witness`]). Row/column labels
/// match the lint protocol-model artifact so campaign coverage can be
/// diffed directly against the reachable set.
///
/// [`FaultConfig::witness`]: crate::fault::FaultConfig
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransitionHits {
    /// Matrix section: `private_probe`, `local_access`, `home` or
    /// `fault_response`.
    pub section: String,
    /// Row label (private state, or fault class for `fault_response`).
    pub row: String,
    /// Column label (probe, op, directory view or detector).
    pub col: String,
    /// Times the transition fired during the run.
    pub hits: u64,
}

/// The output of one simulation run: the execution time, completion
/// accounting, any invariant/consistency violations detected, and the
/// full statistics sink (caches, directory, NoC, DRAM, discovery).
///
/// # Examples
///
/// ```
/// use stashdir_common::{BlockAddr, MemOp};
/// use stashdir_sim::{Machine, SystemConfig};
///
/// let cfg = SystemConfig::default().with_cores(16);
/// let mut traces = vec![Vec::new(); 16];
/// traces[0].push(MemOp::read(BlockAddr::new(1)));
/// let report = Machine::new(cfg).run(traces);
/// report.assert_clean();
/// assert_eq!(report.completed_ops, 1);
/// assert!(report.stat("l2.misses") >= 1.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Execution time: the cycle at which the last core retired its last
    /// operation.
    pub cycles: u64,
    /// Operations retired across all cores.
    pub completed_ops: u64,
    /// Coherence/consistency violations detected by the checker and the
    /// value tracker. Empty on a correct run.
    pub violations: Vec<String>,
    /// Every exported counter and derived statistic.
    pub sink: StatSink,
    /// Periodic samples of the run (empty unless the configuration set a
    /// timeline interval).
    pub timeline: Vec<TimelineSample>,
    /// Fault-injection and detection accounting (all zeros unless the
    /// run was built with [`Machine::with_faults`]).
    ///
    /// [`Machine::with_faults`]: crate::Machine::with_faults
    pub fault: FaultSummary,
    /// Diagnostic snapshot (canonical JSON) dumped when a faulty run
    /// quiesced on a violation or stall; `None` on normal runs.
    pub snapshot: Option<String>,
    /// Per-transition hit counts, sorted by (section, row, col); empty
    /// unless the run witnessed transitions (campaign mode).
    pub coverage: Vec<TransitionHits>,
}

impl SimReport {
    /// A statistic by key, `0.0` when absent.
    pub fn stat(&self, key: &str) -> f64 {
        self.sink.get_or_zero(key)
    }

    /// Directory-eviction-induced invalidations (conventional sparse
    /// cost) plus LLC-inclusion invalidations, per 1000 retired
    /// operations — the metric of experiment E4.
    pub fn invalidations_per_kop(&self) -> f64 {
        if self.completed_ops == 0 {
            return 0.0;
        }
        (self.stat("dir.copies_invalidated") + self.stat("bank.inclusion_invalidations")) * 1000.0
            / self.completed_ops as f64
    }

    /// Discovery rounds per 1000 retired operations (stash overhead,
    /// experiment E6).
    pub fn discoveries_per_kop(&self) -> f64 {
        if self.completed_ops == 0 {
            return 0.0;
        }
        (self.stat("bank.discoveries") + self.stat("bank.evict_discoveries")) * 1000.0
            / self.completed_ops as f64
    }

    /// Fraction of directory evictions handled silently.
    pub fn silent_eviction_fraction(&self) -> f64 {
        let silent = self.stat("dir.silent_evictions");
        let total = silent + self.stat("dir.invalidating_evictions");
        if total == 0.0 {
            1.0
        } else {
            silent / total
        }
    }

    /// NoC flit-hops (traffic metric of experiment E7).
    pub fn flit_hops(&self) -> f64 {
        self.stat("noc.flit_hops")
    }

    /// Panics with the violation list if the run was not clean.
    ///
    /// # Panics
    ///
    /// Panics when any coherence or consistency violation was recorded.
    pub fn assert_clean(&self) {
        assert!(
            self.violations.is_empty(),
            "run had {} violations:\n{}",
            self.violations.len(),
            self.violations.join("\n")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pairs: &[(&str, f64)], ops: u64) -> SimReport {
        let mut sink = StatSink::new();
        for (k, v) in pairs {
            sink.put(*k, *v);
        }
        SimReport {
            cycles: 1000,
            completed_ops: ops,
            violations: Vec::new(),
            sink,
            timeline: Vec::new(),
            fault: FaultSummary::default(),
            snapshot: None,
            coverage: Vec::new(),
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report(
            &[
                ("dir.copies_invalidated", 30.0),
                ("bank.inclusion_invalidations", 10.0),
                ("bank.discoveries", 5.0),
                ("bank.evict_discoveries", 5.0),
                ("dir.silent_evictions", 90.0),
                ("dir.invalidating_evictions", 10.0),
                ("noc.flit_hops", 1234.0),
            ],
            2000,
        );
        assert_eq!(r.invalidations_per_kop(), 20.0);
        assert_eq!(r.discoveries_per_kop(), 5.0);
        assert_eq!(r.silent_eviction_fraction(), 0.9);
        assert_eq!(r.flit_hops(), 1234.0);
    }

    #[test]
    fn zero_ops_yield_zero_rates() {
        let r = report(&[("dir.copies_invalidated", 5.0)], 0);
        assert_eq!(r.invalidations_per_kop(), 0.0);
        assert_eq!(r.discoveries_per_kop(), 0.0);
    }

    #[test]
    fn no_evictions_is_vacuously_silent() {
        assert_eq!(report(&[], 1).silent_eviction_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "1 violations")]
    fn assert_clean_panics_on_violation() {
        let mut r = report(&[], 1);
        r.violations.push("boom".into());
        r.assert_clean();
    }
}
