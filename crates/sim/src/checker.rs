//! Machine-wide coherence and consistency invariants.
//!
//! The checker runs over a quiesced machine snapshot — which, under the
//! simulator's program-order discipline, is *every* point between event
//! handlers — and verifies the invariants DESIGN.md commits to:
//!
//! * **I1/I2 (directory coverage)**: every valid private copy is named by
//!   its home directory entry, or (stash directory only) hidden under a
//!   set stash bit.
//! * **I3 (single writer)**: at most one E/M copy of a block exists, and
//!   it excludes all other valid copies.
//! * **I4 (LLC inclusion)**: every valid private copy is LLC-resident at
//!   its home.
//! * **I5 (value correctness)**: every valid private copy holds the
//!   latest written version, and the latest version is reachable (some
//!   copy, parked writeback, LLC line or DRAM holds it).
//! * **I6 (liveness, final only)**: every core retired its whole trace
//!   and no writebacks are left parked.
//! * **I7 (L1 inclusion)**: each core's L1 content is a subset of its L2
//!   content.
//! * **Stash discipline**: a set stash bit implies the block is untracked
//!   at its home.

use crate::machine::Machine;
use stashdir_common::{BlockAddr, CoreId};
use stashdir_protocol::{DirView, PrivState};
use std::collections::{HashMap, HashSet};

/// Runs every invariant over `machine`, returning human-readable
/// violation descriptions (empty = clean). `final_check` additionally
/// verifies liveness (I6).
pub fn check(machine: &Machine, final_check: bool) -> Vec<String> {
    let mut problems = Vec::new();
    let uses_stash = machine.config().dir.uses_stash();

    // Gather every valid private copy: block -> [(core, state, version)].
    let mut copies: HashMap<BlockAddr, Vec<(CoreId, PrivState, u64)>> = HashMap::new();
    for hier in &machine.privs {
        let core = hier.core();
        // I7: L1 ⊆ L2.
        let l2_blocks: HashSet<BlockAddr> = hier.l2_entries().iter().map(|(b, _)| *b).collect();
        for l1_block in hier.l1_blocks() {
            if !l2_blocks.contains(&l1_block) {
                problems.push(format!("I7: {core} holds {l1_block} in L1 but not L2"));
            }
        }
        for (block, line) in hier.l2_entries() {
            copies
                .entry(block)
                .or_default()
                .push((core, line.state, line.version));
        }
    }

    // Sorted so violation messages come out in block order, not hash
    // order — checker output feeds failure reports.
    let mut copies_by_block: Vec<_> = copies.iter().collect();
    copies_by_block.sort_by_key(|(b, _)| **b);
    for (&block, holders) in copies_by_block {
        let home = machine.home(block);
        // lint: allow(indexing) — `home()`/`dir_bank_of()` return in-range BankIds.
        let bank = &machine.banks[home.index()];
        // The entry may live away from the home (opaque sharding).
        // lint: allow(indexing) — `dir_bank_of()` returns an in-range BankId.
        let view = machine.banks[machine.dir_bank_of(block).index()].dir_view(block);
        let stash = bank.stash_bit(block);
        let llc_resident = bank.llc_peek(block).is_some();

        // I3: single writer.
        let exclusive_holders: Vec<CoreId> = holders
            .iter()
            .filter(|(_, s, _)| s.is_exclusive())
            .map(|(c, _, _)| *c)
            .collect();
        if exclusive_holders.len() > 1 {
            problems.push(format!(
                "I3: {block} has multiple exclusive holders: {exclusive_holders:?}"
            ));
        }
        if let Some(first) = exclusive_holders.first() {
            if holders.len() > 1 {
                problems.push(format!(
                    "I3: {block} has an exclusive copy at {first} alongside {} other copies",
                    holders.len() - 1
                ));
            }
        }

        // I4: LLC inclusion.
        if !llc_resident {
            problems.push(format!(
                "I4: {block} cached privately but not resident in {home}'s LLC"
            ));
        }

        // I1/I2: directory coverage per holder, plus state agreement.
        for (core, state, _) in holders {
            let covered = match &view {
                DirView::Untracked => false,
                DirView::Exclusive(owner) => owner == core,
                DirView::Shared(set) => set.contains(*core),
            };
            let hidden = uses_stash && stash;
            if !covered && !hidden {
                problems.push(format!(
                    "I1/I2: {core} holds {block} ({state}) but {home} tracks {view} with stash={stash}"
                ));
            }
            if covered && state.is_exclusive() && !matches!(view, DirView::Exclusive(_)) {
                problems.push(format!(
                    "I1: {core} holds {block} in {state} but {home} tracks it as {view}"
                ));
            }
        }

        // I5: every valid copy holds the latest version.
        let latest = machine.values.latest(block);
        for (core, state, version) in holders {
            if *version != latest {
                problems.push(format!(
                    "I5: {core} holds {block} ({state}) at version {version}, latest is {latest}"
                ));
            }
        }
    }

    // Stash discipline + I5 reachability, scanned from the banks.
    for bank in &machine.banks {
        for (block, line) in bank.llc_entries() {
            if line.stash {
                if !uses_stash {
                    problems.push(format!(
                        "stash: {block} has a stash bit under a non-stash directory"
                    ));
                }
                // lint: allow(indexing) — `dir_bank_of()` returns an in-range BankId.
                if machine.banks[machine.dir_bank_of(block).index()].dir_view(block)
                    != DirView::Untracked
                {
                    problems.push(format!(
                        "stash: {block} is tracked yet keeps its stash bit set"
                    ));
                }
            }
        }
        // Directory entries must point at resident LLC lines (inclusion
        // seen from the home side — an opaque shard tracks blocks homed at
        // *other* banks, so residence is checked at each block's home).
        for (block, _) in bank.dir_entries() {
            // lint: allow(indexing) — `home()` returns an in-range BankId.
            if machine.banks[machine.home(block).index()]
                .llc_peek(block)
                .is_none()
            {
                problems.push(format!(
                    "I4: {} tracks {block} without an LLC line",
                    bank.id()
                ));
            }
        }
    }

    // I5 reachability: the latest version of every written block exists
    // somewhere.
    let mut wb_versions: HashMap<BlockAddr, u64> = HashMap::new();
    for hier in &machine.privs {
        for (block, entry) in hier.wb_entries() {
            let best = wb_versions.entry(block).or_insert(0);
            *best = (*best).max(entry.version);
        }
    }
    for (block, latest) in machine.values.written_blocks() {
        let in_copies = copies
            .get(&block)
            .map(|hs| hs.iter().any(|(_, _, v)| *v == latest))
            .unwrap_or(false);
        let in_wb = wb_versions.get(&block).copied().unwrap_or(0) == latest;
        // lint: allow(indexing) — `home()` returns an in-range BankId.
        let in_llc = machine.banks[machine.home(block).index()]
            .llc_peek(block)
            .is_some_and(|l| l.version == latest);
        let in_dram = machine.dram_store.get(&block).copied().unwrap_or(0) == latest;
        if !(in_copies || in_wb || in_llc || in_dram) {
            problems.push(format!(
                "I5: latest version {latest} of {block} is unreachable (lost write)"
            ));
        }
    }

    // I6: liveness (final only).
    if final_check {
        let cores = &machine.cores;
        for (i, (((pc, trace), pending), finish)) in cores
            .pc
            .iter()
            .zip(&cores.trace)
            .zip(&cores.pending)
            .zip(&cores.finish)
            .enumerate()
        {
            if *pc < trace.len() || pending.is_some() || finish.is_none() {
                problems.push(format!(
                    "I6: core{i} did not retire its trace (pc {}/{}, pending={})",
                    pc,
                    trace.len(),
                    pending.is_some()
                ));
            }
        }
        for hier in &machine.privs {
            if !hier.wb_entries().is_empty() {
                problems.push(format!(
                    "I6: {} still has parked writebacks at end of run",
                    hier.core()
                ));
            }
        }
    }

    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::LlcLine;
    use crate::config::{CoverageRatio, DirSpec, SystemConfig};
    use crate::machine::Machine;
    use stashdir_common::BlockAddr;
    use stashdir_protocol::Grant;

    /// A fresh, empty machine whose state the tests corrupt by hand.
    fn machine(dir: DirSpec) -> Machine {
        use stashdir_mem::{CacheConfig, ReplKind};
        let cfg = SystemConfig {
            cores: 4,
            l1: CacheConfig::new(256, 2, 64, 1, ReplKind::Lru),
            l2: CacheConfig::new(512, 2, 64, 4, ReplKind::Lru),
            llc_bank: CacheConfig::new(1024, 2, 64, 8, ReplKind::Lru),
            dir,
            ..SystemConfig::default()
        };
        Machine::new(cfg)
    }

    fn stash_machine() -> Machine {
        machine(DirSpec::stash(CoverageRatio::new(1, 8)))
    }

    /// Installs a fully consistent single-owner block: LLC line, directory
    /// entry and private copy all agree.
    fn install_consistent(m: &mut Machine, block: BlockAddr, core: u16) {
        let home = m.home(block);
        m.banks[home.index()].llc_insert(
            block,
            LlcLine {
                version: 0,
                dirty: false,
                stash: false,
            },
        );
        m.banks[home.index()].dir_install(block, DirView::Exclusive(CoreId::new(core)));
        m.privs[core as usize].fill(block, Grant::Exclusive, 0);
    }

    #[test]
    fn clean_machine_passes() {
        let mut m = stash_machine();
        install_consistent(&mut m, BlockAddr::new(0), 0);
        install_consistent(&mut m, BlockAddr::new(1), 1);
        assert!(check(&m, false).is_empty());
    }

    #[test]
    fn detects_untracked_private_copy() {
        let mut m = stash_machine();
        install_consistent(&mut m, BlockAddr::new(0), 0);
        let home = m.home(BlockAddr::new(0));
        m.banks[home.index()].dir_remove(BlockAddr::new(0));
        let problems = check(&m, false);
        assert!(
            problems.iter().any(|p| p.starts_with("I1/I2")),
            "{problems:?}"
        );
    }

    #[test]
    fn stash_bit_excuses_untracked_copy() {
        let mut m = stash_machine();
        install_consistent(&mut m, BlockAddr::new(0), 0);
        let home = m.home(BlockAddr::new(0));
        m.banks[home.index()].dir_remove(BlockAddr::new(0));
        m.banks[home.index()].set_stash_bit(BlockAddr::new(0), true);
        assert!(check(&m, false).is_empty(), "hidden copies are legal");
    }

    #[test]
    fn stash_bit_does_not_excuse_under_sparse() {
        let mut m = machine(DirSpec::sparse(CoverageRatio::new(1, 8)));
        install_consistent(&mut m, BlockAddr::new(0), 0);
        let home = m.home(BlockAddr::new(0));
        m.banks[home.index()].dir_remove(BlockAddr::new(0));
        m.banks[home.index()].set_stash_bit(BlockAddr::new(0), true);
        let problems = check(&m, false);
        assert!(problems.iter().any(|p| p.starts_with("I1/I2")));
        assert!(
            problems.iter().any(|p| p.contains("non-stash")),
            "a sparse machine must not carry stash bits: {problems:?}"
        );
    }

    #[test]
    fn detects_double_exclusive_owners() {
        let mut m = stash_machine();
        install_consistent(&mut m, BlockAddr::new(0), 0);
        // A second core conjures an exclusive copy out of thin air.
        m.privs[1].fill(BlockAddr::new(0), Grant::Modified, 0);
        let problems = check(&m, false);
        assert!(problems.iter().any(|p| p.starts_with("I3")), "{problems:?}");
    }

    #[test]
    fn detects_missing_llc_line() {
        let mut m = stash_machine();
        install_consistent(&mut m, BlockAddr::new(0), 0);
        let home = m.home(BlockAddr::new(0));
        m.banks[home.index()].llc_remove(BlockAddr::new(0));
        let problems = check(&m, false);
        assert!(problems.iter().any(|p| p.starts_with("I4")), "{problems:?}");
    }

    #[test]
    fn detects_stale_copy_version() {
        let mut m = stash_machine();
        install_consistent(&mut m, BlockAddr::new(0), 0);
        // The tracker believes a newer write exists somewhere.
        let v = m.values.on_write(CoreId::new(1), BlockAddr::new(0));
        assert!(v > 0);
        let problems = check(&m, false);
        assert!(problems.iter().any(|p| p.starts_with("I5")), "{problems:?}");
    }

    #[test]
    fn detects_lost_latest_write() {
        let mut m = stash_machine();
        // A write happened but no location holds its version.
        m.values.on_write(CoreId::new(0), BlockAddr::new(7));
        let problems = check(&m, false);
        assert!(
            problems.iter().any(|p| p.contains("lost write")),
            "{problems:?}"
        );
    }

    #[test]
    fn latest_in_dram_is_reachable() {
        let mut m = stash_machine();
        let v = m.values.on_write(CoreId::new(0), BlockAddr::new(7));
        m.dram_store.insert(BlockAddr::new(7), v);
        assert!(check(&m, false).is_empty());
    }

    #[test]
    fn detects_tracked_block_with_stash_bit() {
        let mut m = stash_machine();
        install_consistent(&mut m, BlockAddr::new(0), 0);
        let home = m.home(BlockAddr::new(0));
        m.banks[home.index()].set_stash_bit(BlockAddr::new(0), true);
        let problems = check(&m, false);
        assert!(
            problems.iter().any(|p| p.contains("keeps its stash bit")),
            "{problems:?}"
        );
    }

    #[test]
    fn detects_directory_entry_without_llc_line() {
        let mut m = stash_machine();
        let block = BlockAddr::new(0);
        let home = m.home(block);
        m.banks[home.index()].dir_install(block, DirView::Exclusive(CoreId::new(0)));
        let problems = check(&m, false);
        assert!(
            problems.iter().any(|p| p.contains("without an LLC line")),
            "{problems:?}"
        );
    }

    #[test]
    fn detects_exclusive_copy_tracked_as_shared() {
        let mut m = stash_machine();
        install_consistent(&mut m, BlockAddr::new(0), 0);
        let home = m.home(BlockAddr::new(0));
        let mut sharers = stashdir_common::SharerSet::new(4);
        sharers.insert(CoreId::new(0));
        sharers.insert(CoreId::new(1));
        m.banks[home.index()].dir_install(BlockAddr::new(0), DirView::Shared(sharers));
        let problems = check(&m, false);
        assert!(
            problems.iter().any(|p| p.contains("tracks it as")),
            "{problems:?}"
        );
    }
}
