//! One home node: an LLC bank with its co-located directory slice.
//!
//! Blocks are address-interleaved across banks (the low block-address bits
//! select the bank), so a bank indexes its internal structures with the
//! *bank-local* block address (global address with the bank bits shifted
//! out) — otherwise every block arriving at bank *i* would share low bits
//! and pile into a fraction of the sets.

use stashdir_common::{BankId, BlockAddr, Counter, StatSink};
use stashdir_core::{DirectoryModel, EvictionAction};
use stashdir_mem::{CacheConfig, CacheStats, SetAssoc};
use stashdir_protocol::DirView;

/// One LLC line's bank-side metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcLine {
    /// Version of the data held (see [`crate::values`]).
    pub version: u64,
    /// Differs from DRAM (needs writeback on eviction).
    pub dirty: bool,
    /// The stash bit: a directory entry tracking a private copy of this
    /// block was silently dropped; a hidden copy may exist.
    pub stash: bool,
}

/// Per-bank event counters beyond the generic cache stats.
#[derive(Debug, Default, Clone)]
pub struct BankStats {
    /// Demand-triggered discovery rounds.
    pub discoveries: Counter,
    /// Discovery rounds that found the hidden copy.
    pub discoveries_found: Counter,
    /// Discovery rounds that found nobody (stale stash bit).
    pub discoveries_stale: Counter,
    /// Discovery rounds run to evict a stashed LLC line.
    pub evict_discoveries: Counter,
    /// LLC evictions that had to recall tracked private copies.
    pub llc_recalls: Counter,
    /// Private-cache copies destroyed by LLC eviction (inclusion victims).
    pub inclusion_invalidations: Counter,
    /// Invalidation probes sent to enact directory evictions.
    pub dir_eviction_probes: Counter,
    /// Stale (raced) Put messages dropped.
    pub stale_puts: Counter,
    /// Writebacks accepted from hidden (stash-untracked) owners.
    pub hidden_writebacks: Counter,
}

impl BankStats {
    /// Exports the per-bank counters under `prefix.`; every key is
    /// additive, so per-bank shard sinks merge cleanly.
    pub(crate) fn export(&self, prefix: &str, sink: &mut StatSink) {
        sink.put_counter(format!("{prefix}.discoveries"), self.discoveries);
        sink.put_counter(
            format!("{prefix}.discoveries_found"),
            self.discoveries_found,
        );
        sink.put_counter(
            format!("{prefix}.discoveries_stale"),
            self.discoveries_stale,
        );
        sink.put_counter(
            format!("{prefix}.evict_discoveries"),
            self.evict_discoveries,
        );
        sink.put_counter(format!("{prefix}.llc_recalls"), self.llc_recalls);
        sink.put_counter(
            format!("{prefix}.inclusion_invalidations"),
            self.inclusion_invalidations,
        );
        sink.put_counter(
            format!("{prefix}.dir_eviction_probes"),
            self.dir_eviction_probes,
        );
        sink.put_counter(format!("{prefix}.stale_puts"), self.stale_puts);
        sink.put_counter(
            format!("{prefix}.hidden_writebacks"),
            self.hidden_writebacks,
        );
    }

    /// Adds another bank's counters into this one.
    pub fn merge(&mut self, other: &BankStats) {
        self.discoveries.add(other.discoveries.get());
        self.discoveries_found.add(other.discoveries_found.get());
        self.discoveries_stale.add(other.discoveries_stale.get());
        self.evict_discoveries.add(other.evict_discoveries.get());
        self.llc_recalls.add(other.llc_recalls.get());
        self.inclusion_invalidations
            .add(other.inclusion_invalidations.get());
        self.dir_eviction_probes
            .add(other.dir_eviction_probes.get());
        self.stale_puts.add(other.stale_puts.get());
        self.hidden_writebacks.add(other.hidden_writebacks.get());
    }
}

/// Counters specific to the non-home directory backends (DLS and
/// opaque-distributed). Zero — and unexported — for every other
/// organization, so legacy artifacts are unchanged.
#[derive(Debug, Default, Clone)]
pub struct BackendStats {
    /// DLS: demand accesses to shared blocks served at the remote shared
    /// LLC instead of filling a private cache.
    pub remote_llc_accesses: Counter,
    /// DLS: blocks reclassified private→shared when a second core touched
    /// them.
    pub dls_reclassifications: Counter,
    /// Opaque: extra home↔directory-bank message legs taken because the
    /// opaque map placed the entry away from the block's home.
    pub indirection_hops: Counter,
    /// Opaque: directory-shard accesses landing on *this* bank (the
    /// per-bank spread yields the imbalance stat).
    pub dir_bank_accesses: Counter,
}

impl BackendStats {
    /// Exports the backend counters under `prefix.`; additive, so
    /// per-bank shard sinks merge cleanly.
    pub(crate) fn export(&self, prefix: &str, sink: &mut StatSink) {
        sink.put_counter(
            format!("{prefix}.remote_llc_accesses"),
            self.remote_llc_accesses,
        );
        sink.put_counter(
            format!("{prefix}.dls_reclassifications"),
            self.dls_reclassifications,
        );
        sink.put_counter(format!("{prefix}.indirection_hops"), self.indirection_hops);
        sink.put_counter(
            format!("{prefix}.dir_bank_accesses"),
            self.dir_bank_accesses,
        );
    }

    /// Adds another bank's counters into this one.
    pub fn merge(&mut self, other: &BackendStats) {
        self.remote_llc_accesses
            .add(other.remote_llc_accesses.get());
        self.dls_reclassifications
            .add(other.dls_reclassifications.get());
        self.indirection_hops.add(other.indirection_hops.get());
        self.dir_bank_accesses.add(other.dir_bank_accesses.get());
    }
}

/// An LLC bank plus directory slice.
pub struct Bank {
    id: BankId,
    bank_bits: u32,
    llc: SetAssoc<LlcLine>,
    dir: Box<dyn DirectoryModel>,
    /// The directory slice indexes by global block addresses (opaque
    /// sharding: the shard holds other banks' home blocks, so the
    /// bank-local compression would be wrong).
    dir_global_keys: bool,
    /// LLC hit/miss accounting.
    pub llc_stats: CacheStats,
    /// Bank-specific counters.
    pub stats: BankStats,
    /// Backend-specific counters (DLS / opaque only).
    pub backend: BackendStats,
}

impl Bank {
    /// Builds bank `id` of `2^bank_bits` banks.
    pub fn new(
        id: BankId,
        bank_bits: u32,
        llc_cfg: &CacheConfig,
        dir: Box<dyn DirectoryModel>,
        seed: u64,
    ) -> Self {
        // Opaque shards are keyed by global addresses (see field doc).
        let dir_global_keys = dir.name() == "opaque";
        Bank {
            id,
            bank_bits,
            llc: SetAssoc::new(llc_cfg.num_sets(), llc_cfg.assoc(), llc_cfg.repl, seed),
            dir,
            dir_global_keys,
            llc_stats: CacheStats::default(),
            stats: BankStats::default(),
            backend: BackendStats::default(),
        }
    }

    /// This bank's id.
    pub fn id(&self) -> BankId {
        self.id
    }

    fn local(&self, global: BlockAddr) -> BlockAddr {
        debug_assert_eq!(
            global.get() & ((1 << self.bank_bits) - 1),
            self.id.get() as u64,
            "block {global} does not belong to {}",
            self.id
        );
        BlockAddr::new(global.get() >> self.bank_bits)
    }

    fn global(&self, local: BlockAddr) -> BlockAddr {
        BlockAddr::new((local.get() << self.bank_bits) | self.id.get() as u64)
    }

    // ---- LLC ----

    /// The LLC line for `block`, if resident (no recency update).
    pub fn llc_peek(&self, block: BlockAddr) -> Option<&LlcLine> {
        self.llc.get(self.local(block))
    }

    /// The LLC line for `block`, recording a hit (recency updated).
    pub fn llc_access(&mut self, block: BlockAddr) -> Option<&mut LlcLine> {
        let local = self.local(block);
        self.llc.access_mut(local)
    }

    /// Mutable LLC line without recency update (writebacks).
    pub fn llc_peek_mut(&mut self, block: BlockAddr) -> Option<&mut LlcLine> {
        let local = self.local(block);
        self.llc.get_mut(local)
    }

    /// The block the LLC would evict to make room for `block`, if any.
    pub fn llc_victim_for(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        let local = self.local(block);
        self.llc.victim_for(local).map(|v| self.global(v))
    }

    /// Removes an LLC line (eviction), returning it.
    pub fn llc_remove(&mut self, block: BlockAddr) -> Option<LlcLine> {
        let local = self.local(block);
        self.llc.remove(local)
    }

    /// Inserts a fresh LLC line for `block`.
    ///
    /// # Panics
    ///
    /// Panics if the line is already resident or its set is full (the
    /// caller must evict the victim from [`llc_victim_for`] first, because
    /// eviction has protocol side effects).
    ///
    /// [`llc_victim_for`]: Bank::llc_victim_for
    pub fn llc_insert(&mut self, block: BlockAddr, line: LlcLine) {
        let local = self.local(block);
        assert!(
            !self.llc.would_evict(local),
            "LLC victim for {block} must be evicted by the caller first"
        );
        let none = self.llc.insert(local, line);
        debug_assert!(none.is_none());
    }

    /// The stash bit of `block`'s LLC line (`false` when not resident).
    pub fn stash_bit(&self, block: BlockAddr) -> bool {
        self.llc_peek(block).is_some_and(|l| l.stash)
    }

    /// Sets or clears the stash bit.
    ///
    /// # Panics
    ///
    /// Panics when setting the bit on a non-resident line (the stash bit
    /// lives in the LLC line; LLC inclusion guarantees residence).
    pub fn set_stash_bit(&mut self, block: BlockAddr, value: bool) {
        match self.llc_peek_mut(block) {
            Some(line) => line.stash = value,
            None => assert!(!value, "stash bit for non-resident line {block}"),
        }
    }

    /// Snapshot of all resident LLC lines (global addresses).
    pub fn llc_entries(&self) -> Vec<(BlockAddr, LlcLine)> {
        self.llc.iter().map(|(b, l)| (self.global(b), *l)).collect()
    }

    // ---- Directory slice ----

    /// The directory key for `block`: bank-local for home-placed slices,
    /// the global address as-is for opaque shards.
    fn dir_key(&self, block: BlockAddr) -> BlockAddr {
        if self.dir_global_keys {
            block
        } else {
            self.local(block)
        }
    }

    /// The directory's view of `block` ([`DirView::Untracked`] when no
    /// entry exists).
    pub fn dir_view(&self, block: BlockAddr) -> DirView {
        self.dir
            .lookup(self.dir_key(block))
            .unwrap_or(DirView::Untracked)
    }

    /// Installs a view, translating the eviction action back to global
    /// addresses.
    pub fn dir_install(&mut self, block: BlockAddr, view: DirView) -> EvictionAction {
        let globalize = |bank: &Bank, b| {
            if bank.dir_global_keys {
                b
            } else {
                bank.global(b)
            }
        };
        match self.dir.install(self.dir_key(block), view) {
            EvictionAction::None => EvictionAction::None,
            EvictionAction::Silent { block, owner } => EvictionAction::Silent {
                block: globalize(self, block),
                owner,
            },
            EvictionAction::Invalidate { block, view } => EvictionAction::Invalidate {
                block: globalize(self, block),
                view,
            },
        }
    }

    /// Untracks `block`.
    pub fn dir_remove(&mut self, block: BlockAddr) {
        let key = self.dir_key(block);
        self.dir.remove(key);
    }

    /// Snapshot of directory entries (global addresses).
    pub fn dir_entries(&self) -> Vec<(BlockAddr, DirView)> {
        self.dir
            .entries()
            .into_iter()
            .map(|(b, v)| {
                let g = if self.dir_global_keys {
                    b
                } else {
                    self.global(b)
                };
                (g, v)
            })
            .collect()
    }

    /// The directory slice itself (stats, capacity).
    pub fn dir(&self) -> &dyn DirectoryModel {
        self.dir.as_ref()
    }

    /// Exports LLC, directory and bank counters under `prefix.`.
    pub fn export(&self, prefix: &str, sink: &mut StatSink) {
        self.llc_stats.export(&format!("{prefix}.llc"), sink);
        self.dir.stats().export(&format!("{prefix}.dir"), sink);
        self.stats.export(prefix, sink);
        sink.put(
            format!("{prefix}.dir.occupancy"),
            self.dir.occupancy() as f64,
        );
    }
}

impl std::fmt::Debug for Bank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bank")
            .field("id", &self.id)
            .field("dir", &self.dir.name())
            .field("llc_occupancy", &self.llc.occupancy())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stashdir_common::CoreId;
    use stashdir_core::DirConfig;
    use stashdir_mem::ReplKind;

    fn bank() -> Bank {
        // 4 banks; this is bank 1. LLC bank: 8 sets x 2 ways.
        let llc = CacheConfig::new(1024, 2, 64, 1, ReplKind::Lru);
        Bank::new(BankId::new(1), 2, &llc, DirConfig::stash(4, 2).build(9), 3)
    }

    /// A block owned by bank 1 (low 2 bits = 01).
    fn blk(i: u64) -> BlockAddr {
        BlockAddr::new(i * 4 + 1)
    }

    #[test]
    fn llc_roundtrip_uses_local_indexing() {
        let mut b = bank();
        // 17 blocks of bank 1 must spread over all 8 sets, not one.
        for i in 0..16 {
            if let Some(v) = b.llc_victim_for(blk(i)) {
                b.llc_remove(v);
            }
            b.llc_insert(
                blk(i),
                LlcLine {
                    version: i,
                    dirty: false,
                    stash: false,
                },
            );
        }
        // 8 sets x 2 ways = 16 lines; all 16 distinct blocks fit exactly.
        assert_eq!(b.llc_entries().len(), 16);
        assert_eq!(b.llc_peek(blk(3)).unwrap().version, 3);
    }

    #[test]
    fn llc_entries_report_global_addresses() {
        let mut b = bank();
        b.llc_insert(
            blk(5),
            LlcLine {
                version: 0,
                dirty: false,
                stash: false,
            },
        );
        assert_eq!(b.llc_entries()[0].0, blk(5));
    }

    #[test]
    fn stash_bit_lifecycle() {
        let mut b = bank();
        b.llc_insert(
            blk(0),
            LlcLine {
                version: 0,
                dirty: false,
                stash: false,
            },
        );
        assert!(!b.stash_bit(blk(0)));
        b.set_stash_bit(blk(0), true);
        assert!(b.stash_bit(blk(0)));
        b.set_stash_bit(blk(0), false);
        assert!(!b.stash_bit(blk(0)));
        assert!(!b.stash_bit(blk(9)), "absent line has no stash bit");
        b.set_stash_bit(blk(9), false); // clearing absent is a no-op
    }

    #[test]
    fn dir_view_defaults_to_untracked() {
        let mut b = bank();
        assert_eq!(b.dir_view(blk(0)), DirView::Untracked);
        b.dir_install(blk(0), DirView::Exclusive(CoreId::new(2)));
        assert_eq!(b.dir_view(blk(0)), DirView::Exclusive(CoreId::new(2)));
        b.dir_remove(blk(0));
        assert_eq!(b.dir_view(blk(0)), DirView::Untracked);
    }

    #[test]
    fn dir_eviction_actions_are_globalized() {
        let mut b = bank();
        // Fill one dir set (4 sets x 2 ways; local addr = global >> 2).
        // blk(0) -> local 1, blk(4) -> local... choose conflicting blocks:
        // local addresses with the same low 2 bits of the slice's 4 sets.
        let conflicting: Vec<BlockAddr> = (0..3)
            .map(|i| BlockAddr::new(((i * 4) << 2) | 1)) // locals 0,4,8 -> set 0
            .collect();
        b.dir_install(conflicting[0], DirView::Exclusive(CoreId::new(0)));
        b.dir_install(conflicting[1], DirView::Exclusive(CoreId::new(1)));
        match b.dir_install(conflicting[2], DirView::Exclusive(CoreId::new(2))) {
            EvictionAction::Silent { block, owner } => {
                assert_eq!(block, conflicting[0], "global address restored");
                assert_eq!(owner, CoreId::new(0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "debug_assert is compiled out in release"
    )]
    #[should_panic(expected = "does not belong")]
    fn wrong_bank_block_panics_in_debug() {
        let b = bank();
        let _ = b.llc_peek(BlockAddr::new(2)); // bank 2's block
    }

    #[test]
    #[should_panic(expected = "evicted by the caller")]
    fn llc_insert_requires_prior_eviction() {
        let mut b = bank();
        // Fill set 0 of the LLC (locals 0 and 8 -> same set).
        for local in [0u64, 8] {
            b.llc_insert(
                BlockAddr::new((local << 2) | 1),
                LlcLine {
                    version: 0,
                    dirty: false,
                    stash: false,
                },
            );
        }
        b.llc_insert(
            BlockAddr::new((16u64 << 2) | 1),
            LlcLine {
                version: 0,
                dirty: false,
                stash: false,
            },
        );
    }

    #[test]
    fn export_has_all_sections() {
        let b = bank();
        let mut sink = StatSink::new();
        b.export("bank1", &mut sink);
        assert!(sink.get("bank1.llc.hits").is_some());
        assert!(sink.get("bank1.dir.silent_evictions").is_some());
        assert!(sink.get("bank1.discoveries").is_some());
        assert!(sink.get("bank1.dir.occupancy").is_some());
    }

    #[test]
    fn opaque_slice_uses_global_dir_keys() {
        // Bank 1 of 4 holding an *opaque* shard: it may track blocks homed
        // at other banks, which the home-local key scheme would reject.
        let llc = CacheConfig::new(1024, 2, 64, 1, ReplKind::Lru);
        let mut b = Bank::new(BankId::new(1), 2, &llc, DirConfig::opaque(8, 2).build(9), 3);
        let foreign = BlockAddr::new(6); // low bits 10 -> homed at bank 2
        b.dir_install(foreign, DirView::Exclusive(CoreId::new(4)));
        assert_eq!(b.dir_view(foreign), DirView::Exclusive(CoreId::new(4)));
        assert_eq!(
            b.dir_entries(),
            vec![(foreign, DirView::Exclusive(CoreId::new(4)))]
        );
        b.dir_remove(foreign);
        assert_eq!(b.dir_view(foreign), DirView::Untracked);
    }

    #[test]
    fn backend_stats_merge_and_export() {
        let mut a = BackendStats::default();
        let mut other = BackendStats::default();
        a.remote_llc_accesses.add(2);
        other.remote_llc_accesses.add(3);
        other.indirection_hops.add(5);
        other.dir_bank_accesses.add(7);
        other.dls_reclassifications.add(1);
        a.merge(&other);
        let mut sink = StatSink::new();
        a.export("backend", &mut sink);
        assert_eq!(sink.get("backend.remote_llc_accesses"), Some(5.0));
        assert_eq!(sink.get("backend.indirection_hops"), Some(5.0));
        assert_eq!(sink.get("backend.dir_bank_accesses"), Some(7.0));
        assert_eq!(sink.get("backend.dls_reclassifications"), Some(1.0));
    }
}
