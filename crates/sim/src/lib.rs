//! A tiled-CMP discrete-event simulator for evaluating coherence
//! directories — the substrate on which the Stash Directory (HPCA 2014)
//! reproduction runs its experiments.
//!
//! # Machine model
//!
//! `N` tiles in a 2-D mesh. Each tile has an in-order, trace-driven core
//! with a private L1 and private L2 (L2 inclusive of L1, coherence kept at
//! L2), plus one bank of the shared, inclusive LLC with its co-located
//! directory slice. Blocks are address-interleaved across banks; a block's
//! bank is its **home**. Off-chip DRAM hangs off the banks.
//!
//! # Simulation discipline
//!
//! The engine is event-driven, but each coherence transaction is computed
//! *procedurally and atomically* inside the handler that starts it: the
//! handler walks the whole message exchange (request → probes → replies →
//! data), calling the NoC model for every leg to obtain arrival times, and
//! applies all state changes immediately, in event order. Per-block
//! busy-windows at the home enforce transaction serialization in *time*,
//! while event order enforces it in *program order*. Point-to-point
//! channels are FIFO (arrival times are clamped monotonic per
//! source/destination pair), which closes the classic
//! writeback-overtaken-by-refetch race.
//!
//! This discipline trades a small amount of timing fidelity (probes take
//! effect in program order slightly before their modeled arrival) for a
//! protocol engine whose correctness is easy to state and test: see
//! [`checker`] for the machine-wide invariants verified during and after
//! every run.
//!
//! # Examples
//!
//! ```
//! use stashdir_common::{BlockAddr, MemOp};
//! use stashdir_sim::{Machine, SystemConfig};
//!
//! // Two cores ping-pong a block; default 16-core machine.
//! let config = SystemConfig::default();
//! let mut traces = vec![Vec::new(); config.cores as usize];
//! for i in 0..100u64 {
//!     traces[0].push(MemOp::write(BlockAddr::new(i % 4)));
//!     traces[1].push(MemOp::read(BlockAddr::new(i % 4)));
//! }
//! let report = Machine::new(config).run(traces);
//! assert!(report.cycles > 0);
//! assert_eq!(report.completed_ops, 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod bank;
pub mod checker;
pub mod config;
pub mod event;
pub mod fault;
pub mod machine;
pub mod private;
pub mod report;
pub mod values;

pub use config::{CoverageRatio, DirSpec, SystemConfig};
pub use fault::{
    expected_detector, Detector, FaultBurst, FaultClass, FaultConfig, FaultPlan, FaultSummary,
    TAXONOMY,
};
pub use machine::Machine;
pub use report::{SimReport, TransitionHits};
