//! Generation-indexed slab arena for in-flight message payloads.
//!
//! The event queue stores 8-byte [`SlabRef`] handles instead of full
//! message payloads, so every heap sift moves a small key while the
//! payloads sit in one contiguous slab here. Freed slots go onto a
//! freelist and are reused in LIFO order — the hot allocation path is a
//! `Vec` pop plus a slot write, with no heap traffic after the slab
//! reaches the run's high-water mark of simultaneously in-flight
//! messages.
//!
//! Every slot carries a generation counter, bumped on each free. A
//! handle resolves only while its generation matches the slot's, so a
//! stale handle (one whose slot was recycled for a newer message) can
//! never silently alias the new payload — [`Arena::get`] and
//! [`Arena::take`] return `None` instead. The property test below
//! drives random allocate/free/reuse sequences against a map model to
//! pin this down.

/// Handle to a live arena slot: slab index plus the generation the slot
/// had when the payload was allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlabRef {
    idx: u32,
    gen: u32,
}

#[derive(Debug)]
struct Slot<T> {
    gen: u32,
    val: Option<T>,
}

/// A slab of `T` payloads with freelist reuse and stale-handle
/// detection. See the module docs.
#[derive(Debug)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Stores `val`, returning the handle that resolves it.
    pub fn alloc(&mut self, val: T) -> SlabRef {
        if let Some(idx) = self.free.pop() {
            let slot = self
                .slots
                .get_mut(idx as usize)
                // lint: allow(expect) — the freelist only ever holds indices of slots this arena pushed, and clear() empties both vectors together.
                .expect("freelist index in bounds");
            debug_assert!(slot.val.is_none(), "freelist slot still occupied");
            slot.val = Some(val);
            return SlabRef { idx, gen: slot.gen };
        }
        let idx = u32::try_from(self.slots.len())
            // lint: allow(expect) — 2^32 simultaneously in-flight messages would exhaust memory long before this converts.
            .expect("slab index fits u32");
        self.slots.push(Slot {
            gen: 0,
            val: Some(val),
        });
        SlabRef { idx, gen: 0 }
    }

    /// The payload behind `r`, or `None` when the handle is stale (its
    /// slot was freed, and possibly recycled since).
    pub fn get(&self, r: SlabRef) -> Option<&T> {
        let slot = self.slots.get(r.idx as usize)?;
        if slot.gen != r.gen {
            return None;
        }
        slot.val.as_ref()
    }

    /// Removes and returns the payload behind `r`, freeing the slot for
    /// reuse, or `None` when the handle is stale. The slot's generation
    /// is bumped, so `r` (and any copy of it) never resolves again.
    pub fn take(&mut self, r: SlabRef) -> Option<T> {
        let slot = self.slots.get_mut(r.idx as usize)?;
        if slot.gen != r.gen {
            return None;
        }
        let val = slot.val.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(r.idx);
        Some(val)
    }

    /// Number of live (allocated, not yet taken) payloads.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever allocated (the high-water mark of simultaneous
    /// liveness).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Drops every payload and forgets every slot. Outstanding handles
    /// index past the (now empty) slab and resolve to `None`.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_take_roundtrip() {
        let mut a = Arena::new();
        let r = a.alloc(42u64);
        assert_eq!(a.get(r), Some(&42));
        assert_eq!(a.live(), 1);
        assert_eq!(a.take(r), Some(42));
        assert_eq!(a.live(), 0);
        assert_eq!(a.get(r), None, "taken handle is dead");
        assert_eq!(a.take(r), None, "double take is dead");
    }

    #[test]
    fn freed_slots_are_reused_with_fresh_generations() {
        let mut a = Arena::new();
        let r1 = a.alloc(1u64);
        assert_eq!(a.take(r1), Some(1));
        let r2 = a.alloc(2u64);
        assert_eq!(r2.idx, r1.idx, "LIFO freelist reuses the slot");
        assert_ne!(r2.gen, r1.gen, "reuse bumps the generation");
        assert_eq!(a.capacity(), 1, "no new slot was grown");
        assert_eq!(a.get(r1), None, "stale handle cannot see the new payload");
        assert_eq!(a.take(r1), None);
        assert_eq!(a.take(r2), Some(2));
    }

    #[test]
    fn clear_kills_outstanding_handles() {
        let mut a = Arena::new();
        let r = a.alloc(7u64);
        a.clear();
        assert_eq!(a.get(r), None);
        assert_eq!(a.take(r), None);
        assert_eq!(a.live(), 0);
        // The arena stays usable after a clear.
        let r2 = a.alloc(8u64);
        assert_eq!(a.take(r2), Some(8));
    }

    proptest::proptest! {
        /// Model check: drive a random allocate/free schedule against a
        /// map of live handles. Live handles always resolve to exactly
        /// their payload; freed handles never resolve again, even after
        /// their slot is recycled (the stale-generation property).
        #[test]
        fn never_hands_out_a_stale_generation(
            ops in proptest::collection::vec(0u8..4, 1..200),
        ) {
            let mut arena = Arena::new();
            let mut live: Vec<(SlabRef, u64)> = Vec::new();
            let mut dead: Vec<SlabRef> = Vec::new();
            let mut next_val = 0u64;
            for op in ops {
                match op {
                    // Allocate (weighted x2 so slabs grow and recycle).
                    0 | 1 => {
                        let r = arena.alloc(next_val);
                        proptest::prop_assert!(
                            !live.iter().any(|&(l, _)| l == r),
                            "handle collides with a live one"
                        );
                        proptest::prop_assert!(
                            !dead.contains(&r),
                            "handle collides with a dead one"
                        );
                        live.push((r, next_val));
                        next_val += 1;
                    }
                    // Free the oldest live handle.
                    2 if !live.is_empty() => {
                        let (r, v) = live.remove(0);
                        proptest::prop_assert_eq!(arena.take(r), Some(v));
                        dead.push(r);
                    }
                    // Probe every dead handle: all must stay dead.
                    _ => {
                        for &r in &dead {
                            proptest::prop_assert_eq!(arena.get(r), None);
                        }
                    }
                }
                proptest::prop_assert_eq!(arena.live(), live.len());
                for &(r, v) in &live {
                    proptest::prop_assert_eq!(arena.get(r), Some(&v));
                }
            }
            // Drain the survivors; their handles die too.
            for (r, v) in live {
                proptest::prop_assert_eq!(arena.take(r), Some(v));
                proptest::prop_assert_eq!(arena.get(r), None);
            }
            proptest::prop_assert_eq!(arena.live(), 0);
        }
    }
}
