//! Data-value correctness tracking.
//!
//! Every simulated block carries a *version*: a monotonically increasing
//! stamp assigned to each completed write. Data-bearing protocol messages
//! carry versions, caches store them, and this tracker checks the memory
//! consistency facts that any correct invalidation protocol guarantees:
//!
//! * **Per-location coherence**: each core observes non-decreasing
//!   versions of each block.
//! * **Write serialization**: a core that obtains an exclusive
//!   (E/M-granted) copy observes the globally latest version.
//!
//! A protocol bug that loses a writeback or serves stale data (e.g. the
//! refetch-overtakes-writeback race) trips these checks immediately.

use stashdir_common::{BlockAddr, CoreId, FxHashMap};

/// Tracks per-block write versions and checks reader observations.
///
/// # Examples
///
/// ```
/// use stashdir_common::{BlockAddr, CoreId};
/// use stashdir_sim::values::ValueTracker;
///
/// let mut vt = ValueTracker::new();
/// let b = BlockAddr::new(9);
/// let v1 = vt.on_write(CoreId::new(0), b);
/// vt.on_read(CoreId::new(1), b, v1);      // fine: reads the new version
/// vt.on_read(CoreId::new(1), b, 0);       // regression: older than before
/// assert_eq!(vt.violations().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ValueTracker {
    latest: FxHashMap<BlockAddr, u64>,
    last_seen: FxHashMap<(CoreId, BlockAddr), u64>,
    next_version: u64,
    violations: Vec<String>,
}

impl ValueTracker {
    /// Creates a tracker; version stamps start at 1 (0 = "never written").
    pub fn new() -> Self {
        ValueTracker {
            next_version: 1,
            ..ValueTracker::default()
        }
    }

    /// Records a completed write by `core`, returning the new version the
    /// written copy must carry.
    pub fn on_write(&mut self, core: CoreId, block: BlockAddr) -> u64 {
        let v = self.next_version;
        self.next_version += 1;
        self.latest.insert(block, v);
        self.last_seen.insert((core, block), v);
        v
    }

    /// Records that `core` read `block` and observed `version`.
    pub fn on_read(&mut self, core: CoreId, block: BlockAddr, version: u64) {
        let seen = self.last_seen.entry((core, block)).or_insert(0);
        if version < *seen {
            self.violations.push(format!(
                "{core} read {block} at version {version} after observing {seen}"
            ));
        } else {
            *seen = version;
        }
    }

    /// Records that `core` was granted an exclusive copy of `block`
    /// carrying `version`; it must be the globally latest.
    pub fn on_exclusive_grant(&mut self, core: CoreId, block: BlockAddr, version: u64) {
        let latest = self.latest.get(&block).copied().unwrap_or(0);
        if version != latest {
            self.violations.push(format!(
                "{core} granted exclusive {block} at version {version}, latest is {latest}"
            ));
        }
        self.last_seen.insert((core, block), version);
    }

    /// The latest written version of `block` (0 when never written).
    pub fn latest(&self, block: BlockAddr) -> u64 {
        self.latest.get(&block).copied().unwrap_or(0)
    }

    /// Blocks that have ever been written, in address order.
    pub fn written_blocks(&self) -> Vec<(BlockAddr, u64)> {
        let mut v: Vec<_> = self.latest.iter().map(|(b, v)| (*b, *v)).collect();
        v.sort_by_key(|(b, _)| *b);
        v
    }

    /// Consistency violations observed so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Records an externally detected violation.
    pub fn report(&mut self, message: String) {
        self.violations.push(message);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(i: u16) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn versions_increase_globally() {
        let mut vt = ValueTracker::new();
        let a = vt.on_write(core(0), BlockAddr::new(1));
        let b = vt.on_write(core(1), BlockAddr::new(2));
        assert!(b > a);
        assert_eq!(vt.latest(BlockAddr::new(1)), a);
        assert_eq!(vt.latest(BlockAddr::new(2)), b);
        assert_eq!(vt.latest(BlockAddr::new(3)), 0);
    }

    #[test]
    fn monotonic_reads_pass() {
        let mut vt = ValueTracker::new();
        let b = BlockAddr::new(5);
        vt.on_read(core(0), b, 0);
        let v = vt.on_write(core(1), b);
        vt.on_read(core(0), b, v);
        vt.on_read(core(0), b, v);
        assert!(vt.violations().is_empty());
    }

    #[test]
    fn regressing_read_is_flagged() {
        let mut vt = ValueTracker::new();
        let b = BlockAddr::new(5);
        let v = vt.on_write(core(0), b);
        vt.on_read(core(1), b, v);
        vt.on_read(core(1), b, v - 1);
        assert_eq!(vt.violations().len(), 1);
        assert!(vt.violations()[0].contains("after observing"));
    }

    #[test]
    fn exclusive_grant_must_be_latest() {
        let mut vt = ValueTracker::new();
        let b = BlockAddr::new(7);
        let v = vt.on_write(core(0), b);
        vt.on_exclusive_grant(core(1), b, v);
        assert!(vt.violations().is_empty());
        vt.on_exclusive_grant(core(2), b, v - 1);
        assert_eq!(vt.violations().len(), 1);
    }

    #[test]
    fn unwritten_blocks_grant_version_zero() {
        let mut vt = ValueTracker::new();
        vt.on_exclusive_grant(core(0), BlockAddr::new(9), 0);
        assert!(vt.violations().is_empty());
    }

    #[test]
    fn written_blocks_enumerates() {
        let mut vt = ValueTracker::new();
        vt.on_write(core(0), BlockAddr::new(1));
        vt.on_write(core(0), BlockAddr::new(2));
        assert_eq!(vt.written_blocks().len(), 2);
    }

    #[test]
    fn external_reports_accumulate() {
        let mut vt = ValueTracker::new();
        vt.report("custom".into());
        assert_eq!(vt.violations(), &["custom".to_string()]);
    }
}
