//! The discrete-event queue.

use stashdir_common::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of events with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use stashdir_common::Cycle;
/// use stashdir_sim::event::EventQueue;
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.push(Cycle::new(10), "later");
/// q.push(Cycle::new(5), "sooner");
/// q.push(Cycle::new(5), "sooner-but-second");
/// assert_eq!(q.pop(), Some((Cycle::new(5), "sooner")));
/// assert_eq!(q.pop(), Some((Cycle::new(5), "sooner-but-second")));
/// assert_eq!(q.pop(), Some((Cycle::new(10), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Cycle, u64, OrdIgnored<E>)>>,
    seq: u64,
}

/// Wrapper that exempts the payload from ordering (the `(time, seq)` key
/// is already total).
///
/// # Tie-break determinism
///
/// The heap key is the pair `(Cycle, seq)`: `seq` is a monotonically
/// increasing push counter, so two events scheduled for the same cycle
/// always pop in the order they were pushed (FIFO), regardless of the
/// payload. `OrdIgnored` reports every pair of payloads as `Equal` so
/// the payload type never participates in the comparison — the payload
/// needs no `Ord` impl, and `BinaryHeap`'s internal sift order (which
/// *is* allowed to compare equal keys in any order) can never observe a
/// difference. This is the property the whole simulator's bit-for-bit
/// determinism rests on: replacing the payload, its hash, or its
/// in-memory layout can never reorder same-cycle events.
#[derive(Debug)]
struct OrdIgnored<E>(E);

impl<E> PartialEq for OrdIgnored<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for OrdIgnored<E> {}
impl<E> PartialOrd for OrdIgnored<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for OrdIgnored<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`. Events at equal times pop in push
    /// order.
    pub fn push(&mut self, time: Cycle, event: E) {
        self.heap.push(Reverse((time, self.seq, OrdIgnored(event))));
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e.0))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Every pending event in pop order, without disturbing the queue
    /// (diagnostic snapshots).
    pub fn pending(&self) -> Vec<(Cycle, &E)> {
        let mut items: Vec<(Cycle, u64, &E)> = self
            .heap
            .iter()
            .map(|Reverse((t, seq, e))| (*t, *seq, &e.0))
            .collect();
        items.sort_by_key(|&(t, seq, _)| (t, seq));
        items.into_iter().map(|(t, _, e)| (t, e)).collect()
    }

    /// Discards every pending event (quiesce).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(30), 3);
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    proptest::proptest! {
        /// For any interleaving of push times (including duplicates) and
        /// interspersed pops, the pop sequence equals a stable sort of
        /// the pushed events by `(time, push index)` — i.e. time order
        /// with FIFO tie-break, independent of payload values.
        #[test]
        fn tie_break_is_push_order(times in proptest::collection::vec(0u64..8, 1..64)) {
            let mut q = EventQueue::new();
            let mut expected: Vec<(Cycle, usize)> = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(Cycle::new(t), i);
                expected.push((Cycle::new(t), i));
            }
            // Stable sort by time preserves push order within a cycle.
            expected.sort_by_key(|&(t, _)| t);
            let popped: Vec<(Cycle, usize)> =
                std::iter::from_fn(|| q.pop()).collect();
            proptest::prop_assert_eq!(popped, expected);
        }

        /// `pending()` previews exactly the pop order.
        #[test]
        fn pending_matches_pop_order(times in proptest::collection::vec(0u64..8, 1..64)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(Cycle::new(t), i);
            }
            let preview: Vec<(Cycle, usize)> =
                q.pending().into_iter().map(|(t, &e)| (t, e)).collect();
            let popped: Vec<(Cycle, usize)> =
                std::iter::from_fn(|| q.pop()).collect();
            proptest::prop_assert_eq!(preview, popped);
        }
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Cycle::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
