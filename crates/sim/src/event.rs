//! The discrete-event queue.

use stashdir_common::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of events with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use stashdir_common::Cycle;
/// use stashdir_sim::event::EventQueue;
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.push(Cycle::new(10), "later");
/// q.push(Cycle::new(5), "sooner");
/// q.push(Cycle::new(5), "sooner-but-second");
/// assert_eq!(q.pop(), Some((Cycle::new(5), "sooner")));
/// assert_eq!(q.pop(), Some((Cycle::new(5), "sooner-but-second")));
/// assert_eq!(q.pop(), Some((Cycle::new(10), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Cycle, u64, OrdIgnored<E>)>>,
    seq: u64,
}

/// Wrapper that exempts the payload from ordering (the `(time, seq)` key
/// is already total).
///
/// # Tie-break determinism
///
/// The heap key is the pair `(Cycle, seq)`: `seq` is a monotonically
/// increasing push counter, so two events scheduled for the same cycle
/// always pop in the order they were pushed (FIFO), regardless of the
/// payload. `OrdIgnored` reports every pair of payloads as `Equal` so
/// the payload type never participates in the comparison — the payload
/// needs no `Ord` impl, and `BinaryHeap`'s internal sift order (which
/// *is* allowed to compare equal keys in any order) can never observe a
/// difference. This is the property the whole simulator's bit-for-bit
/// determinism rests on: replacing the payload, its hash, or its
/// in-memory layout can never reorder same-cycle events.
#[derive(Debug)]
struct OrdIgnored<E>(E);

impl<E> PartialEq for OrdIgnored<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for OrdIgnored<E> {}
impl<E> PartialOrd for OrdIgnored<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for OrdIgnored<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`. Events at equal times pop in push
    /// order.
    pub fn push(&mut self, time: Cycle, event: E) {
        self.heap.push(Reverse((time, self.seq, OrdIgnored(event))));
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e.0))
    }

    /// Drains every event scheduled at the earliest pending cycle into
    /// `buf` (cleared first), in push (FIFO) order, and returns that
    /// cycle. `None` leaves `buf` untouched.
    ///
    /// This is the batched-stepping entry point: the caller processes
    /// one whole cycle from a contiguous buffer instead of re-heaping
    /// per event. Order is exactly the one-at-a-time [`pop`] order —
    /// events pushed *while the batch is processed* carry larger
    /// sequence numbers than everything drained here, so even pushes
    /// landing back on the same cycle form the *next* batch at that
    /// cycle, just as they would pop after the already-queued events.
    ///
    /// [`pop`]: EventQueue::pop
    pub fn pop_batch(&mut self, buf: &mut Vec<E>) -> Option<Cycle> {
        let Reverse((t0, _, _)) = self.heap.peek()?;
        let t0 = *t0;
        buf.clear();
        while let Some(Reverse((t, _, _))) = self.heap.peek() {
            if *t != t0 {
                break;
            }
            if let Some(Reverse((_, _, e))) = self.heap.pop() {
                buf.push(e.0);
            }
        }
        Some(t0)
    }

    /// Every pending event with its full `(time, seq)` key, in
    /// arbitrary heap order — callers needing pop order sort by the
    /// key (diagnostic snapshots; see [`pending`] for the sorted form).
    ///
    /// [`pending`]: EventQueue::pending
    pub fn iter(&self) -> impl Iterator<Item = (Cycle, u64, &E)> {
        self.heap
            .iter()
            .map(|Reverse((t, seq, e))| (*t, *seq, &e.0))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Every pending event in pop order, without disturbing the queue
    /// (diagnostic snapshots).
    pub fn pending(&self) -> Vec<(Cycle, &E)> {
        let mut items: Vec<(Cycle, u64, &E)> = self.iter().collect();
        items.sort_by_key(|&(t, seq, _)| (t, seq));
        items.into_iter().map(|(t, _, e)| (t, e)).collect()
    }

    /// Discards every pending event (quiesce).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(30), 3);
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    proptest::proptest! {
        /// For any interleaving of push times (including duplicates) and
        /// interspersed pops, the pop sequence equals a stable sort of
        /// the pushed events by `(time, push index)` — i.e. time order
        /// with FIFO tie-break, independent of payload values.
        #[test]
        fn tie_break_is_push_order(times in proptest::collection::vec(0u64..8, 1..64)) {
            let mut q = EventQueue::new();
            let mut expected: Vec<(Cycle, usize)> = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(Cycle::new(t), i);
                expected.push((Cycle::new(t), i));
            }
            // Stable sort by time preserves push order within a cycle.
            expected.sort_by_key(|&(t, _)| t);
            let popped: Vec<(Cycle, usize)> =
                std::iter::from_fn(|| q.pop()).collect();
            proptest::prop_assert_eq!(popped, expected);
        }

        /// Draining with `pop_batch` yields the same flattened event
        /// sequence as one-at-a-time `pop`, and each batch holds
        /// exactly one cycle's events.
        #[test]
        fn batch_drain_equals_pop_order(times in proptest::collection::vec(0u64..8, 1..64)) {
            let mut single = EventQueue::new();
            let mut batched = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                single.push(Cycle::new(t), i);
                batched.push(Cycle::new(t), i);
            }
            let by_pop: Vec<(Cycle, usize)> =
                std::iter::from_fn(|| single.pop()).collect();
            let mut by_batch = Vec::new();
            let mut buf = Vec::new();
            let mut last_cycle = None;
            while let Some(t) = batched.pop_batch(&mut buf) {
                proptest::prop_assert!(
                    last_cycle.is_none_or(|prev| t > prev),
                    "batches advance strictly in time"
                );
                last_cycle = Some(t);
                by_batch.extend(buf.iter().map(|&e| (t, e)));
            }
            proptest::prop_assert_eq!(by_batch, by_pop);
        }

        /// The machine-shaped property: handlers push follow-up events
        /// *while a cycle's batch is being processed*, some landing
        /// back on the very same cycle. The drain order under batched
        /// stepping must equal the legacy per-event pop order, because
        /// same-cycle pushes carry larger sequence numbers and so form
        /// the next batch at that cycle.
        #[test]
        fn batch_drain_matches_pop_with_mid_cycle_pushes(
            times in proptest::collection::vec(0u64..6, 1..48),
        ) {
            // Deterministic "handler": event e at time t spawns a
            // follow-up (e + 1000) scheduled at t + (e % 3); e % 3 == 0
            // lands on the same cycle. Only first-generation events
            // spawn, so both drains terminate.
            let spawn = |t: Cycle, e: usize| -> Option<(Cycle, usize)> {
                (e < 1000).then(|| (t + (e % 3) as u64, e + 1000))
            };
            let mut single = EventQueue::new();
            let mut batched = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                single.push(Cycle::new(t), i);
                batched.push(Cycle::new(t), i);
            }
            let mut by_pop = Vec::new();
            while let Some((t, e)) = single.pop() {
                by_pop.push((t, e));
                if let Some((st, se)) = spawn(t, e) {
                    single.push(st, se);
                }
            }
            let mut by_batch = Vec::new();
            let mut buf = Vec::new();
            while let Some(t) = batched.pop_batch(&mut buf) {
                for &e in &buf {
                    by_batch.push((t, e));
                    if let Some((st, se)) = spawn(t, e) {
                        batched.push(st, se);
                    }
                }
            }
            proptest::prop_assert_eq!(by_batch, by_pop);
        }

        /// `pending()` previews exactly the pop order.
        #[test]
        fn pending_matches_pop_order(times in proptest::collection::vec(0u64..8, 1..64)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(Cycle::new(t), i);
            }
            let preview: Vec<(Cycle, usize)> =
                q.pending().into_iter().map(|(t, &e)| (t, e)).collect();
            let popped: Vec<(Cycle, usize)> =
                std::iter::from_fn(|| q.pop()).collect();
            proptest::prop_assert_eq!(preview, popped);
        }
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Cycle::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
