//! System configuration: the reconstructed 16-core CMP of the paper,
//! parameterized for sweeps.

use serde::{Deserialize, Serialize};
use stashdir_core::{CostParams, DirConfig, DirReplPolicy, SharerFormat};
use stashdir_mem::{CacheConfig, DramConfig, ReplKind};
use stashdir_noc::{Mesh, NocConfig};
use std::fmt;

/// Directory provisioning relative to the aggregate private-cache capacity
/// it must track.
///
/// A coverage of 1 means one directory entry per private L2 block
/// chip-wide; the paper's headline configuration is stash at **1/8**.
///
/// # Examples
///
/// ```
/// use stashdir_sim::CoverageRatio;
/// assert_eq!(CoverageRatio::new(1, 8).entries_for(4096), 512);
/// assert_eq!(CoverageRatio::FULL.entries_for(4096), 4096);
/// assert_eq!(format!("{}", CoverageRatio::new(1, 8)), "1/8");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoverageRatio {
    num: u32,
    den: u32,
}

impl CoverageRatio {
    /// One entry per tracked block (1×).
    pub const FULL: CoverageRatio = CoverageRatio { num: 1, den: 1 };

    /// Creates a `num/den` coverage ratio.
    ///
    /// # Panics
    ///
    /// Panics if either component is zero.
    pub fn new(num: u32, den: u32) -> Self {
        assert!(num > 0 && den > 0, "coverage ratio must be positive");
        CoverageRatio { num, den }
    }

    /// The ratio as a float.
    pub fn as_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Number of directory entries for `tracked_blocks` blocks of private
    /// cache (rounded down, at least 1).
    pub fn entries_for(self, tracked_blocks: usize) -> usize {
        ((tracked_blocks * self.num as usize) / self.den as usize).max(1)
    }

    /// The sweep used throughout the evaluation: 2, 1, 1/2, 1/4, 1/8, 1/16.
    pub fn sweep() -> Vec<CoverageRatio> {
        vec![
            CoverageRatio::new(2, 1),
            CoverageRatio::new(1, 1),
            CoverageRatio::new(1, 2),
            CoverageRatio::new(1, 4),
            CoverageRatio::new(1, 8),
            CoverageRatio::new(1, 16),
        ]
    }
}

impl fmt::Display for CoverageRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Which directory organization the machine uses, plus its provisioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirSpec {
    /// The unbounded ideal.
    FullMap,
    /// Conventional sparse directory at the given coverage/associativity.
    Sparse {
        /// Entries relative to tracked private blocks.
        coverage: CoverageRatio,
        /// Ways per directory set.
        assoc: usize,
        /// Victim selection.
        repl: DirReplPolicy,
    },
    /// The paper's stash directory at the given coverage/associativity.
    Stash {
        /// Entries relative to tracked private blocks.
        coverage: CoverageRatio,
        /// Ways per directory set.
        assoc: usize,
        /// Victim selection.
        repl: DirReplPolicy,
    },
    /// Cuckoo directory at the given coverage.
    Cuckoo {
        /// Entries relative to tracked private blocks.
        coverage: CoverageRatio,
    },
}

impl DirSpec {
    /// Shorthand for a stash directory with the paper's defaults
    /// (8-way, private-first LRU).
    pub fn stash(coverage: CoverageRatio) -> Self {
        DirSpec::Stash {
            coverage,
            assoc: 8,
            repl: DirReplPolicy::PrivateFirstLru,
        }
    }

    /// Shorthand for a conventional sparse directory (8-way, LRU).
    pub fn sparse(coverage: CoverageRatio) -> Self {
        DirSpec::Sparse {
            coverage,
            assoc: 8,
            repl: DirReplPolicy::Lru,
        }
    }

    /// The organization's short name.
    pub fn name(&self) -> &'static str {
        match self {
            DirSpec::FullMap => "fullmap",
            DirSpec::Sparse { .. } => "sparse",
            DirSpec::Stash { .. } => "stash",
            DirSpec::Cuckoo { .. } => "cuckoo",
        }
    }

    /// `true` when the machine must maintain LLC stash bits and run
    /// discovery.
    pub fn uses_stash(&self) -> bool {
        matches!(self, DirSpec::Stash { .. })
    }

    /// Resolves to a per-slice [`DirConfig`] given the number of private
    /// blocks each slice must cover. Set counts round up to a power of
    /// two.
    pub fn slice_config(&self, tracked_blocks_per_slice: usize) -> DirConfig {
        match *self {
            DirSpec::FullMap => DirConfig::full_map(),
            DirSpec::Sparse {
                coverage,
                assoc,
                repl,
            } => {
                let (sets, ways) = geometry(coverage.entries_for(tracked_blocks_per_slice), assoc);
                DirConfig::sparse(sets, ways).with_repl(repl)
            }
            DirSpec::Stash {
                coverage,
                assoc,
                repl,
            } => {
                let (sets, ways) = geometry(coverage.entries_for(tracked_blocks_per_slice), assoc);
                DirConfig::stash(sets, ways).with_repl(repl)
            }
            DirSpec::Cuckoo { coverage } => {
                let entries = coverage.entries_for(tracked_blocks_per_slice);
                // Keep 4 tables of equal size.
                DirConfig::cuckoo((entries / 4).max(1) * 4)
            }
        }
    }
}

/// Rounds `entries` into a power-of-two set count at fixed associativity.
fn geometry(entries: usize, assoc: usize) -> (usize, usize) {
    let sets = (entries / assoc).max(1).next_power_of_two();
    (sets, assoc)
}

impl fmt::Display for DirSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirSpec::FullMap => write!(f, "fullmap"),
            DirSpec::Sparse {
                coverage, assoc, ..
            } => write!(f, "sparse@{coverage}x{assoc}w"),
            DirSpec::Stash {
                coverage, assoc, ..
            } => write!(f, "stash@{coverage}x{assoc}w"),
            DirSpec::Cuckoo { coverage } => write!(f, "cuckoo@{coverage}"),
        }
    }
}

/// Full machine configuration.
///
/// The default reproduces the paper's 16-core model (see `DESIGN.md` E1).
///
/// # Examples
///
/// ```
/// use stashdir_sim::{CoverageRatio, DirSpec, SystemConfig};
///
/// let cfg = SystemConfig::default()
///     .with_dir(DirSpec::stash(CoverageRatio::new(1, 8)));
/// assert_eq!(cfg.cores, 16);
/// assert_eq!(cfg.dir.name(), "stash");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores = tiles = LLC banks (power of two).
    pub cores: u16,
    /// Coherence block size in bytes.
    pub block_bytes: u64,
    /// Per-core private L1.
    pub l1: CacheConfig,
    /// Per-core private L2 (the coherence point; inclusive of L1).
    pub l2: CacheConfig,
    /// Per-tile LLC bank (the shared LLC is `cores ×` this).
    pub llc_bank: CacheConfig,
    /// Directory organization and provisioning.
    pub dir: DirSpec,
    /// Sharer-set encoding for set-associative directories (full-map
    /// vector vs limited pointers with broadcast on overflow).
    pub sharer_format: SharerFormat,
    /// Directory slice access latency (cycles).
    pub dir_latency: u64,
    /// Bank pipeline occupancy per transaction (cycles): the throughput
    /// limit of one home's directory+LLC controller.
    pub bank_occupancy: u64,
    /// On-chip network.
    pub noc: NocConfig,
    /// Off-chip memory.
    pub dram: DramConfig,
    /// Private caches notify the home on clean evictions (`PutS`/`PutE`).
    /// When `false`, clean evictions are silent and directories accumulate
    /// stale entries (an ablation).
    pub notify_clean_evictions: bool,
    /// Run the full invariant checker every this many completed
    /// transactions (`0` = only at end of run).
    pub check_interval: u64,
    /// Record a [`TimelineSample`] every this many cycles (`0` = off).
    ///
    /// [`TimelineSample`]: crate::report::TimelineSample
    pub timeline_interval: u64,
    /// Seed for every stochastic policy in the machine.
    pub seed: u64,
}

impl Default for SystemConfig {
    /// The reconstructed 16-core HPCA-2014 model: 32 KiB 4-way L1 (1 cyc),
    /// 256 KiB 8-way L2 (8 cyc), 1 MiB 16-way LLC bank (24 cyc), stash
    /// directory at 1× coverage, 4×4 mesh at 3 cyc/hop, 160-cycle DRAM.
    fn default() -> Self {
        SystemConfig {
            cores: 16,
            block_bytes: 64,
            l1: CacheConfig::new(32 * 1024, 4, 64, 1, ReplKind::Lru),
            l2: CacheConfig::new(256 * 1024, 8, 64, 8, ReplKind::Lru),
            llc_bank: CacheConfig::new(1024 * 1024, 16, 64, 24, ReplKind::Lru),
            dir: DirSpec::stash(CoverageRatio::FULL),
            sharer_format: SharerFormat::FullMap,
            dir_latency: 2,
            bank_occupancy: 4,
            noc: NocConfig::default(),
            dram: DramConfig::default(),
            notify_clean_evictions: true,
            check_interval: 0,
            timeline_interval: 0,
            seed: 0xC0FFEE,
        }
    }
}

impl SystemConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if core count is not a positive power of two, block sizes
    /// disagree across levels, or the L2 is not larger than the L1.
    pub fn validate(&self) {
        assert!(
            self.cores > 0 && self.cores.is_power_of_two(),
            "core count must be a positive power of two, got {}",
            self.cores
        );
        for (name, c) in [("l1", &self.l1), ("l2", &self.l2), ("llc", &self.llc_bank)] {
            assert_eq!(
                c.block_bytes(),
                self.block_bytes,
                "{name} block size disagrees with system block size"
            );
        }
        assert!(
            self.l2.size_bytes() >= self.l1.size_bytes(),
            "L2 must be at least as large as L1 (inclusive hierarchy)"
        );
    }

    /// Replaces the directory spec.
    pub fn with_dir(mut self, dir: DirSpec) -> Self {
        self.dir = dir;
        self
    }

    /// Replaces the core count (mesh resizes to match).
    pub fn with_cores(mut self, cores: u16) -> Self {
        self.cores = cores;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables periodic paranoid invariant checking.
    pub fn with_check_interval(mut self, every_transactions: u64) -> Self {
        self.check_interval = every_transactions;
        self
    }

    /// Enables time-series sampling every `cycles` cycles.
    pub fn with_timeline(mut self, cycles: u64) -> Self {
        self.timeline_interval = cycles;
        self
    }

    /// The mesh carrying this machine's tiles.
    pub fn mesh(&self) -> Mesh {
        Mesh::for_nodes(self.cores)
    }

    /// Private blocks each directory slice must cover: the per-core L2
    /// capacity (one slice per core; L1 content is a subset of L2).
    pub fn tracked_blocks_per_slice(&self) -> usize {
        self.l2.num_blocks()
    }

    /// The resolved per-slice directory configuration.
    pub fn dir_slice(&self) -> DirConfig {
        self.dir
            .slice_config(self.tracked_blocks_per_slice())
            .with_sharer_format(self.sharer_format)
    }

    /// LLC lines chip-wide.
    pub fn llc_lines(&self) -> u64 {
        self.llc_bank.num_blocks() as u64 * self.cores as u64
    }

    /// Cost-model parameters for this machine (48-bit physical address
    /// space).
    pub fn cost_params(&self) -> CostParams {
        let slice = self.dir_slice();
        let sets = match slice.kind {
            stashdir_core::DirKind::Sparse { sets, .. }
            | stashdir_core::DirKind::Stash { sets, .. } => sets,
            _ => 1,
        };
        CostParams {
            tag_bits: CostParams::tag_bits_for(48, self.block_bytes, sets),
            cores: self.cores,
            llc_lines: self.llc_lines(),
        }
    }

    /// Renders the configuration as `(parameter, value)` rows — the
    /// "Table 1: system configuration" of the paper.
    pub fn table(&self) -> Vec<(String, String)> {
        let slice = self.dir_slice();
        vec![
            ("cores".into(), self.cores.to_string()),
            ("mesh".into(), self.mesh().to_string()),
            ("block".into(), format!("{}B", self.block_bytes)),
            ("L1 (private)".into(), self.l1.to_string()),
            ("L2 (private)".into(), self.l2.to_string()),
            ("LLC bank (shared)".into(), self.llc_bank.to_string()),
            (
                "LLC total".into(),
                format!(
                    "{}MiB inclusive",
                    self.llc_bank.size_bytes() * self.cores as u64 / (1024 * 1024)
                ),
            ),
            ("directory".into(), format!("{} ({slice})", self.dir)),
            (
                "dir entries/slice".into(),
                if slice.entries() == usize::MAX {
                    "unbounded".into()
                } else {
                    slice.entries().to_string()
                },
            ),
            ("dir latency".into(), format!("{} cyc", self.dir_latency)),
            (
                "NoC".into(),
                format!(
                    "{} cyc/hop, contention={}",
                    self.noc.hop_latency, self.noc.model_contention
                ),
            ),
            (
                "DRAM".into(),
                format!(
                    "{} cyc, {} ch, {} cyc/access",
                    self.dram.latency, self.dram.channels, self.dram.service_time
                ),
            ),
            (
                "clean-eviction notify".into(),
                self.notify_clean_evictions.to_string(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_machine() {
        let cfg = SystemConfig::default();
        cfg.validate();
        assert_eq!(cfg.cores, 16);
        assert_eq!(cfg.l2.num_blocks(), 4096);
        assert_eq!(cfg.tracked_blocks_per_slice(), 4096);
        assert_eq!(cfg.llc_lines(), 16 * 16384);
    }

    #[test]
    fn coverage_entries() {
        assert_eq!(CoverageRatio::new(2, 1).entries_for(4096), 8192);
        assert_eq!(CoverageRatio::new(1, 16).entries_for(4096), 256);
        assert_eq!(CoverageRatio::new(1, 100).entries_for(10), 1, "floor of 1");
        assert!((CoverageRatio::new(1, 2).as_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sweep_is_descending() {
        let sweep = CoverageRatio::sweep();
        assert_eq!(sweep.len(), 6);
        let vals: Vec<f64> = sweep.iter().map(|c| c.as_f64()).collect();
        assert!(vals.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn slice_config_geometry() {
        // 4096 tracked blocks at 1/8 coverage, 8-way: 512 entries = 64 sets.
        let spec = DirSpec::stash(CoverageRatio::new(1, 8));
        let cfg = spec.slice_config(4096);
        assert_eq!(cfg.entries(), 512);
        assert_eq!(cfg.name(), "stash");
    }

    #[test]
    fn slice_config_rounds_sets_to_power_of_two() {
        let spec = DirSpec::sparse(CoverageRatio::new(1, 3));
        let cfg = spec.slice_config(4096); // 1365 entries -> 1024/2048 region
        if let stashdir_core::DirKind::Sparse { sets, .. } = cfg.kind {
            assert!(sets.is_power_of_two());
        } else {
            panic!("expected sparse");
        }
    }

    #[test]
    fn cuckoo_slice_is_multiple_of_tables() {
        let cfg = DirSpec::Cuckoo {
            coverage: CoverageRatio::new(1, 8),
        }
        .slice_config(4096);
        assert_eq!(cfg.entries() % 4, 0);
    }

    #[test]
    fn table_mentions_key_parameters() {
        let rows = SystemConfig::default().table();
        let text: String = rows.iter().map(|(k, v)| format!("{k}={v};")).collect();
        assert!(text.contains("cores=16"));
        assert!(text.contains("4x4 mesh"));
        assert!(text.contains("stash"));
    }

    #[test]
    fn builders_chain() {
        let cfg = SystemConfig::default()
            .with_cores(64)
            .with_seed(7)
            .with_dir(DirSpec::FullMap)
            .with_check_interval(100);
        cfg.validate();
        assert_eq!(cfg.cores, 64);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.check_interval, 100);
        assert_eq!(cfg.mesh().nodes(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn validate_rejects_odd_core_counts() {
        SystemConfig::default().with_cores(12).validate();
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            DirSpec::stash(CoverageRatio::new(1, 8)).to_string(),
            "stash@1/8x8w"
        );
        assert_eq!(DirSpec::FullMap.to_string(), "fullmap");
        assert_eq!(CoverageRatio::new(2, 1).to_string(), "2");
    }
}
