//! System configuration: the reconstructed 16-core CMP of the paper,
//! parameterized for sweeps.

use serde::{Deserialize, Serialize};
use stashdir_core::{CostParams, DirConfig, DirReplPolicy, SharerFormat};
use stashdir_mem::{CacheConfig, DramConfig, ReplKind};
use stashdir_noc::{Mesh, NocConfig};
use std::fmt;

/// Directory provisioning relative to the aggregate private-cache capacity
/// it must track.
///
/// A coverage of 1 means one directory entry per private L2 block
/// chip-wide; the paper's headline configuration is stash at **1/8**.
///
/// # Examples
///
/// ```
/// use stashdir_sim::CoverageRatio;
/// assert_eq!(CoverageRatio::new(1, 8).entries_for(4096), 512);
/// assert_eq!(CoverageRatio::FULL.entries_for(4096), 4096);
/// assert_eq!(format!("{}", CoverageRatio::new(1, 8)), "1/8");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoverageRatio {
    num: u32,
    den: u32,
}

impl CoverageRatio {
    /// One entry per tracked block (1×).
    pub const FULL: CoverageRatio = CoverageRatio { num: 1, den: 1 };

    /// Creates a `num/den` coverage ratio.
    ///
    /// # Panics
    ///
    /// Panics if either component is zero.
    pub fn new(num: u32, den: u32) -> Self {
        assert!(num > 0 && den > 0, "coverage ratio must be positive");
        CoverageRatio { num, den }
    }

    /// The ratio as a float.
    pub fn as_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Number of directory entries for `tracked_blocks` blocks of private
    /// cache (rounded down, at least 1).
    pub fn entries_for(self, tracked_blocks: usize) -> usize {
        ((tracked_blocks * self.num as usize) / self.den as usize).max(1)
    }

    /// The sweep used throughout the evaluation: 2, 1, 1/2, 1/4, 1/8, 1/16.
    pub fn sweep() -> Vec<CoverageRatio> {
        vec![
            CoverageRatio::new(2, 1),
            CoverageRatio::new(1, 1),
            CoverageRatio::new(1, 2),
            CoverageRatio::new(1, 4),
            CoverageRatio::new(1, 8),
            CoverageRatio::new(1, 16),
        ]
    }
}

impl fmt::Display for CoverageRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Which directory organization the machine uses, plus its provisioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirSpec {
    /// The unbounded ideal.
    FullMap,
    /// Conventional sparse directory at the given coverage/associativity.
    Sparse {
        /// Entries relative to tracked private blocks.
        coverage: CoverageRatio,
        /// Ways per directory set.
        assoc: usize,
        /// Victim selection.
        repl: DirReplPolicy,
    },
    /// The paper's stash directory at the given coverage/associativity.
    Stash {
        /// Entries relative to tracked private blocks.
        coverage: CoverageRatio,
        /// Ways per directory set.
        assoc: usize,
        /// Victim selection.
        repl: DirReplPolicy,
    },
    /// Cuckoo directory at the given coverage.
    Cuckoo {
        /// Entries relative to tracked private blocks.
        coverage: CoverageRatio,
    },
    /// The stash organization with limited-pointer sharer encoding:
    /// `k` pointers per entry, degrading to broadcast on overflow.
    LimitedPtr {
        /// Entries relative to tracked private blocks.
        coverage: CoverageRatio,
        /// Ways per directory set.
        assoc: usize,
        /// Pointers per entry.
        k: u8,
    },
    /// Directoryless DLS: no directory storage at all. Blocks touched by
    /// a second core are reclassified shared and serviced as remote LLC
    /// accesses from then on, never cached privately.
    Dls,
    /// Opaque-distributed directory: sparse-style entries sharded across
    /// banks by an opaque address→bank map instead of the home function.
    Opaque {
        /// Entries relative to tracked private blocks.
        coverage: CoverageRatio,
        /// Ways per directory set.
        assoc: usize,
    },
}

impl DirSpec {
    /// Shorthand for a stash directory with the paper's defaults
    /// (8-way, private-first LRU).
    pub fn stash(coverage: CoverageRatio) -> Self {
        DirSpec::Stash {
            coverage,
            assoc: 8,
            repl: DirReplPolicy::PrivateFirstLru,
        }
    }

    /// Shorthand for a conventional sparse directory (8-way, LRU).
    pub fn sparse(coverage: CoverageRatio) -> Self {
        DirSpec::Sparse {
            coverage,
            assoc: 8,
            repl: DirReplPolicy::Lru,
        }
    }

    /// Shorthand for the stash organization with `k` limited pointers
    /// (8-way, private-first LRU).
    pub fn limited_ptr(coverage: CoverageRatio, k: u8) -> Self {
        DirSpec::LimitedPtr {
            coverage,
            assoc: 8,
            k,
        }
    }

    /// Shorthand for an opaque-distributed directory (8-way).
    pub fn opaque(coverage: CoverageRatio) -> Self {
        DirSpec::Opaque { coverage, assoc: 8 }
    }

    /// The organization's short name (its backend-registry name).
    pub fn name(&self) -> &'static str {
        match self {
            DirSpec::FullMap => "fullmap",
            DirSpec::Sparse { .. } => "sparse",
            DirSpec::Stash { .. } => "stash",
            DirSpec::Cuckoo { .. } => "cuckoo",
            DirSpec::LimitedPtr { .. } => "limited-ptr",
            DirSpec::Dls => "dls",
            DirSpec::Opaque { .. } => "opaque",
        }
    }

    /// `true` when the machine must maintain LLC stash bits and run
    /// discovery (the limited-pointer organization is stash-based).
    pub fn uses_stash(&self) -> bool {
        matches!(self, DirSpec::Stash { .. } | DirSpec::LimitedPtr { .. })
    }

    /// `true` for the directoryless DLS backend, whose shared blocks the
    /// machine services as remote LLC accesses.
    pub fn is_dls(&self) -> bool {
        matches!(self, DirSpec::Dls)
    }

    /// `true` for the opaque-distributed backend, whose directory entries
    /// live at banks chosen by the opaque map rather than the home.
    pub fn is_opaque(&self) -> bool {
        matches!(self, DirSpec::Opaque { .. })
    }

    /// `true` when the machine maintains backend-specific counters
    /// (remote LLC accesses, indirection hops, dir-bank load) that the
    /// report should export.
    pub fn has_backend_stats(&self) -> bool {
        self.is_dls() || self.is_opaque()
    }

    /// Resolves to a per-slice [`DirConfig`] given the number of private
    /// blocks each slice must cover. Set counts round up to a power of
    /// two.
    pub fn slice_config(&self, tracked_blocks_per_slice: usize) -> DirConfig {
        match *self {
            DirSpec::FullMap => DirConfig::full_map(),
            DirSpec::Sparse {
                coverage,
                assoc,
                repl,
            } => {
                let (sets, ways) = geometry(coverage.entries_for(tracked_blocks_per_slice), assoc);
                DirConfig::sparse(sets, ways).with_repl(repl)
            }
            DirSpec::Stash {
                coverage,
                assoc,
                repl,
            } => {
                let (sets, ways) = geometry(coverage.entries_for(tracked_blocks_per_slice), assoc);
                DirConfig::stash(sets, ways).with_repl(repl)
            }
            DirSpec::Cuckoo { coverage } => {
                let entries = coverage.entries_for(tracked_blocks_per_slice);
                // Keep 4 tables of equal size.
                DirConfig::cuckoo((entries / 4).max(1) * 4)
            }
            DirSpec::LimitedPtr { coverage, assoc, k } => {
                let (sets, ways) = geometry(coverage.entries_for(tracked_blocks_per_slice), assoc);
                DirConfig::stash(sets, ways)
                    .with_sharer_format(SharerFormat::LimitedPtr { k: k as usize })
            }
            DirSpec::Dls => DirConfig::dls(),
            DirSpec::Opaque { coverage, assoc } => {
                let (sets, ways) = geometry(coverage.entries_for(tracked_blocks_per_slice), assoc);
                DirConfig::opaque(sets, ways)
            }
        }
    }
}

/// Rounds `entries` into a power-of-two set count at fixed associativity.
fn geometry(entries: usize, assoc: usize) -> (usize, usize) {
    let sets = (entries / assoc).max(1).next_power_of_two();
    (sets, assoc)
}

impl fmt::Display for DirSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirSpec::FullMap => write!(f, "fullmap"),
            DirSpec::Sparse {
                coverage, assoc, ..
            } => write!(f, "sparse@{coverage}x{assoc}w"),
            DirSpec::Stash {
                coverage, assoc, ..
            } => write!(f, "stash@{coverage}x{assoc}w"),
            DirSpec::Cuckoo { coverage } => write!(f, "cuckoo@{coverage}"),
            DirSpec::LimitedPtr { coverage, assoc, k } => {
                write!(f, "limited-ptr{k}@{coverage}x{assoc}w")
            }
            DirSpec::Dls => write!(f, "dls"),
            DirSpec::Opaque { coverage, assoc } => write!(f, "opaque@{coverage}x{assoc}w"),
        }
    }
}

/// The grammar accepted by [`DirSpec::from_str`], kind by kind.
pub const DIR_KIND_HELP: &str = "fullmap, sparse@<cov>[x<ways>w], stash@<cov>[x<ways>w], \
     cuckoo@<cov>, limited-ptr<k>@<cov>[x<ways>w], dls, opaque@<cov>[x<ways>w]";

/// Parses a coverage ratio: `1/8` or a bare integer like `2`.
fn parse_coverage(s: &str) -> Result<CoverageRatio, String> {
    let bad = || format!("bad coverage `{s}`: expected <num>/<den> or <num>, e.g. 1/8");
    let (num, den) = match s.split_once('/') {
        Some((n, d)) => (
            n.parse::<u32>().map_err(|_| bad())?,
            d.parse::<u32>().map_err(|_| bad())?,
        ),
        None => (s.parse::<u32>().map_err(|_| bad())?, 1),
    };
    if num == 0 || den == 0 {
        return Err(bad());
    }
    Ok(CoverageRatio::new(num, den))
}

/// Parses a geometry suffix: `<cov>` or `<cov>x<ways>w` (default 8-way).
fn parse_geometry(kind: &str, g: &str) -> Result<(CoverageRatio, usize), String> {
    let (cov, assoc) = match g.rsplit_once('x') {
        Some((c, a)) => {
            let ways = a
                .strip_suffix('w')
                .and_then(|w| w.parse::<usize>().ok())
                .filter(|&w| w > 0)
                .ok_or_else(|| {
                    format!("bad `{kind}` geometry `{g}`: expected <cov>x<ways>w, e.g. 1/8x8w")
                })?;
            (c, ways)
        }
        None => (g, 8),
    };
    Ok((parse_coverage(cov)?, assoc))
}

impl std::str::FromStr for DirSpec {
    type Err = String;

    /// Parses the rendering produced by [`Display`](fmt::Display)
    /// (`stash@1/8x8w`, `cuckoo@1/4`, `limited-ptr2@1/8x8w`, `dls`, …),
    /// with the `x<ways>w` suffix optional (8-way default). Unknown kinds
    /// name every valid one in the error.
    fn from_str(s: &str) -> Result<Self, String> {
        let (kind, geom) = match s.split_once('@') {
            Some((k, g)) => (k, Some(g)),
            None => (s, None),
        };
        let need_geom =
            |kind: &str| format!("directory kind `{kind}` needs a coverage, e.g. {kind}@1/8x8w");
        let no_geom = |kind: &str| format!("directory kind `{kind}` takes no coverage");
        match kind {
            "fullmap" => match geom {
                None => Ok(DirSpec::FullMap),
                Some(_) => Err(no_geom(kind)),
            },
            "dls" => match geom {
                None => Ok(DirSpec::Dls),
                Some(_) => Err(no_geom(kind)),
            },
            "sparse" => {
                let (coverage, assoc) = parse_geometry(kind, geom.ok_or_else(|| need_geom(kind))?)?;
                Ok(DirSpec::Sparse {
                    coverage,
                    assoc,
                    repl: DirReplPolicy::Lru,
                })
            }
            "stash" => {
                let (coverage, assoc) = parse_geometry(kind, geom.ok_or_else(|| need_geom(kind))?)?;
                Ok(DirSpec::Stash {
                    coverage,
                    assoc,
                    repl: DirReplPolicy::PrivateFirstLru,
                })
            }
            "opaque" => {
                let (coverage, assoc) = parse_geometry(kind, geom.ok_or_else(|| need_geom(kind))?)?;
                Ok(DirSpec::Opaque { coverage, assoc })
            }
            "cuckoo" => {
                let coverage = parse_coverage(geom.ok_or_else(|| need_geom(kind))?)?;
                Ok(DirSpec::Cuckoo { coverage })
            }
            _ => {
                if let Some(rest) = kind.strip_prefix("limited-ptr") {
                    let k: u8 = rest.parse().map_err(|_| {
                        format!("bad limited-ptr pointer count `{rest}`: expected limited-ptr<k>, e.g. limited-ptr2")
                    })?;
                    if k == 0 {
                        return Err("limited-ptr needs at least one pointer".to_string());
                    }
                    let (coverage, assoc) = parse_geometry(
                        "limited-ptr",
                        geom.ok_or_else(|| need_geom("limited-ptr<k>"))?,
                    )?;
                    Ok(DirSpec::LimitedPtr { coverage, assoc, k })
                } else {
                    Err(format!(
                        "unknown directory kind `{kind}`; valid kinds: {DIR_KIND_HELP}"
                    ))
                }
            }
        }
    }
}

/// Full machine configuration.
///
/// The default reproduces the paper's 16-core model (see `DESIGN.md` E1).
///
/// # Examples
///
/// ```
/// use stashdir_sim::{CoverageRatio, DirSpec, SystemConfig};
///
/// let cfg = SystemConfig::default()
///     .with_dir(DirSpec::stash(CoverageRatio::new(1, 8)));
/// assert_eq!(cfg.cores, 16);
/// assert_eq!(cfg.dir.name(), "stash");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores = tiles = LLC banks (power of two).
    pub cores: u16,
    /// Coherence block size in bytes.
    pub block_bytes: u64,
    /// Per-core private L1.
    pub l1: CacheConfig,
    /// Per-core private L2 (the coherence point; inclusive of L1).
    pub l2: CacheConfig,
    /// Per-tile LLC bank (the shared LLC is `cores ×` this).
    pub llc_bank: CacheConfig,
    /// Directory organization and provisioning.
    pub dir: DirSpec,
    /// Sharer-set encoding for set-associative directories (full-map
    /// vector vs limited pointers with broadcast on overflow).
    pub sharer_format: SharerFormat,
    /// Directory slice access latency (cycles).
    pub dir_latency: u64,
    /// Bank pipeline occupancy per transaction (cycles): the throughput
    /// limit of one home's directory+LLC controller.
    pub bank_occupancy: u64,
    /// On-chip network.
    pub noc: NocConfig,
    /// Off-chip memory.
    pub dram: DramConfig,
    /// Private caches notify the home on clean evictions (`PutS`/`PutE`).
    /// When `false`, clean evictions are silent and directories accumulate
    /// stale entries (an ablation).
    pub notify_clean_evictions: bool,
    /// Run the full invariant checker every this many completed
    /// transactions (`0` = only at end of run).
    pub check_interval: u64,
    /// Record a [`TimelineSample`] every this many cycles (`0` = off).
    ///
    /// [`TimelineSample`]: crate::report::TimelineSample
    pub timeline_interval: u64,
    /// Seed for every stochastic policy in the machine.
    pub seed: u64,
}

impl Default for SystemConfig {
    /// The reconstructed 16-core HPCA-2014 model: 32 KiB 4-way L1 (1 cyc),
    /// 256 KiB 8-way L2 (8 cyc), 1 MiB 16-way LLC bank (24 cyc), stash
    /// directory at 1× coverage, 4×4 mesh at 3 cyc/hop, 160-cycle DRAM.
    fn default() -> Self {
        SystemConfig {
            cores: 16,
            block_bytes: 64,
            l1: CacheConfig::new(32 * 1024, 4, 64, 1, ReplKind::Lru),
            l2: CacheConfig::new(256 * 1024, 8, 64, 8, ReplKind::Lru),
            llc_bank: CacheConfig::new(1024 * 1024, 16, 64, 24, ReplKind::Lru),
            dir: DirSpec::stash(CoverageRatio::FULL),
            sharer_format: SharerFormat::FullMap,
            dir_latency: 2,
            bank_occupancy: 4,
            noc: NocConfig::default(),
            dram: DramConfig::default(),
            notify_clean_evictions: true,
            check_interval: 0,
            timeline_interval: 0,
            seed: 0xC0FFEE,
        }
    }
}

impl SystemConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if core count is not a positive power of two, block sizes
    /// disagree across levels, or the L2 is not larger than the L1.
    pub fn validate(&self) {
        assert!(
            self.cores > 0 && self.cores.is_power_of_two(),
            "core count must be a positive power of two, got {}",
            self.cores
        );
        for (name, c) in [("l1", &self.l1), ("l2", &self.l2), ("llc", &self.llc_bank)] {
            assert_eq!(
                c.block_bytes(),
                self.block_bytes,
                "{name} block size disagrees with system block size"
            );
        }
        assert!(
            self.l2.size_bytes() >= self.l1.size_bytes(),
            "L2 must be at least as large as L1 (inclusive hierarchy)"
        );
    }

    /// Replaces the directory spec.
    pub fn with_dir(mut self, dir: DirSpec) -> Self {
        self.dir = dir;
        self
    }

    /// Replaces the core count (mesh resizes to match).
    pub fn with_cores(mut self, cores: u16) -> Self {
        self.cores = cores;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables periodic paranoid invariant checking.
    pub fn with_check_interval(mut self, every_transactions: u64) -> Self {
        self.check_interval = every_transactions;
        self
    }

    /// Enables time-series sampling every `cycles` cycles.
    pub fn with_timeline(mut self, cycles: u64) -> Self {
        self.timeline_interval = cycles;
        self
    }

    /// The mesh carrying this machine's tiles.
    pub fn mesh(&self) -> Mesh {
        Mesh::for_nodes(self.cores)
    }

    /// Private blocks each directory slice must cover: the per-core L2
    /// capacity (one slice per core; L1 content is a subset of L2).
    pub fn tracked_blocks_per_slice(&self) -> usize {
        self.l2.num_blocks()
    }

    /// The resolved per-slice directory configuration.
    pub fn dir_slice(&self) -> DirConfig {
        let slice = self.dir.slice_config(self.tracked_blocks_per_slice());
        match self.dir {
            // A limited-pointer spec carries its own sharer format; the
            // machine-level default must not clobber it.
            DirSpec::LimitedPtr { .. } => slice,
            _ => slice.with_sharer_format(self.sharer_format),
        }
    }

    /// LLC lines chip-wide.
    pub fn llc_lines(&self) -> u64 {
        self.llc_bank.num_blocks() as u64 * self.cores as u64
    }

    /// Cost-model parameters for this machine (48-bit physical address
    /// space).
    pub fn cost_params(&self) -> CostParams {
        let slice = self.dir_slice();
        let sets = match slice.kind {
            stashdir_core::DirKind::Sparse { sets, .. }
            | stashdir_core::DirKind::Stash { sets, .. }
            | stashdir_core::DirKind::Opaque { sets, .. } => sets,
            _ => 1,
        };
        CostParams {
            tag_bits: CostParams::tag_bits_for(48, self.block_bytes, sets),
            cores: self.cores,
            llc_lines: self.llc_lines(),
        }
    }

    /// Renders the configuration as `(parameter, value)` rows — the
    /// "Table 1: system configuration" of the paper.
    pub fn table(&self) -> Vec<(String, String)> {
        let slice = self.dir_slice();
        vec![
            ("cores".into(), self.cores.to_string()),
            ("mesh".into(), self.mesh().to_string()),
            ("block".into(), format!("{}B", self.block_bytes)),
            ("L1 (private)".into(), self.l1.to_string()),
            ("L2 (private)".into(), self.l2.to_string()),
            ("LLC bank (shared)".into(), self.llc_bank.to_string()),
            (
                "LLC total".into(),
                format!(
                    "{}MiB inclusive",
                    self.llc_bank.size_bytes() * self.cores as u64 / (1024 * 1024)
                ),
            ),
            ("directory".into(), format!("{} ({slice})", self.dir)),
            (
                "dir entries/slice".into(),
                if slice.entries() == usize::MAX {
                    "unbounded".into()
                } else {
                    slice.entries().to_string()
                },
            ),
            ("dir latency".into(), format!("{} cyc", self.dir_latency)),
            (
                "NoC".into(),
                format!(
                    "{} cyc/hop, contention={}",
                    self.noc.hop_latency, self.noc.model_contention
                ),
            ),
            (
                "DRAM".into(),
                format!(
                    "{} cyc, {} ch, {} cyc/access",
                    self.dram.latency, self.dram.channels, self.dram.service_time
                ),
            ),
            (
                "clean-eviction notify".into(),
                self.notify_clean_evictions.to_string(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_machine() {
        let cfg = SystemConfig::default();
        cfg.validate();
        assert_eq!(cfg.cores, 16);
        assert_eq!(cfg.l2.num_blocks(), 4096);
        assert_eq!(cfg.tracked_blocks_per_slice(), 4096);
        assert_eq!(cfg.llc_lines(), 16 * 16384);
    }

    #[test]
    fn coverage_entries() {
        assert_eq!(CoverageRatio::new(2, 1).entries_for(4096), 8192);
        assert_eq!(CoverageRatio::new(1, 16).entries_for(4096), 256);
        assert_eq!(CoverageRatio::new(1, 100).entries_for(10), 1, "floor of 1");
        assert!((CoverageRatio::new(1, 2).as_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sweep_is_descending() {
        let sweep = CoverageRatio::sweep();
        assert_eq!(sweep.len(), 6);
        let vals: Vec<f64> = sweep.iter().map(|c| c.as_f64()).collect();
        assert!(vals.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn slice_config_geometry() {
        // 4096 tracked blocks at 1/8 coverage, 8-way: 512 entries = 64 sets.
        let spec = DirSpec::stash(CoverageRatio::new(1, 8));
        let cfg = spec.slice_config(4096);
        assert_eq!(cfg.entries(), 512);
        assert_eq!(cfg.name(), "stash");
    }

    #[test]
    fn slice_config_rounds_sets_to_power_of_two() {
        let spec = DirSpec::sparse(CoverageRatio::new(1, 3));
        let cfg = spec.slice_config(4096); // 1365 entries -> 1024/2048 region
        if let stashdir_core::DirKind::Sparse { sets, .. } = cfg.kind {
            assert!(sets.is_power_of_two());
        } else {
            panic!("expected sparse");
        }
    }

    #[test]
    fn cuckoo_slice_is_multiple_of_tables() {
        let cfg = DirSpec::Cuckoo {
            coverage: CoverageRatio::new(1, 8),
        }
        .slice_config(4096);
        assert_eq!(cfg.entries() % 4, 0);
    }

    #[test]
    fn table_mentions_key_parameters() {
        let rows = SystemConfig::default().table();
        let text: String = rows.iter().map(|(k, v)| format!("{k}={v};")).collect();
        assert!(text.contains("cores=16"));
        assert!(text.contains("4x4 mesh"));
        assert!(text.contains("stash"));
    }

    #[test]
    fn builders_chain() {
        let cfg = SystemConfig::default()
            .with_cores(64)
            .with_seed(7)
            .with_dir(DirSpec::FullMap)
            .with_check_interval(100);
        cfg.validate();
        assert_eq!(cfg.cores, 64);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.check_interval, 100);
        assert_eq!(cfg.mesh().nodes(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn validate_rejects_odd_core_counts() {
        SystemConfig::default().with_cores(12).validate();
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            DirSpec::stash(CoverageRatio::new(1, 8)).to_string(),
            "stash@1/8x8w"
        );
        assert_eq!(DirSpec::FullMap.to_string(), "fullmap");
        assert_eq!(CoverageRatio::new(2, 1).to_string(), "2");
        assert_eq!(DirSpec::Dls.to_string(), "dls");
        assert_eq!(
            DirSpec::opaque(CoverageRatio::new(1, 8)).to_string(),
            "opaque@1/8x8w"
        );
        assert_eq!(
            DirSpec::limited_ptr(CoverageRatio::new(1, 8), 2).to_string(),
            "limited-ptr2@1/8x8w"
        );
    }

    #[test]
    fn parse_round_trips_display() {
        for spec in [
            DirSpec::FullMap,
            DirSpec::Dls,
            DirSpec::sparse(CoverageRatio::new(1, 8)),
            DirSpec::stash(CoverageRatio::new(1, 4)),
            DirSpec::opaque(CoverageRatio::new(1, 8)),
            DirSpec::Cuckoo {
                coverage: CoverageRatio::new(1, 8),
            },
            DirSpec::limited_ptr(CoverageRatio::new(1, 8), 4),
            DirSpec::Stash {
                coverage: CoverageRatio::new(3, 16),
                assoc: 4,
                repl: DirReplPolicy::PrivateFirstLru,
            },
        ] {
            let parsed: DirSpec = spec.to_string().parse().expect("round-trip parse");
            assert_eq!(parsed, spec, "round-trip of {spec}");
        }
    }

    #[test]
    fn parse_defaults_to_eight_ways() {
        assert_eq!(
            "stash@1/8".parse::<DirSpec>().unwrap(),
            DirSpec::stash(CoverageRatio::new(1, 8))
        );
        assert_eq!(
            "opaque@1/2x4w".parse::<DirSpec>().unwrap(),
            DirSpec::Opaque {
                coverage: CoverageRatio::new(1, 2),
                assoc: 4,
            }
        );
    }

    #[test]
    fn parse_errors_name_every_kind() {
        let err = "bogus@1/8".parse::<DirSpec>().unwrap_err();
        for kind in [
            "fullmap",
            "sparse",
            "stash",
            "cuckoo",
            "limited-ptr",
            "dls",
            "opaque",
        ] {
            assert!(err.contains(kind), "error `{err}` missing kind `{kind}`");
        }
        assert!("fullmap@1/8".parse::<DirSpec>().is_err());
        assert!("stash".parse::<DirSpec>().is_err());
        assert!("stash@0/8".parse::<DirSpec>().is_err());
        assert!("limited-ptr0@1/8".parse::<DirSpec>().is_err());
        assert!("stash@1/8x0w".parse::<DirSpec>().is_err());
    }

    #[test]
    fn limited_ptr_slice_keeps_its_format() {
        let cfg =
            SystemConfig::default().with_dir(DirSpec::limited_ptr(CoverageRatio::new(1, 8), 2));
        let slice = cfg.dir_slice();
        assert_eq!(slice.backend_name(), "limited-ptr");
        assert_eq!(
            slice.format,
            stashdir_core::SharerFormat::LimitedPtr { k: 2 }
        );
        // The geometry matches the plain stash slice at the same coverage.
        let stash = SystemConfig::default()
            .with_dir(DirSpec::stash(CoverageRatio::new(1, 8)))
            .dir_slice();
        assert_eq!(slice.entries(), stash.entries());
    }

    #[test]
    fn dls_and_opaque_slices_resolve() {
        let dls = SystemConfig::default().with_dir(DirSpec::Dls).dir_slice();
        assert_eq!(dls.backend_name(), "dls");
        let opaque = SystemConfig::default()
            .with_dir(DirSpec::opaque(CoverageRatio::new(1, 8)))
            .dir_slice();
        assert_eq!(opaque.backend_name(), "opaque");
        assert_eq!(opaque.entries(), 512);
    }
}
