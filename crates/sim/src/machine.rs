//! The machine: cores, private hierarchies, home banks, NoC and DRAM,
//! driven to completion over a set of per-core traces.
//!
//! See the crate docs for the simulation discipline. In short: events
//! carry *time*; handlers compute whole coherence transactions
//! procedurally and apply every state change in event (program) order,
//! which together with per-block busy windows at the home yields a
//! serializable execution.

// lint: allow-file(indexing) — cores/privs/banks are fixed-size vectors
// indexed by CoreId/BankId produced by the config-bounded topology, so
// the bounds hold by construction.

use crate::arena::{Arena, SlabRef};
use crate::bank::{Bank, LlcLine};
use crate::config::SystemConfig;
use crate::event::EventQueue;
use crate::fault::{expected_detector, Detector, FaultClass, FaultConfig, FaultPlan};
use crate::private::{AccessResult, PrivateHier, ProbeAnswer};
use crate::report::{SimReport, TimelineSample, TransitionHits};
use crate::values::ValueTracker;
use stashdir_common::json::Value;
use stashdir_common::{
    BankId, BlockAddr, CoreId, Cycle, FxHashMap, FxHashSet, Histogram, MemOp, MemOpKind, NodeId,
    StatSink,
};
use stashdir_core::EvictionAction;
use stashdir_mem::DramModel;
use stashdir_noc::{LinkFaultConfig, Network};
use stashdir_protocol::{
    decide, decide_put, discovery_intent, discovery_targets, needs_discovery, DirView,
    DiscoveryIntent, Grant, PrivState, Probe, ProbeReply, PutOutcome, Request, CONTROL_FLITS,
    DATA_FLITS,
};
/// Ring-buffer depth of the event trail kept for diagnostic snapshots
/// (maintained only while fault injection is threaded).
const RECENT_EVENTS: usize = 32;

/// Transition-label domain sizes for the interned witness counters.
const N_STATES: usize = 4;
const N_PROBES: usize = 6;
const N_OPS: usize = 2;
const N_REQUESTS: usize = 6;
const N_VIEWS: usize = 3;

/// Interned row/column index of each label domain. Every `*_idx`
/// function is the inverse of the matching `*_LABELS` table, and the
/// tables carry exactly the canonical labels of
/// `stashdir_protocol::reachability` (asserted in tests), so campaign
/// coverage still diffs against the lint protocol-model artifact with
/// no label translation.
fn state_idx(s: PrivState) -> usize {
    match s {
        PrivState::Invalid => 0,
        PrivState::Shared => 1,
        PrivState::Exclusive => 2,
        PrivState::Modified => 3,
    }
}
const STATE_LABELS: [&str; N_STATES] = ["Invalid", "Shared", "Exclusive", "Modified"];

fn probe_idx(p: Probe) -> usize {
    match p {
        Probe::FwdGetS => 0,
        Probe::FwdGetM => 1,
        Probe::Inv => 2,
        Probe::Recall => 3,
        Probe::Discovery(DiscoveryIntent::Share) => 4,
        Probe::Discovery(DiscoveryIntent::Invalidate) => 5,
    }
}
const PROBE_LABELS: [&str; N_PROBES] = [
    "FwdGetS",
    "FwdGetM",
    "Inv",
    "Recall",
    "Discovery(Share)",
    "Discovery(Invalidate)",
];

fn op_idx(k: MemOpKind) -> usize {
    match k {
        MemOpKind::Read => 0,
        MemOpKind::Write => 1,
    }
}
const OP_LABELS: [&str; N_OPS] = ["Read", "Write"];

fn request_idx(r: Request) -> usize {
    match r {
        Request::GetS => 0,
        Request::GetM => 1,
        Request::Upgrade => 2,
        Request::PutS => 3,
        Request::PutE => 4,
        Request::PutM => 5,
    }
}
const REQUEST_LABELS: [&str; N_REQUESTS] = ["GetS", "GetM", "Upgrade", "PutS", "PutE", "PutM"];

fn view_idx(v: &DirView) -> usize {
    match v {
        DirView::Untracked => 0,
        DirView::Exclusive(_) => 1,
        DirView::Shared(_) => 2,
    }
}
const VIEW_LABELS: [&str; N_VIEWS] = ["Untracked", "Exclusive", "Shared"];

/// Per-(row × column) transition hit counters over the small,
/// statically known label spaces above, stored as flat arrays indexed
/// by interned transition id (`row * cols + col`) — the hot-path bump
/// is one array add, no tree walk. Export recovers the canonical
/// labels and sorts them lexicographically, reproducing the ordered
/// `(row, col)` iteration the former `BTreeMap` keys gave the artifact
/// schema (the determinism lint forbids hash-order iteration into
/// artifacts; a sorted flat array is order-deterministic by
/// construction).
///
/// Allocated only when the fault config asked for witnessing
/// ([`FaultConfig::witness`]); plain and plain-chaos runs never touch
/// it.
#[derive(Debug)]
struct WitnessSet {
    /// Private-cache probe handling: (private state, probe).
    probe: [u64; N_STATES * N_PROBES],
    /// Core-local accesses: (private state, Read/Write).
    local: [u64; N_STATES * N_OPS],
    /// Home decisions: (request, directory view).
    home: [u64; N_REQUESTS * N_VIEWS],
}

impl Default for WitnessSet {
    fn default() -> Self {
        WitnessSet {
            probe: [0; N_STATES * N_PROBES],
            local: [0; N_STATES * N_OPS],
            home: [0; N_REQUESTS * N_VIEWS],
        }
    }
}

impl WitnessSet {
    fn export(&self, coverage: &mut Vec<TransitionHits>) {
        type Section<'a> = (&'a str, &'a [u64], &'a [&'static str], &'a [&'static str]);
        let sections: [Section; 3] = [
            ("private_probe", &self.probe, &STATE_LABELS, &PROBE_LABELS),
            ("local_access", &self.local, &STATE_LABELS, &OP_LABELS),
            ("home", &self.home, &REQUEST_LABELS, &VIEW_LABELS),
        ];
        for (name, cells, rows, cols) in sections {
            let mut hit: Vec<(&'static str, &'static str, u64)> = cells
                .iter()
                .enumerate()
                .filter(|&(_, &hits)| hits > 0)
                .map(|(id, &hits)| (rows[id / cols.len()], cols[id % cols.len()], hits))
                .collect();
            hit.sort_unstable();
            for (row, col, hits) in hit {
                coverage.push(TransitionHits {
                    section: name.to_string(),
                    row: row.to_string(),
                    col: col.to_string(),
                    hits,
                });
            }
        }
    }
}

/// Fixed-capacity ring of the most recent `(Cycle, Event)` pairs.
///
/// The hot loop stores plain `Copy` values here; nothing is formatted
/// until [`Machine::diag_snapshot`] renders the trail at quiesce time,
/// so a healthy faulty-mode run never allocates for diagnostics. The
/// backing `Vec` is allocated once at `RECENT_EVENTS` capacity and
/// never grows.
#[derive(Debug)]
struct EventRing {
    slots: Vec<(Cycle, Event)>,
    /// Index of the oldest entry once the ring is full (and the next
    /// overwrite target); always 0 while still filling.
    head: usize,
}

impl EventRing {
    fn new() -> Self {
        EventRing {
            slots: Vec::with_capacity(RECENT_EVENTS),
            head: 0,
        }
    }

    fn push(&mut self, at: Cycle, event: Event) {
        if self.slots.len() < RECENT_EVENTS {
            self.slots.push((at, event));
        } else {
            self.slots[self.head] = (at, event);
            self.head = (self.head + 1) % RECENT_EVENTS;
        }
    }

    /// Entries oldest→newest.
    fn iter(&self) -> impl Iterator<Item = &(Cycle, Event)> {
        let (tail, front) = self.slots.split_at(self.head);
        front.iter().chain(tail.iter())
    }

    #[cfg(test)]
    fn capacity(&self) -> usize {
        self.slots.capacity()
    }
}

/// Per-core runtime state, struct-of-arrays: one dense vector per
/// field, indexed by `CoreId`. The run loop's per-event touches
/// (last-retire bump, pending check, pc advance) each hit one small
/// contiguous array instead of striding across padded per-core structs
/// — the layout that lets E9-style sweeps scale to 1024 cores.
#[derive(Debug, Default)]
pub(crate) struct CoreTable {
    pub(crate) trace: Vec<Vec<MemOp>>,
    pub(crate) pc: Vec<usize>,
    pub(crate) pending: Vec<Option<MemOp>>,
    pub(crate) issue_time: Vec<Cycle>,
    pub(crate) finish: Vec<Option<Cycle>>,
    pub(crate) ops_done: Vec<u64>,
    /// Cycle of each core's most recent forward progress (watchdog).
    pub(crate) last_retire: Vec<Cycle>,
}

impl CoreTable {
    fn new(traces: Vec<Vec<MemOp>>) -> Self {
        let n = traces.len();
        CoreTable {
            trace: traces,
            pc: vec![0; n],
            pending: vec![None; n],
            issue_time: vec![Cycle::ZERO; n],
            finish: vec![None; n],
            ops_done: vec![0; n],
            last_retire: vec![Cycle::ZERO; n],
        }
    }

    /// Number of cores (zero until [`Machine::run`] installs traces).
    pub(crate) fn len(&self) -> usize {
        self.pc.len()
    }
}

/// A fully resolved event: what handlers consume, what the diagnostic
/// ring stores, and the `Debug` shape the snapshot schema renders.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// The core attempts its next trace operation.
    Issue(CoreId),
    /// A core→home protocol message arrives.
    BankMsg(BankMsg),
}

/// Compact queue payload: an issue slot, or an arena handle to a
/// [`BankMsg`] parked in [`Machine::msgs`]. 8 bytes against the
/// resolved [`Event`]'s ~32, so every heap sift moves a small key;
/// handles resolve (and free their slot) at pop time, or read-only via
/// [`Arena::get`] when a diagnostic snapshot renders in-flight
/// messages.
#[derive(Debug, Clone, Copy)]
enum QueuedEvent {
    Issue(CoreId),
    Msg(SlabRef),
}

#[derive(Debug, Clone, Copy)]
struct BankMsg {
    from: CoreId,
    req: Request,
    block: BlockAddr,
    /// Version payload of a `PutM`.
    version: u64,
}

/// One discovery round's result.
#[derive(Debug, Clone, Copy)]
struct DiscoveryHit {
    owner: CoreId,
    version: u64,
    dirty: bool,
    /// The owner keeps a (downgraded) copy.
    retained: bool,
    /// The reply carried data.
    with_data: bool,
}

/// The simulated machine.
///
/// Construct with [`Machine::new`], execute with [`Machine::run`].
pub struct Machine {
    pub(crate) cfg: SystemConfig,
    pub(crate) net: Network,
    /// Dense per-channel FIFO clamp: `nodes × nodes` last-arrival
    /// matrix, flat-indexed `src * nodes + dst`. A hot per-message
    /// lookup with a statically known key space — no hashing.
    chan_last: Vec<Cycle>,
    nodes: usize,
    pub(crate) cores: CoreTable,
    pub(crate) privs: Vec<PrivateHier>,
    pub(crate) banks: Vec<Bank>,
    /// Per-bank controller pipeline availability, dense by `BankId`.
    bank_free: Vec<Cycle>,
    /// Per-block transaction serialization windows (all banks; a block
    /// is only ever held at its home, so one map cannot collide).
    block_busy: FxHashMap<BlockAddr, Cycle>,
    pub(crate) dram: DramModel,
    pub(crate) dram_store: FxHashMap<BlockAddr, u64>,
    pub(crate) values: ValueTracker,
    /// DLS only: blocks reclassified shared (a second core touched them);
    /// they are served at the home LLC and never cached privately again.
    pub(crate) dls_shared: FxHashSet<BlockAddr>,
    queue: EventQueue<QueuedEvent>,
    /// In-flight message payloads; the queue holds handles into this
    /// slab (see [`QueuedEvent`]).
    msgs: Arena<BankMsg>,
    /// The cycle batch currently being swept by the run loop, with
    /// [`Machine::batch_pos`] marking the next unprocessed entry. Lives
    /// on the machine (not the loop) so a mid-batch quiesce can render
    /// the unprocessed remainder as in-flight — exactly the events a
    /// one-at-a-time pop loop would still have queued.
    batch: Vec<QueuedEvent>,
    batch_pos: usize,
    bank_bits: u32,
    transactions: u64,
    miss_latency: Histogram,
    discovery_latency: Histogram,
    inv_round_size: Histogram,
    timeline: Vec<TimelineSample>,
    next_sample: Cycle,
    faults: Option<FaultPlan>,
    witness: Option<Box<WitnessSet>>,
    /// Cached lower bound on every unfinished core's last-retire cycle;
    /// lets the watchdog skip its O(cores) scan while no stall is
    /// possible (see [`Machine::watchdog_tripped`]).
    retire_floor: Cycle,
    recent_events: EventRing,
    snapshot: Option<String>,
    quiesced: bool,
}

impl Machine {
    /// Builds a machine from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`].
    pub fn new(config: SystemConfig) -> Self {
        config.validate();
        let mesh = config.mesh();
        let bank_bits = (config.cores as u64).trailing_zeros();
        let slice = config.dir_slice();
        let privs = (0..config.cores)
            .map(|c| {
                PrivateHier::new(
                    CoreId::new(c),
                    &config.l1,
                    &config.l2,
                    config.notify_clean_evictions,
                    config.seed ^ (c as u64) << 8,
                )
            })
            .collect();
        let banks = (0..config.cores)
            .map(|b| {
                Bank::new(
                    BankId::new(b),
                    bank_bits,
                    &config.llc_bank,
                    slice.build(config.seed ^ 0xD1D1 ^ ((b as u64) << 16)),
                    config.seed ^ 0x11C ^ ((b as u64) << 24),
                )
            })
            .collect();
        let nodes = config.cores as usize;
        Machine {
            net: Network::new(mesh, config.noc),
            chan_last: vec![Cycle::ZERO; nodes * nodes],
            nodes,
            cores: CoreTable::default(),
            privs,
            banks,
            bank_free: vec![Cycle::ZERO; nodes],
            block_busy: FxHashMap::default(),
            dram: DramModel::new(config.dram),
            dram_store: FxHashMap::default(),
            values: ValueTracker::new(),
            dls_shared: FxHashSet::default(),
            queue: EventQueue::new(),
            msgs: Arena::new(),
            batch: Vec::new(),
            batch_pos: 0,
            bank_bits,
            transactions: 0,
            miss_latency: Histogram::new(),
            discovery_latency: Histogram::new(),
            inv_round_size: Histogram::new(),
            timeline: Vec::new(),
            // Timeline off → park the next sample at "never", so the hot
            // loop pays a single always-false compare instead of checking
            // the interval every event.
            next_sample: if config.timeline_interval > 0 {
                Cycle::ZERO
            } else {
                Cycle::MAX
            },
            faults: None,
            witness: None,
            retire_floor: Cycle::ZERO,
            recent_events: EventRing::new(),
            snapshot: None,
            quiesced: false,
            cfg: config,
        }
    }

    /// Threads the deterministic fault-injection layer into this machine.
    ///
    /// With [`FaultConfig::disabled`] the run is byte-identical to a
    /// plain [`Machine::new`] run (the zero-cost property the harness
    /// property-tests); with a class enabled, the configured fault is
    /// injected and the run quiesces with a diagnostic snapshot when the
    /// invariant checker or the liveness watchdog catches the damage.
    pub fn with_faults(mut self, cfg: FaultConfig) -> Self {
        // The legacy single-class NoC modes inject inside the network
        // itself; burst-scheduled NoC faults are injected at the machine
        // layer instead ([`Machine::deliver_faulty`]), where the cycle
        // clock needed to evaluate burst windows is in scope.
        if matches!(
            cfg.class,
            Some(FaultClass::NocDelay | FaultClass::NocDuplicate)
        ) {
            self.net.set_link_faults(LinkFaultConfig {
                seed: cfg.seed,
                delay_per_mille: if cfg.class == Some(FaultClass::NocDelay) {
                    cfg.rate_per_mille
                } else {
                    0
                },
                delay_cycles: cfg.delay_cycles,
                dup_per_mille: if cfg.class == Some(FaultClass::NocDuplicate) {
                    cfg.rate_per_mille
                } else {
                    0
                },
                max_faults: cfg.max_injections,
            });
        }
        if cfg.witness {
            self.witness = Some(Box::default());
        }
        self.faults = Some(FaultPlan::new(cfg));
        self
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The home bank of a block.
    pub fn home(&self, block: BlockAddr) -> BankId {
        BankId::new((block.get() & ((1 << self.bank_bits) - 1)) as u16)
    }

    /// The bank holding `block`'s *directory entry*: the home bank for
    /// every organization except opaque-distributed, which shards entries
    /// by a multiplicative hash of the whole block address — deliberately
    /// decoupled from the home interleaving, so a demand generally takes
    /// an indirection hop from the home to the directory bank.
    pub fn dir_bank_of(&self, block: BlockAddr) -> BankId {
        if !self.cfg.dir.is_opaque() || self.bank_bits == 0 {
            return self.home(block);
        }
        let h = block.get().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        BankId::new((h >> (64 - self.bank_bits)) as u16)
    }

    /// Runs the machine over one trace per core until every core retires
    /// its whole trace and all protocol traffic drains.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len()` differs from the configured core count.
    pub fn run(mut self, traces: Vec<Vec<MemOp>>) -> SimReport {
        assert_eq!(
            traces.len(),
            self.cfg.cores as usize,
            "need exactly one trace per core"
        );
        self.cores = CoreTable::new(traces);
        for c in 0..self.cfg.cores {
            self.queue
                .push(Cycle::ZERO, QueuedEvent::Issue(CoreId::new(c)));
        }
        let mut last = Cycle::ZERO;
        // Batched stepping: each iteration drains one cycle's events
        // into the reused machine-level buffer, then sweeps them from
        // contiguous memory. Same-cycle pushes made by handlers carry
        // larger sequence numbers, so they form the next batch at that
        // cycle — exactly the one-at-a-time pop order (see
        // `EventQueue::pop_batch`).
        'cycles: while let Some(now) = self.queue.pop_batch(&mut self.batch) {
            debug_assert!(now >= last, "time went backwards");
            last = now;
            self.batch_pos = 0;
            while self.batch_pos < self.batch.len() {
                let queued = self.batch[self.batch_pos];
                // Advance *before* handling: the event now being
                // processed is no longer in flight (matching pop
                // semantics for any snapshot taken inside the handler).
                self.batch_pos += 1;
                let event = self.resolve(queued);
                if self.faults.is_some() {
                    self.note_event(now, &event);
                    if self.watchdog_tripped(now) {
                        break 'cycles;
                    }
                }
                if now >= self.next_sample {
                    self.record_sample(now);
                    self.next_sample = now + self.cfg.timeline_interval;
                }
                match event {
                    Event::Issue(core) => self.handle_issue(core, now),
                    Event::BankMsg(msg) => self.handle_bank_msg(msg, now),
                }
                if self.quiesced {
                    break 'cycles;
                }
            }
        }
        let violations = self.final_check();
        // A faulty run whose damage only surfaces at the end of the run
        // (a dropped grant leaving a core pending, I6) still counts as an
        // invariant detection and still gets a snapshot.
        if !violations.is_empty() {
            if let Some(plan) = self.faults.as_mut() {
                if plan.summary.detected_total() == 0 {
                    plan.record_detection(Detector::Invariant);
                }
            }
            if self.faults.is_some() && self.snapshot.is_none() {
                self.snapshot = Some(self.diag_snapshot(last, "final_check").render());
            }
        }
        self.build_report(violations)
    }

    // ---- plumbing ----

    /// Records one point of the run's time series.
    fn record_sample(&mut self, now: Cycle) {
        let mut dir_occupancy = 0u64;
        let mut silent = 0u64;
        let mut inval = 0u64;
        let mut discoveries = 0u64;
        for bank in &self.banks {
            dir_occupancy += bank.dir().occupancy() as u64;
            silent += bank.dir().stats().silent_evictions.get();
            inval += bank.dir().stats().invalidating_evictions.get();
            discoveries += bank.stats.discoveries.get() + bank.stats.evict_discoveries.get();
        }
        self.timeline.push(TimelineSample {
            cycle: now.get(),
            dir_occupancy,
            ops: self.cores.ops_done.iter().sum(),
            silent_evictions: silent,
            invalidating_evictions: inval,
            discoveries,
        });
    }

    /// Sends a message and returns its arrival, enforcing per-channel FIFO
    /// in *program* order (the order calls are made), which is the causal
    /// order of the simulation.
    fn deliver(
        &mut self,
        src: NodeId,
        dst: NodeId,
        flits: u32,
        class: &'static str,
        t: Cycle,
    ) -> Cycle {
        let raw = self.net.send(src, dst, flits, class, t);
        let slot = &mut self.chan_last[src.index() * self.nodes + dst.index()];
        let arrival = raw.max(*slot + 1);
        *slot = arrival;
        arrival
    }

    /// [`Machine::deliver`] through the network's fault hook: the
    /// arrival may be delayed, and a duplicate delivery time may come
    /// back. Both are FIFO-clamped on the channel, duplicate after the
    /// original. Without a threaded fault plan this is exactly
    /// [`Machine::deliver`].
    fn deliver_faulty(
        &mut self,
        src: NodeId,
        dst: NodeId,
        flits: u32,
        class: &'static str,
        t: Cycle,
    ) -> (Cycle, Option<Cycle>) {
        if self.faults.is_none() {
            return (self.deliver(src, dst, flits, class, t), None);
        }
        let mut out = self.net.send_faulty(src, dst, flits, class, t);
        // Burst-scheduled NoC faults inject here (the legacy single-class
        // path injects inside the network and never has bursts, so the
        // two modes cannot double-fire on one message).
        if let Some(plan) = self.faults.as_mut() {
            if plan.config().has_bursts() {
                if plan.roll_burst_at(FaultClass::NocDelay, t.get()) {
                    let extra = plan.config().delay_cycles;
                    out.arrival += extra;
                    plan.record_injection(FaultClass::NocDelay);
                }
                if out.duplicate.is_none() && plan.roll_burst_at(FaultClass::NocDuplicate, t.get())
                {
                    out.duplicate = Some(out.arrival + 1);
                    plan.record_injection(FaultClass::NocDuplicate);
                }
            }
        }
        let chan = src.index() * self.nodes + dst.index();
        let arrival = {
            let slot = &mut self.chan_last[chan];
            let arrival = out.arrival.max(*slot + 1);
            *slot = arrival;
            arrival
        };
        let duplicate = out.duplicate.map(|raw| {
            let slot = &mut self.chan_last[chan];
            let a = raw.max(*slot + 1);
            *slot = a;
            a
        });
        (arrival, duplicate)
    }

    /// Parks `msg` in the arena and schedules its handle for `at`.
    fn push_msg(&mut self, at: Cycle, msg: BankMsg) {
        let r = self.msgs.alloc(msg);
        self.queue.push(at, QueuedEvent::Msg(r));
    }

    /// Resolves a popped queue payload into the full event, consuming
    /// (and freeing) the arena slot of a message handle.
    fn resolve(&mut self, queued: QueuedEvent) -> Event {
        match queued {
            QueuedEvent::Issue(core) => Event::Issue(core),
            QueuedEvent::Msg(r) => Event::BankMsg(
                self.msgs
                    .take(r)
                    // lint: allow(expect) — every handle is queued exactly once and taken exactly once at pop time; a stale handle here is a sim-core bug.
                    .expect("queued message handle resolves"),
            ),
        }
    }

    /// The per-block transaction-serialization window (all banks; a
    /// block is only ever held at its home, so one map cannot collide).
    fn block_busy_until(&self, block: BlockAddr) -> Cycle {
        self.block_busy.get(&block).copied().unwrap_or(Cycle::ZERO)
    }

    /// Extends `block`'s busy window to at least `until`.
    fn hold_block(&mut self, block: BlockAddr, until: Cycle) {
        let slot = self.block_busy.entry(block).or_insert(Cycle::ZERO);
        *slot = (*slot).max(until);
    }

    // ---- fault injection, watchdog, quiesce ----

    /// Records one entry in the diagnostic event trail (faulty runs
    /// only). Stores the raw `(Cycle, Event)` pair — rendering to text
    /// is deferred to [`Machine::diag_snapshot`], so this is
    /// allocation-free.
    fn note_event(&mut self, now: Cycle, event: &Event) {
        self.recent_events.push(now, *event);
    }

    // ---- transition witnessing (campaign coverage) ----

    /// Applies `probe` at `target`, first recording the
    /// (private state × probe) transition when witnessing is on. The
    /// state is read *before* the probe lands — the row label the
    /// protocol model's private-probe matrix uses.
    fn probe_with_witness(
        &mut self,
        target: CoreId,
        block: BlockAddr,
        probe: Probe,
    ) -> ProbeAnswer {
        if self.witness.is_some() {
            let state = self.privs[target.index()].state_of(block);
            if let Some(w) = self.witness.as_mut() {
                w.probe[state_idx(state) * N_PROBES + probe_idx(probe)] += 1;
            }
        }
        self.privs[target.index()].apply_probe(block, probe)
    }

    /// Records a core-local (private state × Read/Write) access.
    fn witness_local(&mut self, core: CoreId, op: MemOp) {
        if self.witness.is_some() {
            let state = self.privs[core.index()].state_of(op.block);
            if let Some(w) = self.witness.as_mut() {
                w.local[state_idx(state) * N_OPS + op_idx(op.kind)] += 1;
            }
        }
    }

    /// Records a home-side (request × directory view) decision.
    fn witness_home(&mut self, req: Request, view: &DirView) {
        if let Some(w) = self.witness.as_mut() {
            w.home[request_idx(req) * N_VIEWS + view_idx(view)] += 1;
        }
    }

    /// `true` when the armed watchdog finds an unfinished core that has
    /// retired nothing within the bound; records the structured stall
    /// diagnosis and quiesces.
    fn watchdog_tripped(&mut self, now: Cycle) -> bool {
        let Some(bound) = self.faults.as_ref().and_then(|p| p.watchdog_bound()) else {
            return false;
        };
        // Fast path: `retire_floor` is a lower bound on every unfinished
        // core's last-retire cycle, so while `now` is within the bound
        // of the floor no core can possibly trip — skip the O(cores)
        // scan entirely (the common case on healthy ticks).
        if now.saturating_since(self.retire_floor) <= bound {
            return false;
        }
        let mut stalled = None;
        let mut floor = Cycle::MAX;
        for i in 0..self.cores.len() {
            if self.cores.finish[i].is_none() {
                let retired = self.cores.last_retire[i];
                let gap = now.saturating_since(retired);
                if gap > bound {
                    stalled = Some((i, gap));
                    break;
                }
                floor = floor.min(retired);
            }
        }
        let Some((core, gap)) = stalled else {
            // Full scan found nothing: the exact floor (Cycle::MAX when
            // every core finished) re-arms the fast path.
            self.retire_floor = floor;
            return false;
        };
        self.values.report(format!(
            "Stall: core{core} retired nothing for {gap} cycles (watchdog bound {bound}) at {now}"
        ));
        if let Some(plan) = self.faults.as_mut() {
            plan.record_detection(Detector::Watchdog);
        }
        self.quiesce(now, "watchdog_stall");
        true
    }

    /// Rolls the injection dice for `class` under the threaded plan,
    /// arming through the legacy class or any burst window hot at `now`.
    fn roll_fault(&mut self, class: FaultClass, now: Cycle) -> bool {
        self.faults
            .as_mut()
            .is_some_and(|p| p.roll_at(class, now.get()))
    }

    /// Records an invariant-checker detection and quiesces (faulty runs
    /// only).
    fn detect_invariant(&mut self, now: Cycle, reason: &str) {
        if let Some(plan) = self.faults.as_mut() {
            plan.record_detection(Detector::Invariant);
        }
        self.quiesce(now, reason);
    }

    /// Stops the run gracefully: marks the summary, renders the
    /// diagnostic snapshot, and drains the event queue so the run loop
    /// exits instead of panicking mid-handler or spinning forever.
    fn quiesce(&mut self, now: Cycle, reason: &str) {
        if self.quiesced {
            return;
        }
        self.quiesced = true;
        if let Some(plan) = self.faults.as_mut() {
            plan.summary.quiesced = 1;
        }
        self.snapshot = Some(self.diag_snapshot(now, reason).render());
        self.queue.clear();
        self.msgs.clear();
    }

    /// Attempts state-corruption injections (sharer flip, stash clear,
    /// spurious stash), one roll per armed class in taxonomy order.
    /// Returns `true` when any damage was applied — targeted corruptions
    /// may find no victim this transaction, in which case nothing is
    /// recorded and nothing changed.
    fn inject_state_fault(&mut self, now: Cycle) -> bool {
        const CORRUPTIONS: [FaultClass; 3] = [
            FaultClass::SharerFlip,
            FaultClass::StashClear,
            FaultClass::StashSpurious,
        ];
        let Some(plan) = self.faults.as_ref() else {
            return false;
        };
        // Roll only armed classes, so single-class runs consume exactly
        // the RNG draws they historically did.
        let armed: Vec<FaultClass> = CORRUPTIONS
            .into_iter()
            .filter(|&c| plan.armed_at(c, now.get()))
            .collect();
        let mut any = false;
        for class in armed {
            if !self.roll_fault(class, now) {
                continue;
            }
            let applied = match class {
                FaultClass::SharerFlip => self.corrupt_sharer(),
                FaultClass::StashClear => self.corrupt_stash_clear(),
                FaultClass::StashSpurious => self.corrupt_stash_spurious(),
                _ => false,
            };
            if applied {
                if let Some(plan) = self.faults.as_mut() {
                    plan.record_injection(class);
                }
                any = true;
            }
        }
        any
    }

    /// Drops a live holder from a directory view: an exclusive owner's
    /// entry vanishes, or a sharer bit flips off. Targets only holders
    /// that really hold a valid copy, so the damage is always
    /// detectable.
    fn corrupt_sharer(&mut self) -> bool {
        for b in 0..self.banks.len() {
            for (block, view) in self.banks[b].dir_entries() {
                for victim in view.holders() {
                    if self.privs[victim.index()].state_of(block) == PrivState::Invalid {
                        continue;
                    }
                    match &view {
                        DirView::Untracked => continue,
                        DirView::Exclusive(_) => self.banks[b].dir_remove(block),
                        DirView::Shared(set) => {
                            let mut survivors = set.clone();
                            survivors.remove(victim);
                            if survivors.is_empty() {
                                self.banks[b].dir_remove(block);
                            } else {
                                let _ =
                                    self.banks[b].dir_install(block, DirView::Shared(survivors));
                            }
                        }
                    }
                    return true;
                }
            }
        }
        false
    }

    /// Clears a stash bit that covers a real hidden copy, making the
    /// copy invisible to discovery (an I1/I2 coverage violation).
    fn corrupt_stash_clear(&mut self) -> bool {
        for b in 0..self.banks.len() {
            for (block, line) in self.banks[b].llc_entries() {
                if !line.stash || self.banks[b].dir_view(block) != DirView::Untracked {
                    continue;
                }
                let hidden_copy_exists = self
                    .privs
                    .iter()
                    .any(|p| p.state_of(block) != PrivState::Invalid);
                if hidden_copy_exists {
                    self.banks[b].set_stash_bit(block, false);
                    return true;
                }
            }
        }
        false
    }

    /// Sets a stash bit on a line the directory still tracks (a stash
    /// discipline violation).
    fn corrupt_stash_spurious(&mut self) -> bool {
        for b in 0..self.banks.len() {
            for (block, line) in self.banks[b].llc_entries() {
                if line.stash || self.banks[b].dir_view(block) == DirView::Untracked {
                    continue;
                }
                self.banks[b].set_stash_bit(block, true);
                return true;
            }
        }
        false
    }

    /// Renders the quiesce-time diagnostic snapshot: per-core pipeline
    /// and cache state, per-bank directory view, in-flight messages and
    /// the recent event trail.
    fn diag_snapshot(&self, now: Cycle, reason: &str) -> Value {
        let cores = (0..self.cores.len())
            .map(|i| {
                let hier = &self.privs[i];
                let l2 = hier
                    .l2_entries()
                    .into_iter()
                    .map(|(block, line)| {
                        Value::object(vec![
                            ("block".into(), block.get().into()),
                            ("state".into(), format!("{:?}", line.state).into()),
                            ("version".into(), line.version.into()),
                        ])
                    })
                    .collect();
                let l1 = hier
                    .l1_blocks()
                    .into_iter()
                    .map(|b| b.get().into())
                    .collect();
                let wbs = hier
                    .wb_entries()
                    .into_iter()
                    .map(|(block, entry)| {
                        Value::object(vec![
                            ("block".into(), block.get().into()),
                            ("version".into(), entry.version.into()),
                        ])
                    })
                    .collect();
                Value::object(vec![
                    ("core".into(), i.into()),
                    ("pc".into(), self.cores.pc[i].into()),
                    ("trace_len".into(), self.cores.trace[i].len().into()),
                    (
                        "pending".into(),
                        self.cores.pending[i].map_or(Value::Null, |op| format!("{op:?}").into()),
                    ),
                    ("ops_done".into(), self.cores.ops_done[i].into()),
                    (
                        "last_retire".into(),
                        self.cores
                            .last_retire
                            .get(i)
                            .copied()
                            .unwrap_or(Cycle::ZERO)
                            .get()
                            .into(),
                    ),
                    ("finished".into(), self.cores.finish[i].is_some().into()),
                    ("l1_blocks".into(), Value::array(l1)),
                    ("l2".into(), Value::array(l2)),
                    ("writebacks".into(), Value::array(wbs)),
                ])
            })
            .collect();
        let banks = self
            .banks
            .iter()
            .map(|bank| {
                let dir = bank
                    .dir_entries()
                    .into_iter()
                    .map(|(block, view)| {
                        Value::object(vec![
                            ("block".into(), block.get().into()),
                            ("view".into(), format!("{view:?}").into()),
                        ])
                    })
                    .collect();
                let stash: Vec<Value> = bank
                    .llc_entries()
                    .into_iter()
                    .filter(|(_, line)| line.stash)
                    .map(|(block, _)| block.get().into())
                    .collect();
                Value::object(vec![
                    ("bank".into(), bank.id().index().into()),
                    ("dir".into(), Value::array(dir)),
                    ("stash_bits".into(), Value::array(stash)),
                    ("llc_lines".into(), bank.llc_entries().len().into()),
                ])
            })
            .collect();
        // Lazily reconstruct the in-flight view from queue handles (the
        // queue stores arena handles on the hot path; only a snapshot —
        // quiesce, stall — pays to resolve and sort them into pop order).
        // A read-only resolver: snapshots must not consume arena slots.
        let peek = |queued: QueuedEvent| -> Event {
            match queued {
                QueuedEvent::Issue(core) => Event::Issue(core),
                QueuedEvent::Msg(r) => Event::BankMsg(
                    *self
                        .msgs
                        .get(r)
                        // lint: allow(expect) — a queued handle stays live until the run loop takes it; the queue and arena are cleared together at quiesce.
                        .expect("queued message handle resolves"),
                ),
            }
        };
        let mut pending: Vec<(Cycle, u64, Event)> = self
            .queue
            .iter()
            .map(|(t, seq, &queued)| (t, seq, peek(queued)))
            .collect();
        pending.sort_by_key(|&(t, seq, _)| (t, seq));
        // The unprocessed remainder of the cycle batch being swept comes
        // first: those events were drained from the queue but not yet
        // handled, and every same-cycle event still *in* the queue was
        // pushed later (larger seq), so remainder-then-queue is exactly
        // the one-at-a-time pop order.
        let in_flight = self.batch[self.batch_pos..]
            .iter()
            .map(|&queued| (now, peek(queued)))
            .chain(pending.into_iter().map(|(t, _, event)| (t, event)))
            .map(|(t, event)| {
                Value::object(vec![
                    ("at".into(), t.get().into()),
                    ("event".into(), format!("{event:?}").into()),
                ])
            })
            .collect();
        // The trail is stored as raw values; format the exact same
        // "{cycle}: {event:?}" lines the snapshot schema always carried,
        // but only here — never on the hot path.
        let recent = self
            .recent_events
            .iter()
            .map(|(at, event)| Value::String(format!("{at}: {event:?}")))
            .collect();
        let mut fields = vec![
            ("schema".into(), "stashdir/diag-snapshot/v1".into()),
            ("reason".into(), reason.into()),
            ("cycle".into(), now.get().into()),
            ("transactions".into(), self.transactions.into()),
            ("cores".into(), Value::array(cores)),
            ("banks".into(), Value::array(banks)),
            ("in_flight".into(), Value::array(in_flight)),
            ("recent_events".into(), Value::array(recent)),
        ];
        // The active fault schedule: which classes were enabled and
        // where each burst window stood at snapshot time, so a
        // multi-fault stall is attributable without a rerun.
        if let Some(plan) = self.faults.as_ref() {
            let cfg = plan.config();
            let classes = cfg
                .enabled_classes()
                .into_iter()
                .map(|c| Value::String(c.label().to_string()))
                .collect();
            let bursts = cfg
                .bursts
                .iter()
                .map(|b| {
                    Value::object(vec![
                        ("class".into(), b.class.label().into()),
                        ("onset".into(), b.onset.into()),
                        ("len".into(), b.len.into()),
                        ("gap".into(), b.gap.into()),
                        ("rate".into(), u64::from(b.rate_per_mille).into()),
                        ("phase".into(), b.phase_at(now.get()).into()),
                    ])
                })
                .collect();
            fields.push((
                "fault".into(),
                Value::object(vec![
                    ("classes".into(), Value::array(classes)),
                    ("bursts".into(), Value::array(bursts)),
                    ("injected".into(), plan.summary.injected_total().into()),
                ]),
            ));
        }
        Value::object(fields)
    }

    // ---- core side ----

    fn handle_issue(&mut self, core: CoreId, now: Cycle) {
        // Forward progress is observed at event-pop time: an Issue event
        // means the core's previous operation retired. Marking it at the
        // (future) completion's *schedule* time would blind the watchdog
        // to the wait itself.
        let i = core.index();
        self.cores.last_retire[i] = now;
        debug_assert!(
            self.cores.pending[i].is_none(),
            "{core} issued while blocked"
        );
        let Some(&op) = self.cores.trace[i].get(self.cores.pc[i]) else {
            self.cores.finish[i] = Some(now);
            return;
        };
        self.cores.pc[i] += 1;
        let t = now + op.think as u64;
        self.witness_local(core, op);
        match self.privs[i].access(op) {
            AccessResult::Hit {
                latency, version, ..
            } => {
                match op.kind {
                    MemOpKind::Read => self.values.on_read(core, op.block, version),
                    MemOpKind::Write => {
                        let v = self.values.on_write(core, op.block);
                        self.privs[i].record_write(op.block, v);
                    }
                }
                self.cores.ops_done[i] += 1;
                self.queue.push(t + latency, QueuedEvent::Issue(core));
            }
            AccessResult::Miss { request, latency } => {
                self.cores.pending[i] = Some(op);
                self.cores.issue_time[i] = t + latency;
                let home = self.home(op.block);
                let (arrival, duplicate) = self.deliver_faulty(
                    core.node(),
                    home.node(),
                    request.flits(),
                    request.class(),
                    t + latency,
                );
                let msg = BankMsg {
                    from: core,
                    req: request,
                    block: op.block,
                    version: 0,
                };
                self.push_msg(arrival, msg);
                if let Some(dup_arrival) = duplicate {
                    // The fault hook duplicated the request in flight;
                    // the copy arrives later as a spurious demand.
                    self.push_msg(dup_arrival, msg);
                }
            }
        }
    }

    // ---- home side ----

    fn handle_bank_msg(&mut self, msg: BankMsg, now: Cycle) {
        if msg.req.is_put() {
            self.process_put(msg, now);
        } else {
            self.process_demand(msg, now);
        }
        if self.quiesced {
            return;
        }
        self.transactions += 1;
        // State-corruption faults land between transactions — the same
        // quiesced boundary the checker runs on — and force an immediate
        // check so every applied corruption meets its detector.
        let injected = self.faults.is_some() && self.inject_state_fault(now);
        let periodic = self.cfg.check_interval > 0
            && self.transactions.is_multiple_of(self.cfg.check_interval);
        if injected || periodic {
            let problems = crate::checker::check(self, false);
            let found = !problems.is_empty();
            for p in problems {
                self.values.report(p);
            }
            if found && self.faults.is_some() {
                self.detect_invariant(now, "invariant_violation");
            }
        }
    }

    /// Charges the home↔directory-bank indirection when `block`'s entry
    /// lives away from its home (opaque sharding only): a control round
    /// trip with directory-bank serialization. Returns when the reply is
    /// back at the home — exactly `t` for home-placed entries, so every
    /// other organization is untouched.
    fn consult_dir_bank(&mut self, bank_id: BankId, dir_bank: BankId, t: Cycle) -> Cycle {
        if dir_bank == bank_id {
            if self.cfg.dir.is_opaque() {
                self.banks[dir_bank.index()]
                    .backend
                    .dir_bank_accesses
                    .incr();
            }
            return t;
        }
        let req_arr = self.deliver(bank_id.node(), dir_bank.node(), CONTROL_FLITS, "dir", t);
        let free = &mut self.bank_free[dir_bank.index()];
        let start = req_arr.max(*free);
        *free = start + self.cfg.bank_occupancy;
        self.banks[dir_bank.index()]
            .backend
            .dir_bank_accesses
            .incr();
        let rep_arr = self.deliver(
            dir_bank.node(),
            bank_id.node(),
            CONTROL_FLITS,
            "dir",
            start + self.cfg.dir_latency,
        );
        self.banks[bank_id.index()].backend.indirection_hops.add(2);
        rep_arr
    }

    fn process_put(&mut self, msg: BankMsg, now: Cycle) {
        let bank_id = self.home(msg.block);
        let free = self.bank_free[bank_id.index()];
        let mut t = now.max(free).max(self.block_busy_until(msg.block)) + self.cfg.dir_latency;
        self.bank_free[bank_id.index()] = t.max(free) + self.cfg.bank_occupancy;
        self.hold_block(msg.block, t);

        let dir_bank = self.dir_bank_of(msg.block);
        t = self.consult_dir_bank(bank_id, dir_bank, t);
        let view = self.banks[dir_bank.index()].dir_view(msg.block);
        let wb = self.privs[msg.from.index()].wb_take(msg.block);
        self.witness_home(msg.req, &view);
        match decide_put(msg.req, msg.from, &view) {
            PutOutcome::Accept {
                new_view,
                writeback,
            } => {
                if writeback {
                    let line = self.banks[bank_id.index()]
                        .llc_peek_mut(msg.block)
                        // lint: allow(expect) — protocol invariant; a miss here is a coherence bug the checker must surface, not a recoverable state.
                        .expect("LLC inclusion: tracked block resident");
                    line.version = msg.version;
                    line.dirty = true;
                }
                let bank = &mut self.banks[dir_bank.index()];
                match new_view {
                    DirView::Untracked => bank.dir_remove(msg.block),
                    v => {
                        let action = bank.dir_install(msg.block, v);
                        debug_assert!(action.is_none(), "shrinking update never evicts");
                    }
                }
            }
            PutOutcome::Stale => {
                let bank = &mut self.banks[bank_id.index()];
                let unclaimed = wb.is_some_and(|e| !e.claimed);
                if view == DirView::Untracked && bank.stash_bit(msg.block) && unclaimed {
                    // The hidden owner's own eviction: nothing intervened
                    // since the entry was stashed (the parked data was
                    // never claimed), so the put is authoritative. Accept
                    // the data and clear the stash bit — the hidden copy
                    // is gone.
                    if msg.req == Request::PutM {
                        let line = bank
                            .llc_peek_mut(msg.block)
                            // lint: allow(expect) — protocol invariant; a miss here is a coherence bug the checker must surface, not a recoverable state.
                            .expect("stash bit lives on a resident line");
                        line.version = msg.version;
                        line.dirty = true;
                        bank.stats.hidden_writebacks.incr();
                    }
                    bank.set_stash_bit(msg.block, false);
                } else {
                    bank.stats.stale_puts.incr();
                }
            }
        }
        // Put acknowledgement (traffic accounting; the parked entry was
        // already released in program order above).
        let bank_node = bank_id.node();
        self.deliver(bank_node, msg.from.node(), CONTROL_FLITS, "ack", t);
    }

    fn process_demand(&mut self, msg: BankMsg, now: Cycle) {
        let bank_id = self.home(msg.block);
        let requester = msg.from;
        let block = msg.block;

        // I8 (runtime, faulty runs): every demand must match a pending
        // operation at its requester. A duplicated or spurious message
        // fails this; detect and quiesce instead of corrupting state or
        // panicking mid-handler.
        if self.faults.is_some() {
            let matches_pending =
                self.cores.pending[requester.index()].is_some_and(|op| op.block == block);
            if !matches_pending {
                self.values.report(format!(
                    "I8: {requester} has no pending op for {block} yet its {:?} reached the home (duplicated or spurious message)",
                    msg.req
                ));
                self.detect_invariant(now, "spurious_demand");
                return;
            }
        }

        // StuckTransient: the per-block busy window sticks far in the
        // future, so this transaction cannot serialize in bounded time —
        // the requester's completion lands past the watchdog bound.
        if self.roll_fault(FaultClass::StuckTransient, now) {
            let stuck = self.faults.as_ref().map_or(0, |p| p.config().stuck_cycles);
            self.hold_block(block, now + stuck);
            if let Some(plan) = self.faults.as_mut() {
                plan.record_injection(FaultClass::StuckTransient);
            }
        }

        // Serialize: per-block window plus bank pipeline occupancy.
        let free = self.bank_free[bank_id.index()];
        let start = now.max(free).max(self.block_busy_until(block));
        self.bank_free[bank_id.index()] = start + self.cfg.bank_occupancy;
        let mut t = start + self.cfg.dir_latency;

        // DLS keeps no directory entries; its demand path is different
        // enough (remote shared accesses, forever-shared reclassification)
        // to live apart.
        if self.cfg.dir.is_dls() {
            self.process_demand_dls(msg, t);
            return;
        }

        // Opaque sharding: the entry lives at the opaque bank, an
        // indirection hop away from the home for most blocks.
        let dir_bank = self.dir_bank_of(block);
        t = self.consult_dir_bank(bank_id, dir_bank, t);
        let mut view = self.banks[dir_bank.index()].dir_view(block);

        // Stash discovery: directory miss + stash bit set.
        if self.cfg.dir.uses_stash()
            && needs_discovery(&view, self.banks[bank_id.index()].stash_bit(block))
        {
            let intent = discovery_intent(msg.req);
            // GetS/GetM requesters cannot be the hidden owner (they hold
            // nothing), but an Upgrade requester holds an S copy that may
            // itself be the hidden one (a silently dropped single-sharer
            // entry) — it must be probed too, so the write invalidates it
            // and refetches cleanly.
            let exclude = (msg.req != Request::Upgrade).then_some(requester);
            let (hit, t_done) = self.run_discovery(bank_id, block, intent, exclude, t);
            self.discovery_latency.record(t_done - t);
            t = t_done;
            let bank = &mut self.banks[bank_id.index()];
            bank.set_stash_bit(block, false);
            bank.stats.discoveries.incr();
            match hit {
                Some(found) => {
                    bank.stats.discoveries_found.incr();
                    if found.with_data && found.dirty {
                        let line = bank
                            .llc_peek_mut(block)
                            // lint: allow(expect) — protocol invariant; a miss here is a coherence bug the checker must surface, not a recoverable state.
                            .expect("stash bit lives on a resident line");
                        line.version = found.version;
                        line.dirty = true;
                    }
                    if intent == DiscoveryIntent::Share && found.retained {
                        // Re-learned: the hidden holder keeps a Shared copy.
                        view = DirView::Shared(stashdir_common::SharerSet::singleton(
                            self.cfg.cores,
                            found.owner,
                        ));
                    }
                }
                None => bank.stats.discoveries_stale.incr(),
            }
        }

        self.witness_home(msg.req, &view);
        let mut outcome = decide(msg.req, requester, &view, self.cfg.cores);
        // An overflowed limited-pointer set claims *every* core, so the
        // home cannot see that this upgrader's copy was invalidated while
        // its request sat behind other transactions on the block (precise
        // formats prune the requester from the set, and `decide` takes
        // the needs-data path). Real limited-pointer protocols catch the
        // crossed Inv at the requester and reissue the upgrade as a full
        // GetM; model the outcome of that retry by shipping data with
        // the grant.
        if msg.req == Request::Upgrade
            && !outcome.needs_data
            && self.privs[requester.index()].state_of(block) == PrivState::Invalid
        {
            outcome.needs_data = true;
        }

        // Probe phase: forwards and invalidations.
        let mut t_acks = t;
        let mut data_at_req: Option<(Cycle, u64)> = None;
        let mut owner_retained = false;
        let mut had_fwdgets = false;
        if !outcome.probes.is_empty() {
            self.inv_round_size.record(outcome.probes.len() as u64);
        }
        for &(target, probe) in &outcome.probes {
            let bank_node = bank_id.node();
            let probe_arr = self.deliver(bank_node, target.node(), probe.flits(), probe.class(), t);
            let ans = self.probe_with_witness(target, block, probe);
            let rep_arr = self.deliver(
                target.node(),
                bank_node,
                ans.reply.flits(),
                ans.reply.class(),
                probe_arr,
            );
            t_acks = t_acks.max(rep_arr);
            if ans.reply.has_data() {
                if ans.reply == ProbeReply::AckDirtyData {
                    // Owner's dirty data is written through to the LLC.
                    let line = self.banks[bank_id.index()]
                        .llc_peek_mut(block)
                        // lint: allow(expect) — protocol invariant; a miss here is a coherence bug the checker must surface, not a recoverable state.
                        .expect("LLC inclusion: tracked block resident");
                    line.version = ans.version;
                    line.dirty = true;
                }
                // Three-hop: data goes straight to the requester too.
                let data_arr = self.deliver(
                    target.node(),
                    requester.node(),
                    DATA_FLITS,
                    "data",
                    probe_arr,
                );
                data_at_req = Some((data_arr, ans.version));
            }
            if matches!(probe, Probe::FwdGetS) {
                had_fwdgets = true;
                owner_retained = ans.retained;
            }
        }

        // Data phase: LLC (or DRAM) when no owner supplied data.
        if outcome.needs_data && data_at_req.is_none() {
            let was_resident = self.banks[bank_id.index()].llc_peek(block).is_some();
            let (ready, t_protocol) = self.ensure_llc_resident(bank_id, block, t);
            t_acks = t_acks.max(t_protocol);
            let version = self.banks[bank_id.index()]
                .llc_access(block)
                // lint: allow(expect) — protocol invariant; a miss here is a coherence bug the checker must surface, not a recoverable state.
                .expect("just ensured resident")
                .version;
            if was_resident {
                self.banks[bank_id.index()].llc_stats.hits.incr();
            }
            let arr = self.deliver(
                bank_id.node(),
                requester.node(),
                DATA_FLITS,
                "data",
                ready.max(t_acks),
            );
            data_at_req = Some((arr, version));
        } else if self.banks[bank_id.index()].llc_peek(block).is_some() {
            // Owner-supplied data or data-less upgrade: the LLC line is
            // touched (writeback / tag check) but supplies nothing.
            self.banks[bank_id.index()].llc_access(block);
            self.banks[bank_id.index()].llc_stats.hits.incr();
        }

        // Directory update, reconciled against what the probes learned.
        let final_view =
            reconcile_view(outcome.new_view, requester, had_fwdgets && !owner_retained);
        let t_evict = match final_view {
            DirView::Untracked => {
                self.banks[dir_bank.index()].dir_remove(block);
                t
            }
            v => {
                let action = self.banks[dir_bank.index()].dir_install(block, v);
                self.enact_dir_eviction(dir_bank, action, t)
            }
        };
        t_acks = t_acks.max(t_evict);
        debug_assert!(
            !self.banks[bank_id.index()].stash_bit(block),
            "tracked blocks never keep a stash bit"
        );

        // Completion at the requester.
        let (grant_arrival, data_version) = match data_at_req {
            Some((arr, v)) => (arr.max(t_acks), v),
            None => {
                // Data-less upgrade: a control grant once acks collected.
                let arr = self.deliver(
                    bank_id.node(),
                    requester.node(),
                    CONTROL_FLITS,
                    "ack",
                    t_acks,
                );
                (arr, 0)
            }
        };
        let fill_done = grant_arrival + self.cfg.l2.latency;
        // DropGrant: the grant/fill vanishes in flight after the home
        // finished its side; the requester keeps its pending operation
        // forever (I6 at final check, or the watchdog on long runs).
        if self.roll_fault(FaultClass::DropGrant, fill_done) {
            if let Some(plan) = self.faults.as_mut() {
                plan.record_injection(FaultClass::DropGrant);
            }
            self.hold_block(block, fill_done);
            return;
        }
        self.complete_demand(
            requester,
            msg.req,
            outcome.grant,
            outcome.needs_data,
            data_version,
            fill_done,
        );
        self.hold_block(block, fill_done);
        self.miss_latency
            .record(fill_done.saturating_since(self.cores.issue_time[requester.index()]));
        self.queue.push(fill_done, QueuedEvent::Issue(requester));
    }

    /// DLS demand handling (directoryless). The first toucher of a block
    /// owns it (an unbounded owner-map entry, zero directory SRAM) and
    /// fills its private cache; the moment a *second* core touches the
    /// block, the owner's copy is recalled and the block is reclassified
    /// shared **forever** — every later access is served at the home LLC
    /// with no private fill. That remote-access stream is the cost DLS
    /// trades its directory storage for, and what E18 measures.
    ///
    /// `t` already includes the home-bank serialization and the
    /// classification lookup (page-table metadata, charged like a
    /// directory access).
    fn process_demand_dls(&mut self, msg: BankMsg, t: Cycle) {
        let bank_id = self.home(msg.block);
        let requester = msg.from;
        let block = msg.block;
        let mut t = t;

        // Second-core touch on a private block: recall the owner's copy,
        // then fall through to the shared (remote) path.
        if !self.dls_shared.contains(&block) {
            if let DirView::Exclusive(owner) = self.banks[bank_id.index()].dir_view(block) {
                if owner != requester {
                    let probe = Probe::Recall;
                    let bank_node = bank_id.node();
                    let probe_arr =
                        self.deliver(bank_node, owner.node(), probe.flits(), probe.class(), t);
                    let ans = self.probe_with_witness(owner, block, probe);
                    let rep_arr = self.deliver(
                        owner.node(),
                        bank_node,
                        ans.reply.flits(),
                        ans.reply.class(),
                        probe_arr,
                    );
                    t = t.max(rep_arr);
                    if ans.reply == ProbeReply::AckDirtyData {
                        let line = self.banks[bank_id.index()]
                            .llc_peek_mut(block)
                            // lint: allow(expect) — protocol invariant; a miss here is a coherence bug the checker must surface, not a recoverable state.
                            .expect("LLC inclusion: tracked block resident");
                        line.version = ans.version;
                        line.dirty = true;
                    }
                    self.banks[bank_id.index()].dir_remove(block);
                    self.banks[bank_id.index()]
                        .backend
                        .dls_reclassifications
                        .incr();
                    self.dls_shared.insert(block);
                }
            }
        }

        let was_resident = self.banks[bank_id.index()].llc_peek(block).is_some();
        let (ready, _t_protocol) = self.ensure_llc_resident(bank_id, block, t);
        if was_resident {
            self.banks[bank_id.index()].llc_stats.hits.incr();
        }
        let version = self.banks[bank_id.index()]
            .llc_access(block)
            // lint: allow(expect) — protocol invariant; a miss here is a coherence bug the checker must surface, not a recoverable state.
            .expect("just ensured resident")
            .version;

        if self.dls_shared.contains(&block) {
            // Remote access: the op completes at the home LLC. Reads ship
            // the data back; writes update the line in place and return a
            // control ack.
            self.banks[bank_id.index()]
                .backend
                .remote_llc_accesses
                .incr();
            let op = self.cores.pending[requester.index()]
                .take()
                // lint: allow(expect) — protocol invariant; a miss here is a coherence bug the checker must surface, not a recoverable state.
                .expect("demand completion matches a pending op");
            debug_assert_eq!(op.block, block);
            let done = match op.kind {
                MemOpKind::Read => {
                    self.values.on_read(requester, block, version);
                    self.deliver(bank_id.node(), requester.node(), DATA_FLITS, "data", ready)
                }
                MemOpKind::Write => {
                    let v = self.values.on_write(requester, block);
                    let line = self.banks[bank_id.index()]
                        .llc_peek_mut(block)
                        // lint: allow(expect) — protocol invariant; a miss here is a coherence bug the checker must surface, not a recoverable state.
                        .expect("just ensured resident");
                    line.version = v;
                    line.dirty = true;
                    self.deliver(
                        bank_id.node(),
                        requester.node(),
                        CONTROL_FLITS,
                        "ack",
                        ready,
                    )
                }
            };
            self.cores.ops_done[requester.index()] += 1;
            self.hold_block(block, done);
            self.miss_latency
                .record(done.saturating_since(self.cores.issue_time[requester.index()]));
            self.queue.push(done, QueuedEvent::Issue(requester));
            return;
        }

        // Private path (first toucher, or the owner refetching after its
        // own eviction): grant the whole block exclusively.
        let action = self.banks[bank_id.index()].dir_install(block, DirView::Exclusive(requester));
        debug_assert!(action.is_none(), "the DLS owner map never evicts");
        let grant = if msg.req == Request::GetS {
            Grant::Exclusive
        } else {
            Grant::Modified
        };
        let arr = self.deliver(bank_id.node(), requester.node(), DATA_FLITS, "data", ready);
        let fill_done = arr + self.cfg.l2.latency;
        self.complete_demand(requester, msg.req, grant, true, version, fill_done);
        self.hold_block(block, fill_done);
        self.miss_latency
            .record(fill_done.saturating_since(self.cores.issue_time[requester.index()]));
        self.queue.push(fill_done, QueuedEvent::Issue(requester));
    }

    /// Applies the grant at the requester: fill (or permission upgrade),
    /// value tracking, eviction side effects.
    fn complete_demand(
        &mut self,
        requester: CoreId,
        req: Request,
        grant: Grant,
        needs_data: bool,
        data_version: u64,
        fill_done: Cycle,
    ) {
        let op = self.cores.pending[requester.index()]
            .take()
            // lint: allow(expect) — protocol invariant; a miss here is a coherence bug the checker must surface, not a recoverable state.
            .expect("demand completion matches a pending op");
        debug_assert_eq!(op.kind == MemOpKind::Write, req != Request::GetS);

        let hier = &mut self.privs[requester.index()];
        let version = if !needs_data {
            // Data-less path: the live copy gains write permission.
            hier.grant_permission(op.block)
        } else {
            let evicted = hier.fill(op.block, grant, data_version);
            if let Some(ev) = evicted {
                if let Some(put) = ev.put {
                    let home = self.home(ev.block);
                    let arrival = self.deliver(
                        requester.node(),
                        home.node(),
                        put.flits(),
                        put.class(),
                        fill_done,
                    );
                    self.push_msg(
                        arrival,
                        BankMsg {
                            from: requester,
                            req: put,
                            block: ev.block,
                            version: ev.version,
                        },
                    );
                }
            }
            data_version
        };

        if matches!(grant, Grant::Exclusive | Grant::Modified) {
            self.values.on_exclusive_grant(requester, op.block, version);
        }
        match op.kind {
            MemOpKind::Read => self.values.on_read(requester, op.block, version),
            MemOpKind::Write => {
                let v = self.values.on_write(requester, op.block);
                self.privs[requester.index()].record_write(op.block, v);
            }
        }
        self.cores.ops_done[requester.index()] += 1;
    }

    /// Guarantees `block` is LLC-resident at `bank`, fetching from DRAM
    /// and evicting an LLC victim (with its protocol side effects) if
    /// needed. Returns `(data_ready, protocol_done)`.
    fn ensure_llc_resident(
        &mut self,
        bank_id: BankId,
        block: BlockAddr,
        t: Cycle,
    ) -> (Cycle, Cycle) {
        if self.banks[bank_id.index()].llc_peek(block).is_some() {
            return (t + self.cfg.llc_bank.latency, t);
        }
        self.banks[bank_id.index()].llc_stats.misses.incr();
        let mut t_protocol = t;
        // Make room first: the victim's eviction is a protocol action.
        if let Some(victim) = self.banks[bank_id.index()].llc_victim_for(block) {
            t_protocol = self.evict_llc_line(bank_id, victim, t);
        }
        // Fetch.
        let ready = self.dram.access(block, t + self.cfg.llc_bank.latency);
        let version = self.dram_store.get(&block).copied().unwrap_or(0);
        self.banks[bank_id.index()].llc_insert(
            block,
            LlcLine {
                version,
                dirty: false,
                stash: false,
            },
        );
        (ready.max(t_protocol), t_protocol)
    }

    /// Evicts `victim` from the LLC, recalling or discovering any cached
    /// copies (inclusion), writing dirty data back to DRAM. Returns when
    /// the protocol actions complete.
    fn evict_llc_line(&mut self, bank_id: BankId, victim: BlockAddr, t: Cycle) -> Cycle {
        // The victim's entry may live at an opaque bank; consult (and
        // later clear) it there.
        let dir_bank = self.dir_bank_of(victim);
        let t = self.consult_dir_bank(bank_id, dir_bank, t);
        let view = self.banks[dir_bank.index()].dir_view(victim);
        let mut t_done = t;
        let mut line = *self.banks[bank_id.index()]
            .llc_peek(victim)
            // lint: allow(expect) — protocol invariant; a miss here is a coherence bug the checker must surface, not a recoverable state.
            .expect("victim is resident");
        match &view {
            DirView::Untracked if line.stash => {
                // A hidden copy may exist: discovery-invalidate round.
                let (hit, done) =
                    self.run_discovery(bank_id, victim, DiscoveryIntent::Invalidate, None, t);
                t_done = done;
                let bank = &mut self.banks[bank_id.index()];
                bank.stats.evict_discoveries.incr();
                if let Some(found) = hit {
                    if found.with_data && found.dirty {
                        line.version = found.version;
                        line.dirty = true;
                    }
                    bank.stats.inclusion_invalidations.incr();
                }
            }
            DirView::Untracked => {}
            tracked => {
                // Recall every copy (inclusion requires it).
                let holders = tracked.holders();
                let probe = match tracked {
                    DirView::Exclusive(_) => Probe::Recall,
                    _ => Probe::Inv,
                };
                let bank_node = bank_id.node();
                for holder in &holders {
                    let probe_arr =
                        self.deliver(bank_node, holder.node(), probe.flits(), probe.class(), t);
                    let ans = self.probe_with_witness(*holder, victim, probe);
                    let rep_arr = self.deliver(
                        holder.node(),
                        bank_node,
                        ans.reply.flits(),
                        ans.reply.class(),
                        probe_arr,
                    );
                    t_done = t_done.max(rep_arr);
                    if ans.reply == ProbeReply::AckDirtyData {
                        line.version = ans.version;
                        line.dirty = true;
                    }
                }
                self.banks[dir_bank.index()].dir_remove(victim);
                let bank = &mut self.banks[bank_id.index()];
                bank.stats.llc_recalls.incr();
                bank.stats.inclusion_invalidations.add(holders.len() as u64);
            }
        }
        let bank = &mut self.banks[bank_id.index()];
        bank.llc_remove(victim);
        bank.llc_stats.evictions.incr();
        if line.dirty {
            bank.llc_stats.writebacks.incr();
            self.dram_store.insert(victim, line.version);
            // Posted write: occupies a DRAM channel but nothing waits.
            self.dram.access(victim, t_done);
        }
        t_done
    }

    /// Enacts a directory-eviction action returned by an install: sets the
    /// stash bit for silent victims, invalidates the holders of
    /// conventional victims. Returns when the action's probes complete.
    ///
    /// `bank_id` is the bank whose slice evicted — the victim's home for
    /// every organization except opaque, whose shards evict blocks homed
    /// at *other* banks; the victim's stash bit and LLC data always live
    /// at `home(victim)`.
    fn enact_dir_eviction(&mut self, bank_id: BankId, action: EvictionAction, t: Cycle) -> Cycle {
        match action {
            EvictionAction::None => t,
            EvictionAction::Silent { block, .. } => {
                // The stash mechanism: remember a hidden copy may exist.
                let home = self.home(block);
                self.banks[home.index()].set_stash_bit(block, true);
                t
            }
            EvictionAction::Invalidate { block, view } => {
                let home = self.home(block);
                let holders = view.holders();
                let probe = match &view {
                    DirView::Exclusive(_) => Probe::Recall,
                    _ => Probe::Inv,
                };
                let bank_node = bank_id.node();
                let mut t_done = t;
                for holder in &holders {
                    let probe_arr =
                        self.deliver(bank_node, holder.node(), probe.flits(), probe.class(), t);
                    let ans = self.probe_with_witness(*holder, block, probe);
                    let rep_arr = self.deliver(
                        holder.node(),
                        bank_node,
                        ans.reply.flits(),
                        ans.reply.class(),
                        probe_arr,
                    );
                    t_done = t_done.max(rep_arr);
                    if ans.reply == ProbeReply::AckDirtyData {
                        let line = self.banks[home.index()]
                            .llc_peek_mut(block)
                            // lint: allow(expect) — protocol invariant; a miss here is a coherence bug the checker must surface, not a recoverable state.
                            .expect("LLC inclusion: tracked block resident");
                        line.version = ans.version;
                        line.dirty = true;
                    }
                }
                let bank = &mut self.banks[bank_id.index()];
                bank.stats.dir_eviction_probes.add(holders.len() as u64);
                t_done
            }
        }
    }

    /// Runs a discovery broadcast for `block`, probing every core except
    /// `exclude`. Returns the hit (at most one core holds a hidden copy)
    /// and the *conclusive* time: since a hidden copy is unique, the home
    /// proceeds as soon as the positive reply arrives, letting the
    /// trailing not-present replies drain off the critical path. Only a
    /// fully negative round (stale stash bit) must wait for every reply.
    fn run_discovery(
        &mut self,
        bank_id: BankId,
        block: BlockAddr,
        intent: DiscoveryIntent,
        exclude: Option<CoreId>,
        t: Cycle,
    ) -> (Option<DiscoveryHit>, Cycle) {
        let probe = Probe::Discovery(intent);
        let bank_node = bank_id.node();
        let mut t_all = t;
        let mut t_positive = None;
        let mut hit: Option<DiscoveryHit> = None;
        for target in discovery_targets(self.cfg.cores, exclude) {
            let probe_arr = self.deliver(bank_node, target.node(), probe.flits(), probe.class(), t);
            let ans = self.probe_with_witness(target, block, probe);
            let rep_arr = self.deliver(
                target.node(),
                bank_node,
                ans.reply.flits(),
                ans.reply.class(),
                probe_arr,
            );
            t_all = t_all.max(rep_arr);
            if ans.reply != ProbeReply::NotPresent {
                debug_assert!(hit.is_none(), "at most one hidden copy of {block}");
                t_positive = Some(rep_arr);
                hit = Some(DiscoveryHit {
                    owner: target,
                    version: ans.version,
                    dirty: ans.reply == ProbeReply::AckDirtyData,
                    retained: ans.retained,
                    with_data: ans.reply.has_data(),
                });
            }
        }
        (hit, t_positive.unwrap_or(t_all))
    }

    // ---- end of run ----

    fn final_check(&mut self) -> Vec<String> {
        let mut problems = crate::checker::check(self, true);
        problems.extend(self.values.violations().iter().cloned());
        problems
    }

    fn build_report(self, violations: Vec<String>) -> SimReport {
        let mut sink = StatSink::new();
        let cycles = self
            .cores
            .finish
            .iter()
            .map(|f| f.unwrap_or(Cycle::ZERO).get())
            .max()
            .unwrap_or(0);
        let completed_ops: u64 = self.cores.ops_done.iter().sum();

        // Every per-component section is built as its own *shard* sink
        // holding only additive counters, then folded into the report
        // with `StatSink::merge`. Derived ratios (miss rates) are
        // recomputed from the merged totals afterwards, so splitting
        // these loops across threads (the harness's sharded-run path)
        // yields byte-identical reports.
        for p in &self.privs {
            let mut shard = StatSink::new();
            p.l1_stats.export_counters("l1", &mut shard);
            p.l2_stats.export_counters("l2", &mut shard);
            sink.merge(&shard);
        }

        // Backend counters exist only for configs that can move them
        // (`has_backend_stats` is a pure function of the config), so every
        // legacy organization's report keeps its exact historical key set.
        let backend_stats = self.cfg.dir.has_backend_stats();
        let mut dir_occupancy = 0usize;
        for b in &self.banks {
            let mut shard = StatSink::new();
            b.llc_stats.export_counters("llc", &mut shard);
            b.dir().stats().export("dir", &mut shard);
            b.stats.export("bank", &mut shard);
            if backend_stats {
                b.backend.export("backend", &mut shard);
            }
            sink.merge(&shard);
            dir_occupancy += b.dir().occupancy();
        }
        if backend_stats && self.cfg.dir.is_opaque() {
            // Opaque-map load spread: max/mean of per-bank directory-shard
            // accesses (1.0 = perfectly balanced, 0.0 = no accesses).
            let per_bank: Vec<u64> = self
                .banks
                .iter()
                .map(|b| b.backend.dir_bank_accesses.get())
                .collect();
            let max = per_bank.iter().copied().max().unwrap_or(0) as f64;
            let mean = per_bank.iter().sum::<u64>() as f64 / per_bank.len().max(1) as f64;
            sink.put(
                "backend.dir_bank_imbalance",
                if mean > 0.0 { max / mean } else { 0.0 },
            );
        }

        // Counter sums are exact in f64 (well below 2^53), so these
        // ratios match the pre-shard single-pass computation bit for
        // bit.
        for prefix in ["l1", "l2", "llc"] {
            let misses = sink.get_or_zero(&format!("{prefix}.misses"));
            let total = sink.get_or_zero(&format!("{prefix}.hits")) + misses;
            let rate = if total == 0.0 { 0.0 } else { misses / total };
            sink.put(format!("{prefix}.miss_rate"), rate);
        }

        sink.put("dir.occupancy_final", dir_occupancy as f64);
        sink.put(
            "dir.storage_bits",
            self.banks
                .iter()
                .map(|b| b.dir().storage_bits(&self.cfg.cost_params()))
                .sum::<u64>() as f64,
        );

        self.net.export("noc", &mut sink);
        self.dram.export("dram", &mut sink);

        if let Some(mean) = self.miss_latency.mean() {
            sink.put("core.mean_miss_latency", mean);
        }
        if let Some(p95) = self.miss_latency.quantile(0.95) {
            sink.put("core.p95_miss_latency", p95 as f64);
        }
        sink.put("core.misses", self.miss_latency.count() as f64);
        if let Some(mean) = self.discovery_latency.mean() {
            sink.put("bank.mean_discovery_latency", mean);
        }
        if let Some(mean) = self.inv_round_size.mean() {
            sink.put("bank.mean_inv_round_size", mean);
        }
        sink.put("machine.cycles", cycles as f64);
        sink.put("machine.ops", completed_ops as f64);

        // Fold the network hook's injection counters into the plan's
        // summary (the NoC counts its own delays/duplicates).
        let (noc_delays, noc_dups) = self.net.fault_counts();
        let (fault, snapshot) = match self.faults {
            Some(plan) => {
                let mut summary = plan.summary;
                summary.injected_noc_delay += noc_delays;
                summary.injected_noc_duplicate += noc_dups;
                (summary, self.snapshot)
            }
            None => (crate::fault::FaultSummary::default(), None),
        };

        // Witnessed transitions, sorted by (section, row, col) — the
        // three protocol matrices from the witness maps, plus a
        // fault_response row per class whose injections were caught by
        // its expected detector (the labels the protocol-model artifact
        // uses: `Debug` CamelCase).
        let mut coverage = Vec::new();
        if let Some(witness) = self.witness {
            witness.export(&mut coverage);
            for &class in FaultClass::ALL {
                let injected = fault.injected_for(class);
                let detector = expected_detector(class);
                if injected > 0 && fault.detected_for(detector) > 0 {
                    coverage.push(TransitionHits {
                        section: "fault_response".to_string(),
                        row: format!("{class:?}"),
                        col: format!("{detector:?}"),
                        hits: injected,
                    });
                }
            }
        }

        SimReport {
            cycles,
            completed_ops,
            violations,
            sink,
            timeline: self.timeline,
            fault,
            snapshot,
            coverage,
        }
    }
}

/// Adjusts the decide()-planned view against what probes actually found:
/// a forwarded-to owner that had concurrently evicted does not become a
/// sharer. `owner_gone` is true only when a `FwdGetS` was sent and its
/// target reported no retained copy.
fn reconcile_view(planned: DirView, requester: CoreId, owner_gone: bool) -> DirView {
    match planned {
        DirView::Shared(set) if owner_gone => DirView::Shared(
            stashdir_common::SharerSet::singleton(set.capacity(), requester),
        ),
        v => v,
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.cfg.cores)
            .field("dir", &self.cfg.dir.name())
            .field("transactions", &self.transactions)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoverageRatio, DirSpec};
    use stashdir_common::DetRng;
    use stashdir_core::DirReplPolicy;
    use stashdir_mem::{CacheConfig, ReplKind};

    /// A tiny 4-core machine that makes conflicts easy to provoke:
    /// 4-block L1, 8-block L2, 16-block LLC banks.
    fn tiny(dir: DirSpec) -> SystemConfig {
        SystemConfig {
            cores: 4,
            block_bytes: 64,
            l1: CacheConfig::new(256, 2, 64, 1, ReplKind::Lru),
            l2: CacheConfig::new(512, 2, 64, 4, ReplKind::Lru),
            llc_bank: CacheConfig::new(1024, 2, 64, 8, ReplKind::Lru),
            dir,
            ..SystemConfig::default()
        }
        .with_check_interval(1)
    }

    fn no_ops(cores: u16) -> Vec<Vec<MemOp>> {
        vec![Vec::new(); cores as usize]
    }

    fn run(cfg: SystemConfig, traces: Vec<Vec<MemOp>>) -> crate::SimReport {
        let report = Machine::new(cfg).run(traces);
        report.assert_clean();
        report
    }

    /// The interned witness tables must carry exactly the canonical
    /// labels of `stashdir_protocol::reachability`, at exactly the
    /// index each `*_idx` function assigns — otherwise campaign
    /// coverage would diff garbage against the protocol-model artifact.
    #[test]
    fn witness_label_tables_match_reachability_and_idx_functions() {
        use stashdir_protocol::reachability as reach;
        for s in [
            PrivState::Invalid,
            PrivState::Shared,
            PrivState::Exclusive,
            PrivState::Modified,
        ] {
            assert_eq!(STATE_LABELS[state_idx(s)], reach::state_label(s));
        }
        for p in [
            Probe::FwdGetS,
            Probe::FwdGetM,
            Probe::Inv,
            Probe::Recall,
            Probe::Discovery(DiscoveryIntent::Share),
            Probe::Discovery(DiscoveryIntent::Invalidate),
        ] {
            assert_eq!(PROBE_LABELS[probe_idx(p)], reach::probe_label(p));
        }
        for k in [MemOpKind::Read, MemOpKind::Write] {
            assert_eq!(OP_LABELS[op_idx(k)], reach::op_label(k));
        }
        for r in [
            Request::GetS,
            Request::GetM,
            Request::Upgrade,
            Request::PutS,
            Request::PutE,
            Request::PutM,
        ] {
            assert_eq!(REQUEST_LABELS[request_idx(r)], reach::request_label(r));
        }
        for v in [
            DirView::Untracked,
            DirView::Exclusive(CoreId::new(0)),
            DirView::Shared(stashdir_common::SharerSet::new(1)),
        ] {
            assert_eq!(VIEW_LABELS[view_idx(&v)], reach::view_label(&v));
        }
    }

    #[test]
    fn event_ring_is_preallocated_and_never_grows() {
        let mut ring = EventRing::new();
        assert_eq!(ring.capacity(), RECENT_EVENTS, "allocated up front");
        for i in 0..(3 * RECENT_EVENTS as u64) {
            ring.push(Cycle::new(i), Event::Issue(CoreId::new(0)));
        }
        assert_eq!(
            ring.capacity(),
            RECENT_EVENTS,
            "hot-path pushes must not reallocate"
        );
        let cycles: Vec<u64> = ring.iter().map(|(at, _)| at.get()).collect();
        let newest = 3 * RECENT_EVENTS as u64 - 1;
        let oldest = newest + 1 - RECENT_EVENTS as u64;
        assert_eq!(
            cycles,
            (oldest..=newest).collect::<Vec<_>>(),
            "iterates oldest to newest over the last RECENT_EVENTS entries"
        );
    }

    #[test]
    fn empty_traces_finish_at_zero() {
        let report = run(tiny(DirSpec::FullMap), no_ops(4));
        assert_eq!(report.cycles, 0);
        assert_eq!(report.completed_ops, 0);
    }

    #[test]
    fn single_read_misses_then_hits() {
        let mut traces = no_ops(4);
        traces[0] = vec![MemOp::read(BlockAddr::new(0)); 10];
        let report = run(tiny(DirSpec::FullMap), traces);
        assert_eq!(report.completed_ops, 10);
        assert_eq!(report.stat("l2.misses"), 1.0);
        assert_eq!(report.stat("l1.hits"), 9.0);
        assert_eq!(report.stat("dram.accesses"), 1.0);
    }

    #[test]
    fn think_time_accumulates() {
        let mut traces = no_ops(4);
        traces[0] = vec![MemOp::read(BlockAddr::new(0)).with_think(100); 5];
        let report = run(tiny(DirSpec::FullMap), traces);
        assert!(
            report.cycles >= 500,
            "5 ops x 100 think, got {}",
            report.cycles
        );
    }

    #[test]
    fn producer_consumer_moves_data() {
        // Core 0 writes a block repeatedly; core 1 reads it. The value
        // tracker verifies every read observes a coherent version.
        let b = BlockAddr::new(5);
        let mut traces = no_ops(4);
        for _ in 0..50 {
            traces[0].push(MemOp::write(b).with_think(7));
            traces[1].push(MemOp::read(b).with_think(5));
        }
        let report = run(tiny(DirSpec::FullMap), traces);
        assert_eq!(report.completed_ops, 100);
        // Ownership ping-pongs: forwards must have happened.
        assert!(report.stat("noc.messages.fwd") > 0.0);
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let b = BlockAddr::new(3);
        let mut traces = no_ops(4);
        // Everyone reads, then core 0 writes, then everyone re-reads.
        for trace in traces.iter_mut() {
            trace.push(MemOp::read(b));
        }
        traces[0].push(MemOp::write(b).with_think(1000));
        for (c, trace) in traces.iter_mut().enumerate() {
            trace.push(MemOp::read(b).with_think(2000 + 100 * c as u32));
        }
        let report = run(tiny(DirSpec::FullMap), traces);
        assert!(
            report.stat("l2.coherence_invalidations") >= 1.0,
            "the write must invalidate other sharers"
        );
        assert!(report.stat("noc.messages.inv") >= 1.0);
    }

    #[test]
    fn upgrade_is_data_less_when_uncontended() {
        let b = BlockAddr::new(2);
        let mut traces = no_ops(4);
        // Two readers establish Shared; then one upgrades.
        traces[0].push(MemOp::read(b));
        traces[1].push(MemOp::read(b).with_think(500));
        traces[0].push(MemOp::write(b).with_think(2000));
        let report = run(tiny(DirSpec::FullMap), traces);
        report.assert_clean();
        assert_eq!(report.completed_ops, 3);
    }

    #[test]
    fn sparse_conflicts_invalidate_but_stash_conflicts_do_not() {
        // Working set far beyond a 1-set directory slice: every core
        // streams over its own private blocks, thrashing the directory.
        let mk_traces = || {
            let mut traces = no_ops(4);
            for (c, trace) in traces.iter_mut().enumerate() {
                for round in 0..4 {
                    for i in 0..32u64 {
                        let block = BlockAddr::new(1000 + c as u64 * 512 + i * 4);
                        let _ = round;
                        trace.push(MemOp::read(block));
                    }
                }
            }
            traces
        };
        let tiny_dir = |spec| tiny(spec);
        let sparse = run(
            tiny_dir(DirSpec::Sparse {
                coverage: CoverageRatio::new(1, 8),
                assoc: 2,
                repl: DirReplPolicy::Lru,
            }),
            mk_traces(),
        );
        let stash = run(
            tiny_dir(DirSpec::Stash {
                coverage: CoverageRatio::new(1, 8),
                assoc: 2,
                repl: DirReplPolicy::PrivateFirstLru,
            }),
            mk_traces(),
        );
        assert!(
            sparse.stat("dir.copies_invalidated") > 0.0,
            "sparse under-provisioning must force invalidations"
        );
        assert_eq!(
            stash.stat("dir.copies_invalidated"),
            0.0,
            "all-private workload: stash evicts silently"
        );
        assert!(stash.stat("dir.silent_evictions") > 0.0);
    }

    #[test]
    fn hidden_blocks_are_rediscovered() {
        // Core 0 loads private blocks that overflow a 1-entry-per-set
        // stash directory (hiding most of them); then core 1 reads the
        // same blocks, which must trigger discovery, not stale data.
        let blocks: Vec<BlockAddr> = (0..16).map(|i| BlockAddr::new(100 + i * 4)).collect();
        let mut traces = no_ops(4);
        for &b in &blocks {
            traces[0].push(MemOp::write(b));
        }
        for &b in &blocks {
            traces[1].push(MemOp::read(b).with_think(5000));
        }
        let report = run(
            tiny(DirSpec::Stash {
                coverage: CoverageRatio::new(1, 8),
                assoc: 2,
                repl: DirReplPolicy::PrivateFirstLru,
            }),
            traces,
        );
        assert!(
            report.stat("bank.discoveries") > 0.0,
            "hidden dirty blocks must be discovered"
        );
        assert!(report.stat("bank.discoveries_found") > 0.0);
    }

    #[test]
    fn llc_eviction_recalls_private_copies() {
        // Three cores each pin one block of LLC bank 0's set 0 (2 ways)
        // in their L2s; the third fill must evict a line that is still
        // privately cached, forcing an inclusion recall.
        let mut traces = no_ops(4);
        for (c, trace) in traces.iter_mut().enumerate().take(3) {
            // Bank 0 blocks (multiple of 4) in the same LLC set:
            // local = block >> 2 in {0, 8, 16} ≡ 0 (mod 8 sets).
            let block = BlockAddr::new(c as u64 * 32);
            trace.push(MemOp::read(block).with_think(500 * c as u32));
            // Keep the core busy so its copy stays resident.
            trace.push(MemOp::read(block).with_think(5000));
        }
        let report = run(tiny(DirSpec::FullMap), traces);
        assert!(report.stat("llc.evictions") > 0.0);
        assert!(
            report.stat("bank.llc_recalls") > 0.0,
            "LLC inclusion must recall tracked copies"
        );
        assert!(report.stat("bank.inclusion_invalidations") > 0.0);
    }

    #[test]
    fn llc_eviction_of_stashed_line_runs_discovery() {
        // Hide blocks (stash dir with tiny slices), then stream enough
        // unrelated blocks through one bank to evict the stashed lines.
        let mut traces = no_ops(4);
        for i in 0..8u64 {
            traces[0].push(MemOp::write(BlockAddr::new(i * 4))); // bank 0
        }
        for i in 0..64u64 {
            traces[1].push(MemOp::read(BlockAddr::new(1024 + i * 4)).with_think(100));
            // bank 0
        }
        let report = run(
            tiny(DirSpec::Stash {
                coverage: CoverageRatio::new(1, 8),
                assoc: 2,
                repl: DirReplPolicy::PrivateFirstLru,
            }),
            traces,
        );
        assert!(
            report.stat("bank.evict_discoveries") > 0.0,
            "evicting a stashed LLC line requires discovery"
        );
    }

    #[test]
    fn writeback_refetch_race_is_ordered() {
        // A dirty block is evicted and immediately re-read; per-channel
        // FIFO must deliver the PutM before the GetS, or the value
        // tracker screams.
        let hot = BlockAddr::new(0);
        let conflict: Vec<BlockAddr> = (1..3).map(|i| BlockAddr::new(i * 512)).collect();
        let mut traces = no_ops(4);
        for _ in 0..20 {
            traces[0].push(MemOp::write(hot));
            for &c in &conflict {
                traces[0].push(MemOp::read(c)); // evicts `hot` from tiny L2 set
            }
            traces[0].push(MemOp::read(hot));
        }
        run(tiny(DirSpec::FullMap), traces).assert_clean();
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut rng = DetRng::seed_from(11);
            let mut traces = no_ops(4);
            for trace in traces.iter_mut() {
                for _ in 0..200 {
                    let block = BlockAddr::new(rng.below(64));
                    let op = if rng.chance(0.3) {
                        MemOp::write(block)
                    } else {
                        MemOp::read(block)
                    };
                    trace.push(op.with_think(rng.below(8) as u32));
                }
            }
            traces
        };
        let a = run(tiny(DirSpec::stash(CoverageRatio::new(1, 4))), mk());
        let b = run(tiny(DirSpec::stash(CoverageRatio::new(1, 4))), mk());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.sink, b.sink);
    }

    /// The soundness workhorse: random mixed traffic over a small, highly
    /// contended block pool, full invariant checking after every single
    /// transaction, across every directory organization and both
    /// clean-eviction modes.
    #[test]
    fn stress_all_directories_stay_coherent() {
        let specs = [
            DirSpec::FullMap,
            DirSpec::Sparse {
                coverage: CoverageRatio::new(1, 8),
                assoc: 2,
                repl: DirReplPolicy::Lru,
            },
            DirSpec::Stash {
                coverage: CoverageRatio::new(1, 8),
                assoc: 2,
                repl: DirReplPolicy::PrivateFirstLru,
            },
            DirSpec::Stash {
                coverage: CoverageRatio::new(1, 16),
                assoc: 2,
                repl: DirReplPolicy::Random,
            },
            DirSpec::Cuckoo {
                coverage: CoverageRatio::new(1, 8),
            },
            DirSpec::Dls,
            DirSpec::Opaque {
                coverage: CoverageRatio::new(1, 8),
                assoc: 2,
            },
        ];
        for spec in specs {
            for notify in [true, false] {
                for seed in [1u64, 2] {
                    let mut cfg = tiny(spec);
                    cfg.notify_clean_evictions = notify;
                    cfg.seed = seed;
                    let mut rng = DetRng::seed_from(seed ^ 0xBEEF);
                    let mut traces = no_ops(4);
                    for trace in traces.iter_mut() {
                        for _ in 0..400 {
                            // 48 hot blocks: heavy sharing + heavy conflicts.
                            let block = BlockAddr::new(rng.below(48));
                            let op = if rng.chance(0.35) {
                                MemOp::write(block)
                            } else {
                                MemOp::read(block)
                            };
                            trace.push(op.with_think(rng.below(5) as u32));
                        }
                    }
                    let report = Machine::new(cfg).run(traces);
                    assert!(
                        report.violations.is_empty(),
                        "{spec} notify={notify} seed={seed}: {:?}",
                        &report.violations[..report.violations.len().min(5)]
                    );
                    assert_eq!(report.completed_ops, 1600);
                }
            }
        }
    }

    #[test]
    fn stash_keeps_performance_with_tiny_directory() {
        // Private streaming: stash at 1/8 must stay close to fullmap,
        // sparse at 1/8 must be slower.
        let mk_traces = || {
            let mut traces = no_ops(4);
            for (c, trace) in traces.iter_mut().enumerate() {
                for _round in 0..6 {
                    for i in 0..24u64 {
                        let block = BlockAddr::new(c as u64 * 4096 + i * 4);
                        trace.push(MemOp::read(block).with_think(2));
                    }
                }
            }
            traces
        };
        let full = run(tiny(DirSpec::FullMap), mk_traces());
        let stash = run(tiny(DirSpec::stash(CoverageRatio::new(1, 8))), mk_traces());
        let sparse = run(tiny(DirSpec::sparse(CoverageRatio::new(1, 8))), mk_traces());
        assert!(
            stash.cycles < sparse.cycles,
            "stash {} should beat sparse {}",
            stash.cycles,
            sparse.cycles
        );
        let stash_slowdown = stash.cycles as f64 / full.cycles as f64;
        assert!(
            stash_slowdown < 1.15,
            "stash within 15% of fullmap, got {stash_slowdown:.3}"
        );
    }

    #[test]
    fn dls_private_blocks_cache_normally() {
        let mut traces = no_ops(4);
        traces[0] = vec![MemOp::read(BlockAddr::new(0)); 10];
        let report = run(tiny(DirSpec::Dls), traces);
        assert_eq!(report.completed_ops, 10);
        assert_eq!(report.stat("l1.hits"), 9.0, "single-toucher blocks fill");
        assert_eq!(report.stat("backend.remote_llc_accesses"), 0.0);
        assert_eq!(report.stat("dir.storage_bits"), 0.0, "DLS has no SRAM");
    }

    #[test]
    fn dls_reclassifies_shared_blocks_to_remote_access() {
        let b = BlockAddr::new(5);
        let mut traces = no_ops(4);
        for _ in 0..20 {
            traces[0].push(MemOp::write(b).with_think(7));
            traces[1].push(MemOp::read(b).with_think(5));
        }
        let report = run(tiny(DirSpec::Dls), traces);
        assert_eq!(report.completed_ops, 40);
        assert_eq!(
            report.stat("backend.dls_reclassifications"),
            1.0,
            "the block crosses private→shared exactly once"
        );
        assert!(
            report.stat("backend.remote_llc_accesses") >= 30.0,
            "once shared, every touch is remote: {}",
            report.stat("backend.remote_llc_accesses")
        );
        assert_eq!(
            report.stat("noc.messages.fwd"),
            0.0,
            "no owner forwards: shared data lives at the LLC"
        );
    }

    #[test]
    fn opaque_demands_take_indirection_hops() {
        // Private streaming across all four cores: most blocks' opaque
        // bank differs from their home, so demands pay indirection.
        let mut traces = no_ops(4);
        for (c, trace) in traces.iter_mut().enumerate() {
            for i in 0..32u64 {
                trace.push(MemOp::read(BlockAddr::new(1000 + c as u64 * 512 + i * 4)));
            }
        }
        let report = run(
            tiny(DirSpec::Opaque {
                coverage: CoverageRatio::new(1, 8),
                assoc: 2,
            }),
            traces,
        );
        assert!(report.stat("backend.indirection_hops") > 0.0);
        assert!(report.stat("backend.dir_bank_accesses") > 0.0);
        assert!(
            report.stat("backend.dir_bank_imbalance") >= 1.0,
            "imbalance is max/mean"
        );
        assert!(
            report.stat("noc.messages.dir") > 0.0,
            "indirection legs ride the dir message class"
        );
    }

    #[test]
    fn opaque_shares_and_invalidates_coherently() {
        // Producer/consumer sharing plus enough private streaming to force
        // opaque-shard conflict evictions of blocks homed at other banks.
        let hot = BlockAddr::new(5);
        let mut traces = no_ops(4);
        for i in 0..40u64 {
            traces[0].push(MemOp::write(hot).with_think(7));
            traces[1].push(MemOp::read(hot).with_think(5));
            traces[2].push(MemOp::read(BlockAddr::new(2000 + i * 4)).with_think(3));
            traces[3].push(MemOp::read(BlockAddr::new(4000 + i * 4)).with_think(3));
        }
        let report = run(
            tiny(DirSpec::Opaque {
                coverage: CoverageRatio::new(1, 16),
                assoc: 2,
            }),
            traces,
        );
        assert_eq!(report.completed_ops, 160);
        assert!(
            report.stat("dir.copies_invalidated") > 0.0,
            "opaque shards invalidate on conflict like sparse"
        );
    }

    #[test]
    fn legacy_backends_report_no_backend_keys() {
        let mut traces = no_ops(4);
        traces[0].push(MemOp::read(BlockAddr::new(1)));
        for spec in [
            DirSpec::FullMap,
            DirSpec::stash(CoverageRatio::new(1, 8)),
            DirSpec::sparse(CoverageRatio::new(1, 8)),
        ] {
            let report = run(tiny(spec), no_ops(4));
            assert!(
                report.sink.get("backend.remote_llc_accesses").is_none(),
                "{spec}: legacy reports must keep their exact key set"
            );
        }
        let _ = traces;
    }

    #[test]
    fn timeline_samples_accumulate_monotonically() {
        let mut traces = no_ops(4);
        for i in 0..500u64 {
            traces[0].push(MemOp::write(BlockAddr::new(i % 64)).with_think(10));
        }
        let cfg = tiny(DirSpec::stash(CoverageRatio::new(1, 8))).with_timeline(1_000);
        let report = Machine::new(cfg).run(traces);
        report.assert_clean();
        assert!(report.timeline.len() > 5, "expected several samples");
        for w in report.timeline.windows(2) {
            assert!(w[1].cycle > w[0].cycle);
            assert!(w[1].ops >= w[0].ops, "cumulative ops are monotone");
            assert!(w[1].silent_evictions >= w[0].silent_evictions);
            assert!(w[1].discoveries >= w[0].discoveries);
        }
    }

    #[test]
    fn timeline_off_by_default() {
        let mut traces = no_ops(4);
        traces[0].push(MemOp::read(BlockAddr::new(1)));
        let report = run(tiny(DirSpec::FullMap), traces);
        assert!(report.timeline.is_empty());
    }

    #[test]
    fn report_exports_core_keys() {
        let mut traces = no_ops(4);
        traces[0].push(MemOp::write(BlockAddr::new(1)));
        let report = run(tiny(DirSpec::stash(CoverageRatio::FULL)), traces);
        for key in [
            "machine.cycles",
            "machine.ops",
            "l1.hits",
            "l2.misses",
            "llc.misses",
            "dir.allocations",
            "noc.flit_hops",
            "dram.accesses",
            "dir.storage_bits",
        ] {
            assert!(report.sink.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    #[should_panic(expected = "one trace per core")]
    fn trace_count_must_match_cores() {
        let _ = Machine::new(tiny(DirSpec::FullMap)).run(no_ops(2));
    }

    // ---- deterministic fault injection (the chaos layer) ----

    use crate::fault::{validate_snapshot, FaultBurst};

    /// Shared-traffic traces: every core reads and writes a small shared
    /// set, so directory entries, sharer sets and exclusive owners all
    /// exist for the corruptors to target.
    fn sharing_traces() -> Vec<Vec<MemOp>> {
        let mut traces = no_ops(4);
        for (c, trace) in traces.iter_mut().enumerate() {
            for round in 0..20u64 {
                let b = BlockAddr::new(round % 5);
                trace.push(MemOp::read(b).with_think(c as u32));
                if c == 0 {
                    trace.push(MemOp::write(b).with_think(3));
                }
            }
        }
        traces
    }

    /// Directory-thrashing traces: each core reads a private working set
    /// that fits its L2 (distinct sets) but vastly exceeds the tiny stash
    /// directory's reach, so entries are silently evicted with stash bits
    /// while the copies stay live — the StashClear target.
    fn thrashing_traces() -> Vec<Vec<MemOp>> {
        let mut traces = no_ops(4);
        for (c, trace) in traces.iter_mut().enumerate() {
            for i in 0..8u64 {
                trace.push(MemOp::read(BlockAddr::new(100 + c as u64 * 16 + i)));
            }
        }
        traces
    }

    fn chaos_with(dir: DirSpec, class: FaultClass, traces: Vec<Vec<MemOp>>) -> crate::SimReport {
        Machine::new(tiny(dir))
            .with_faults(FaultConfig::for_class(class, 11))
            .run(traces)
    }

    fn chaos(class: FaultClass, traces: Vec<Vec<MemOp>>) -> crate::SimReport {
        chaos_with(DirSpec::stash(CoverageRatio::new(1, 8)), class, traces)
    }

    /// A 2-way stash directory: per-bank capacity 2, so the thrashing
    /// traces force silent (stash-bit) evictions of entries whose copies
    /// are still L2-resident.
    fn tight_stash() -> DirSpec {
        DirSpec::Stash {
            coverage: CoverageRatio::new(1, 8),
            assoc: 2,
            repl: DirReplPolicy::PrivateFirstLru,
        }
    }

    #[test]
    fn sharer_flip_is_detected_by_the_checker() {
        let report = chaos(FaultClass::SharerFlip, sharing_traces());
        assert_eq!(report.fault.injected_sharer_flip, 1);
        assert!(report.fault.detected_invariant >= 1, "{:?}", report.fault);
        assert_eq!(report.fault.quiesced, 1);
        assert!(!report.violations.is_empty());
        assert!(report.snapshot.is_some());
    }

    #[test]
    fn stash_clear_is_detected_by_the_checker() {
        let report = chaos_with(tight_stash(), FaultClass::StashClear, thrashing_traces());
        assert_eq!(report.fault.injected_stash_clear, 1, "{:?}", report.fault);
        assert!(report.fault.detected_invariant >= 1, "{:?}", report.fault);
        assert_eq!(report.fault.quiesced, 1);
    }

    #[test]
    fn stash_spurious_is_detected_by_the_checker() {
        let report = chaos(FaultClass::StashSpurious, sharing_traces());
        assert_eq!(report.fault.injected_stash_spurious, 1);
        assert!(report.fault.detected_invariant >= 1, "{:?}", report.fault);
    }

    #[test]
    fn drop_grant_is_detected_at_final_check() {
        let report = chaos(FaultClass::DropGrant, sharing_traces());
        assert_eq!(report.fault.injected_drop_grant, 1);
        assert!(report.fault.detected_invariant >= 1, "{:?}", report.fault);
        assert!(
            report.violations.iter().any(|v| v.starts_with("I6")),
            "{:?}",
            report.violations
        );
        assert!(report.snapshot.is_some());
    }

    #[test]
    fn noc_delay_trips_the_watchdog() {
        let report = chaos(FaultClass::NocDelay, sharing_traces());
        assert_eq!(report.fault.injected_noc_delay, 1);
        assert!(report.fault.detected_watchdog >= 1, "{:?}", report.fault);
        assert_eq!(report.fault.quiesced, 1);
        assert!(
            report.violations.iter().any(|v| v.starts_with("Stall")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn noc_duplicate_is_detected_as_a_spurious_demand() {
        let report = chaos(FaultClass::NocDuplicate, sharing_traces());
        assert_eq!(report.fault.injected_noc_duplicate, 1);
        assert!(report.fault.detected_invariant >= 1, "{:?}", report.fault);
        assert!(
            report.violations.iter().any(|v| v.starts_with("I8")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn stuck_transient_trips_the_watchdog() {
        let report = chaos(FaultClass::StuckTransient, sharing_traces());
        assert_eq!(report.fault.injected_stuck_transient, 1);
        assert!(report.fault.detected_watchdog >= 1, "{:?}", report.fault);
        assert_eq!(report.fault.quiesced, 1);
    }

    #[test]
    fn every_fault_class_is_caught_by_its_expected_detector() {
        use crate::fault::expected_detector;
        for &class in FaultClass::ALL {
            let report = if class == FaultClass::StashClear {
                chaos_with(tight_stash(), class, thrashing_traces())
            } else {
                chaos(class, sharing_traces())
            };
            assert!(
                report.fault.injected_total() >= 1,
                "{class:?}: nothing injected"
            );
            let caught = match expected_detector(class) {
                Detector::Invariant => report.fault.detected_invariant,
                Detector::Watchdog => report.fault.detected_watchdog,
            };
            assert!(
                caught >= 1,
                "{class:?} escaped its expected detector: {:?}",
                report.fault
            );
        }
    }

    #[test]
    fn snapshot_matches_the_published_schema() {
        let report = chaos(FaultClass::SharerFlip, sharing_traces());
        let text = report.snapshot.expect("faulty run dumps a snapshot");
        let value = Value::parse(&text).expect("snapshot is valid JSON");
        validate_snapshot(&value).expect("snapshot matches schema");
        assert_eq!(
            value.get("reason").and_then(Value::as_str),
            Some("invariant_violation")
        );
    }

    #[test]
    fn disabled_fault_layer_changes_nothing() {
        let plain =
            Machine::new(tiny(DirSpec::stash(CoverageRatio::new(1, 8)))).run(sharing_traces());
        let threaded = Machine::new(tiny(DirSpec::stash(CoverageRatio::new(1, 8))))
            .with_faults(FaultConfig::disabled())
            .run(sharing_traces());
        plain.assert_clean();
        threaded.assert_clean();
        assert_eq!(plain.cycles, threaded.cycles);
        assert_eq!(plain.completed_ops, threaded.completed_ops);
        assert_eq!(plain.sink, threaded.sink);
        assert_eq!(plain.fault, threaded.fault);
        assert_eq!(threaded.fault, Default::default());
        assert_eq!(threaded.snapshot, None);
    }

    #[test]
    fn armed_watchdog_stays_quiet_on_a_healthy_run() {
        let cfg = FaultConfig {
            watchdog_bound: 1_000_000,
            ..FaultConfig::disabled()
        };
        let report = Machine::new(tiny(DirSpec::stash(CoverageRatio::new(1, 8))))
            .with_faults(cfg)
            .run(sharing_traces());
        report.assert_clean();
        assert_eq!(report.fault.detected_watchdog, 0);
        assert_eq!(report.fault.quiesced, 0);
    }

    /// A two-burst campaign-style plan: a sharer flip composed with
    /// duplicated demands, both steady from cycle zero.
    fn composed_plan(seed: u64) -> FaultConfig {
        FaultConfig::for_campaign(seed)
            .with_burst(FaultBurst {
                class: FaultClass::SharerFlip,
                onset: 0,
                len: 0,
                gap: 0,
                rate_per_mille: 1000,
            })
            .with_burst(FaultBurst {
                class: FaultClass::NocDuplicate,
                onset: 0,
                len: 0,
                gap: 0,
                rate_per_mille: 1000,
            })
    }

    #[test]
    fn composed_bursts_inject_both_classes_and_are_detected() {
        let report = Machine::new(tiny(DirSpec::stash(CoverageRatio::new(1, 8))))
            .with_faults(composed_plan(11))
            .run(sharing_traces());
        assert!(report.fault.injected_sharer_flip >= 1, "{:?}", report.fault);
        assert!(
            report.fault.injected_noc_duplicate >= 1,
            "{:?}",
            report.fault
        );
        assert!(report.fault.detected_invariant >= 1, "{:?}", report.fault);
        assert_eq!(report.fault.quiesced, 1);
    }

    #[test]
    fn burst_onset_gates_injection() {
        // The same schedule pushed past the run's horizon injects
        // nothing: the windows never open.
        let mut plan = composed_plan(11);
        for b in &mut plan.bursts {
            b.onset = 1 << 40;
        }
        let report = Machine::new(tiny(DirSpec::stash(CoverageRatio::new(1, 8))))
            .with_faults(plan)
            .run(sharing_traces());
        report.assert_clean();
        assert_eq!(report.fault.injected_total(), 0);
        assert_eq!(report.fault.quiesced, 0);
    }

    #[test]
    fn composed_snapshot_embeds_the_active_schedule() {
        let report = Machine::new(tiny(DirSpec::stash(CoverageRatio::new(1, 8))))
            .with_faults(composed_plan(11))
            .run(sharing_traces());
        let text = report.snapshot.expect("composed faulty run quiesces");
        let value = Value::parse(&text).expect("snapshot is valid JSON");
        validate_snapshot(&value).expect("snapshot matches schema");
        let fault = value.get("fault").expect("faulty snapshot embeds schedule");
        let classes: Vec<&str> = fault
            .get("classes")
            .and_then(Value::as_array)
            .expect("class set present")
            .iter()
            .filter_map(Value::as_str)
            .collect();
        assert_eq!(classes, ["noc_duplicate", "sharer_flip"]);
        let bursts = fault
            .get("bursts")
            .and_then(Value::as_array)
            .expect("burst schedule present");
        assert_eq!(bursts.len(), 2);
        for b in bursts {
            // Steady bursts are in their hot window at quiesce time.
            assert_eq!(b.get("phase").and_then(Value::as_str), Some("burst"));
        }
    }

    #[test]
    fn composed_bursts_are_deterministic() {
        let run = || {
            Machine::new(tiny(DirSpec::stash(CoverageRatio::new(1, 8))))
                .with_faults(composed_plan(11))
                .run(sharing_traces())
        };
        let a = run();
        let b = run();
        assert_eq!(a.fault, b.fault);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.snapshot, b.snapshot);
        // A different seed is free to diverge (same schedule, different
        // dice) without changing what is detected.
        let c = Machine::new(tiny(DirSpec::stash(CoverageRatio::new(1, 8))))
            .with_faults(composed_plan(12))
            .run(sharing_traces());
        assert!(c.fault.detected_invariant >= 1);
    }
}
