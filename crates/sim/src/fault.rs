//! Deterministic fault injection: the taxonomy, the per-run plan, and
//! the detection accounting.
//!
//! The chaos layer exists to prove the invariant checker and the
//! liveness watchdog *detect* protocol damage, not merely to tolerate
//! it. Every fault class in [`TAXONOMY`] names the layer it perturbs and
//! the detector expected to catch it; the chaos smoke suite (E17) and
//! the mutation-gate test assert the mapping holds for every class.
//!
//! Injection is seeded from the case RNG via [`FaultConfig::seed`], so a
//! faulty run is exactly reproducible and resume-stable: the same case
//! digest always yields the same injections, detections and snapshot.
//!
//! With no class enabled (see [`FaultConfig::disabled`]) the hook layer
//! is provably zero-cost: a `FaultPlan`-threaded run produces reports
//! and artifacts byte-identical to a plain run (property-tested in the
//! harness).

use serde::{Deserialize, Serialize};
use stashdir_common::json::Value;
use stashdir_common::DetRng;

/// The kinds of damage the chaos layer can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultClass {
    /// A NoC message is delayed far beyond any legitimate latency
    /// (injected through the network hook).
    NocDelay,
    /// A demand request is duplicated in flight (injected through the
    /// network hook); the second copy arrives with no matching pending
    /// operation.
    NocDuplicate,
    /// A directory entry forgets (or mis-names) a live holder: a sharer
    /// bit flips off, or an exclusive owner is dropped.
    SharerFlip,
    /// A set stash bit covering a real hidden copy is cleared, so the
    /// copy becomes invisible to discovery.
    StashClear,
    /// A stash bit is set on a line the directory still tracks,
    /// violating the stash discipline.
    StashSpurious,
    /// A grant is dropped on completion: the requester never observes
    /// its fill and keeps its pending operation forever.
    DropGrant,
    /// A home bank's per-block busy window sticks far in the future, so
    /// the next transaction on the block cannot serialize in bounded
    /// time.
    StuckTransient,
}

impl FaultClass {
    /// Every fault class, in taxonomy order.
    pub const ALL: &'static [FaultClass] = &[
        FaultClass::NocDelay,
        FaultClass::NocDuplicate,
        FaultClass::SharerFlip,
        FaultClass::StashClear,
        FaultClass::StashSpurious,
        FaultClass::DropGrant,
        FaultClass::StuckTransient,
    ];

    /// Stable lowercase label (artifact keys, CLI flags).
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::NocDelay => "noc_delay",
            FaultClass::NocDuplicate => "noc_duplicate",
            FaultClass::SharerFlip => "sharer_flip",
            FaultClass::StashClear => "stash_clear",
            FaultClass::StashSpurious => "stash_spurious",
            FaultClass::DropGrant => "drop_grant",
            FaultClass::StuckTransient => "stuck_transient",
        }
    }

    /// Parses a [`FaultClass::label`] string.
    pub fn parse(s: &str) -> Option<FaultClass> {
        FaultClass::ALL.iter().copied().find(|c| c.label() == s)
    }
}

/// Which mechanism is expected to catch a fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Detector {
    /// A machine-wide invariant (I1–I8) flags the damage as a
    /// violation.
    Invariant,
    /// The forward-progress watchdog diagnoses a structured stall.
    Watchdog,
}

impl Detector {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Detector::Invariant => "invariant",
            Detector::Watchdog => "watchdog",
        }
    }
}

/// The fault-response matrix: every enabled fault class paired with the
/// detector that must catch it. The lint's fourth decision layer diffs
/// [`expected_detector`]'s match arms against this table, and the
/// mutation gate asserts each row detects in practice.
pub const TAXONOMY: &[(FaultClass, Detector)] = &[
    (FaultClass::NocDelay, Detector::Watchdog),
    (FaultClass::NocDuplicate, Detector::Invariant),
    (FaultClass::SharerFlip, Detector::Invariant),
    (FaultClass::StashClear, Detector::Invariant),
    (FaultClass::StashSpurious, Detector::Invariant),
    (FaultClass::DropGrant, Detector::Invariant),
    (FaultClass::StuckTransient, Detector::Watchdog),
];

/// The detector responsible for `class`.
///
/// Delay and stuck-transient faults starve forward progress without
/// corrupting state, so only the watchdog can see them; everything else
/// leaves a state footprint one of the checker invariants flags.
pub fn expected_detector(class: FaultClass) -> Detector {
    match class {
        FaultClass::NocDelay => Detector::Watchdog,
        FaultClass::NocDuplicate => Detector::Invariant,
        FaultClass::SharerFlip => Detector::Invariant,
        FaultClass::StashClear => Detector::Invariant,
        FaultClass::StashSpurious => Detector::Invariant,
        FaultClass::DropGrant => Detector::Invariant,
        FaultClass::StuckTransient => Detector::Watchdog,
    }
}

/// Configuration for one faulty run.
///
/// Thread it into a machine with [`Machine::with_faults`]; a config with
/// no class and no watchdog bound is inert.
///
/// [`Machine::with_faults`]: crate::Machine::with_faults
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// The single class to inject, or `None` for a fault-free run with
    /// the hook layer still threaded (watchdog may still be armed).
    pub class: Option<FaultClass>,
    /// Seed for the injection RNG (independent of the workload seed).
    pub seed: u64,
    /// Injection probability per opportunity, in thousandths.
    pub rate_per_mille: u32,
    /// Cap on recorded injections; `0` = unlimited.
    pub max_injections: u64,
    /// Extra delivery delay for [`FaultClass::NocDelay`], cycles.
    pub delay_cycles: u64,
    /// How far a [`FaultClass::StuckTransient`] pins the block busy
    /// window into the future, cycles.
    pub stuck_cycles: u64,
    /// Forward-progress bound: a core that retires nothing for this many
    /// cycles is diagnosed as stalled. `0` disables the watchdog.
    pub watchdog_bound: u64,
}

impl FaultConfig {
    /// A fully inert config: no class, no watchdog.
    pub fn disabled() -> FaultConfig {
        FaultConfig {
            class: None,
            seed: 0,
            rate_per_mille: 0,
            max_injections: 0,
            delay_cycles: 0,
            stuck_cycles: 0,
            watchdog_bound: 0,
        }
    }

    /// The chaos-suite config for `class`: inject at the first
    /// opportunity (rate 100%, one injection), with starvation horizons
    /// far beyond the watchdog bound so liveness faults trip it
    /// deterministically.
    pub fn for_class(class: FaultClass, seed: u64) -> FaultConfig {
        FaultConfig {
            class: Some(class),
            seed,
            rate_per_mille: 1000,
            max_injections: 1,
            delay_cycles: 50_000_000,
            stuck_cycles: 50_000_000,
            watchdog_bound: 1_000_000,
        }
    }
}

/// Injection and detection counters, surfaced on
/// [`SimReport`](crate::SimReport) and persisted in sweep artifacts.
/// All-zero on a fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// NoC messages delayed.
    pub injected_noc_delay: u64,
    /// NoC demand requests duplicated.
    pub injected_noc_duplicate: u64,
    /// Directory views corrupted (holder dropped / owner mis-named).
    pub injected_sharer_flip: u64,
    /// Stash bits covering live hidden copies cleared.
    pub injected_stash_clear: u64,
    /// Spurious stash bits set on tracked lines.
    pub injected_stash_spurious: u64,
    /// Grants dropped on completion.
    pub injected_drop_grant: u64,
    /// Block busy windows pinned far in the future.
    pub injected_stuck_transient: u64,
    /// Detection events attributed to the invariant checker.
    pub detected_invariant: u64,
    /// Detection events attributed to the liveness watchdog.
    pub detected_watchdog: u64,
    /// `1` when the machine quiesced early (snapshot dumped) instead of
    /// running to completion.
    pub quiesced: u64,
}

impl FaultSummary {
    /// Total injections across classes.
    pub fn injected_total(&self) -> u64 {
        self.injected_noc_delay
            + self.injected_noc_duplicate
            + self.injected_sharer_flip
            + self.injected_stash_clear
            + self.injected_stash_spurious
            + self.injected_drop_grant
            + self.injected_stuck_transient
    }

    /// Total detection events across detectors.
    pub fn detected_total(&self) -> u64 {
        self.detected_invariant + self.detected_watchdog
    }

    /// The injection counter for `class`.
    pub fn injected_for(&self, class: FaultClass) -> u64 {
        match class {
            FaultClass::NocDelay => self.injected_noc_delay,
            FaultClass::NocDuplicate => self.injected_noc_duplicate,
            FaultClass::SharerFlip => self.injected_sharer_flip,
            FaultClass::StashClear => self.injected_stash_clear,
            FaultClass::StashSpurious => self.injected_stash_spurious,
            FaultClass::DropGrant => self.injected_drop_grant,
            FaultClass::StuckTransient => self.injected_stuck_transient,
        }
    }

    /// The detection counter for `detector`.
    pub fn detected_for(&self, detector: Detector) -> u64 {
        match detector {
            Detector::Invariant => self.detected_invariant,
            Detector::Watchdog => self.detected_watchdog,
        }
    }

    /// Bumps the injection counter for `class`.
    pub fn record_injection(&mut self, class: FaultClass) {
        match class {
            FaultClass::NocDelay => self.injected_noc_delay += 1,
            FaultClass::NocDuplicate => self.injected_noc_duplicate += 1,
            FaultClass::SharerFlip => self.injected_sharer_flip += 1,
            FaultClass::StashClear => self.injected_stash_clear += 1,
            FaultClass::StashSpurious => self.injected_stash_spurious += 1,
            FaultClass::DropGrant => self.injected_drop_grant += 1,
            FaultClass::StuckTransient => self.injected_stuck_transient += 1,
        }
    }

    /// Bumps the detection counter for `detector`.
    pub fn record_detection(&mut self, detector: Detector) {
        match detector {
            Detector::Invariant => self.detected_invariant += 1,
            Detector::Watchdog => self.detected_watchdog += 1,
        }
    }
}

/// The runtime side of a [`FaultConfig`]: the injection RNG plus the
/// accumulating [`FaultSummary`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: DetRng,
    /// Counters accumulated so far.
    pub summary: FaultSummary,
}

impl FaultPlan {
    /// Builds a plan from `cfg`.
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        FaultPlan {
            rng: DetRng::seed_from(cfg.seed ^ 0xC4A0_5DA7),
            cfg,
            summary: FaultSummary::default(),
        }
    }

    /// The configuration this plan runs.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The watchdog bound, `None` when the watchdog is disarmed.
    pub fn watchdog_bound(&self) -> Option<u64> {
        (self.cfg.watchdog_bound > 0).then_some(self.cfg.watchdog_bound)
    }

    /// `true` when `class` is the enabled class and its injection budget
    /// is not exhausted. Does not consume randomness or record anything.
    pub fn armed(&self, class: FaultClass) -> bool {
        self.cfg.class == Some(class)
            && (self.cfg.max_injections == 0
                || self.summary.injected_total() < self.cfg.max_injections)
    }

    /// Rolls the injection dice for `class`: `true` when the fault
    /// should fire *and the caller will apply it*. The caller records
    /// the injection via [`FaultPlan::record_injection`] only once the
    /// damage is actually applied (targeted corruptions may find no
    /// victim).
    pub fn roll(&mut self, class: FaultClass) -> bool {
        if !self.armed(class) {
            return false;
        }
        self.cfg.rate_per_mille >= 1000 || self.rng.below(1000) < self.cfg.rate_per_mille as u64
    }

    /// Records one applied injection of `class`.
    pub fn record_injection(&mut self, class: FaultClass) {
        self.summary.record_injection(class);
    }

    /// Records one detection event by `detector`.
    pub fn record_detection(&mut self, detector: Detector) {
        self.summary.record_detection(detector);
    }

    /// Access to the plan's RNG for target selection.
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }
}

/// The schema tag every diagnostic snapshot carries.
pub const SNAPSHOT_SCHEMA: &str = "stashdir/diag-snapshot/v1";

/// Validates a parsed diagnostic snapshot against the
/// [`SNAPSHOT_SCHEMA`] shape: schema tag, quiesce reason, cycle and
/// transaction counts, per-core pipeline/cache sections, per-bank
/// directory sections, in-flight messages and the recent-event trail.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate_snapshot(v: &Value) -> Result<(), String> {
    fn need<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
        v.get(key).ok_or_else(|| format!("missing key `{key}`"))
    }
    fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
        need(v, key)?
            .as_u64()
            .ok_or_else(|| format!("`{key}` is not an unsigned integer"))
    }
    fn need_array<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
        need(v, key)?
            .as_array()
            .ok_or_else(|| format!("`{key}` is not an array"))
    }
    let schema = need(v, "schema")?
        .as_str()
        .ok_or("`schema` is not a string")?;
    if schema != SNAPSHOT_SCHEMA {
        return Err(format!("schema `{schema}`, expected `{SNAPSHOT_SCHEMA}`"));
    }
    need(v, "reason")?
        .as_str()
        .ok_or("`reason` is not a string")?;
    need_u64(v, "cycle")?;
    need_u64(v, "transactions")?;
    for (i, core) in need_array(v, "cores")?.iter().enumerate() {
        for key in ["core", "pc", "trace_len", "ops_done", "last_retire"] {
            need_u64(core, key).map_err(|e| format!("cores[{i}]: {e}"))?;
        }
        need(core, "pending").map_err(|e| format!("cores[{i}]: {e}"))?;
        need(core, "finished")
            .ok()
            .and_then(Value::as_bool)
            .ok_or_else(|| format!("cores[{i}]: `finished` is not a bool"))?;
        for key in ["l1_blocks", "l2", "writebacks"] {
            need_array(core, key).map_err(|e| format!("cores[{i}]: {e}"))?;
        }
    }
    for (i, bank) in need_array(v, "banks")?.iter().enumerate() {
        need_u64(bank, "bank").map_err(|e| format!("banks[{i}]: {e}"))?;
        need_u64(bank, "llc_lines").map_err(|e| format!("banks[{i}]: {e}"))?;
        for key in ["dir", "stash_bits"] {
            need_array(bank, key).map_err(|e| format!("banks[{i}]: {e}"))?;
        }
    }
    for (i, msg) in need_array(v, "in_flight")?.iter().enumerate() {
        need_u64(msg, "at").map_err(|e| format!("in_flight[{i}]: {e}"))?;
        need(msg, "event")
            .ok()
            .and_then(Value::as_str)
            .ok_or_else(|| format!("in_flight[{i}]: `event` is not a string"))?;
    }
    for (i, line) in need_array(v, "recent_events")?.iter().enumerate() {
        line.as_str()
            .ok_or_else(|| format!("recent_events[{i}] is not a string"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_covers_every_class_once() {
        assert_eq!(TAXONOMY.len(), FaultClass::ALL.len());
        for &class in FaultClass::ALL {
            let rows: Vec<_> = TAXONOMY.iter().filter(|(c, _)| *c == class).collect();
            assert_eq!(rows.len(), 1, "{class:?} appears exactly once");
            assert_eq!(rows[0].1, expected_detector(class));
        }
    }

    #[test]
    fn labels_round_trip() {
        for &class in FaultClass::ALL {
            assert_eq!(FaultClass::parse(class.label()), Some(class));
        }
        assert_eq!(FaultClass::parse("bogus"), None);
    }

    #[test]
    fn disabled_plan_never_fires() {
        let mut plan = FaultPlan::new(FaultConfig::disabled());
        for &class in FaultClass::ALL {
            assert!(!plan.roll(class));
        }
        assert_eq!(plan.summary, FaultSummary::default());
        assert_eq!(plan.watchdog_bound(), None);
    }

    #[test]
    fn max_injections_caps_the_budget() {
        let mut cfg = FaultConfig::for_class(FaultClass::DropGrant, 7);
        cfg.max_injections = 2;
        let mut plan = FaultPlan::new(cfg);
        assert!(plan.roll(FaultClass::DropGrant));
        plan.record_injection(FaultClass::DropGrant);
        assert!(plan.roll(FaultClass::DropGrant));
        plan.record_injection(FaultClass::DropGrant);
        assert!(!plan.roll(FaultClass::DropGrant), "budget exhausted");
        assert!(!plan.roll(FaultClass::NocDelay), "wrong class never arms");
        assert_eq!(plan.summary.injected_drop_grant, 2);
        assert_eq!(plan.summary.injected_total(), 2);
    }

    #[test]
    fn summary_counters_accumulate_by_class_and_detector() {
        let mut s = FaultSummary::default();
        for &class in FaultClass::ALL {
            s.record_injection(class);
        }
        assert_eq!(s.injected_total(), FaultClass::ALL.len() as u64);
        s.record_detection(Detector::Invariant);
        s.record_detection(Detector::Watchdog);
        s.record_detection(Detector::Watchdog);
        assert_eq!(s.detected_invariant, 1);
        assert_eq!(s.detected_watchdog, 2);
        assert_eq!(s.detected_total(), 3);
    }
}
