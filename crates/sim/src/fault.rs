//! Deterministic fault injection: the taxonomy, the per-run plan, and
//! the detection accounting.
//!
//! The chaos layer exists to prove the invariant checker and the
//! liveness watchdog *detect* protocol damage, not merely to tolerate
//! it. Every fault class in [`TAXONOMY`] names the layer it perturbs and
//! the detector expected to catch it; the chaos smoke suite (E17) and
//! the mutation-gate test assert the mapping holds for every class.
//!
//! Injection is seeded from the case RNG via [`FaultConfig::seed`], so a
//! faulty run is exactly reproducible and resume-stable: the same case
//! digest always yields the same injections, detections and snapshot.
//!
//! With no class enabled (see [`FaultConfig::disabled`]) the hook layer
//! is provably zero-cost: a `FaultPlan`-threaded run produces reports
//! and artifacts byte-identical to a plain run (property-tested in the
//! harness).

use serde::{Deserialize, Serialize};
use stashdir_common::json::Value;
use stashdir_common::DetRng;

/// The kinds of damage the chaos layer can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultClass {
    /// A NoC message is delayed far beyond any legitimate latency
    /// (injected through the network hook).
    NocDelay,
    /// A demand request is duplicated in flight (injected through the
    /// network hook); the second copy arrives with no matching pending
    /// operation.
    NocDuplicate,
    /// A directory entry forgets (or mis-names) a live holder: a sharer
    /// bit flips off, or an exclusive owner is dropped.
    SharerFlip,
    /// A set stash bit covering a real hidden copy is cleared, so the
    /// copy becomes invisible to discovery.
    StashClear,
    /// A stash bit is set on a line the directory still tracks,
    /// violating the stash discipline.
    StashSpurious,
    /// A grant is dropped on completion: the requester never observes
    /// its fill and keeps its pending operation forever.
    DropGrant,
    /// A home bank's per-block busy window sticks far in the future, so
    /// the next transaction on the block cannot serialize in bounded
    /// time.
    StuckTransient,
}

impl FaultClass {
    /// Every fault class, in taxonomy order.
    pub const ALL: &'static [FaultClass] = &[
        FaultClass::NocDelay,
        FaultClass::NocDuplicate,
        FaultClass::SharerFlip,
        FaultClass::StashClear,
        FaultClass::StashSpurious,
        FaultClass::DropGrant,
        FaultClass::StuckTransient,
    ];

    /// Stable lowercase label (artifact keys, CLI flags).
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::NocDelay => "noc_delay",
            FaultClass::NocDuplicate => "noc_duplicate",
            FaultClass::SharerFlip => "sharer_flip",
            FaultClass::StashClear => "stash_clear",
            FaultClass::StashSpurious => "stash_spurious",
            FaultClass::DropGrant => "drop_grant",
            FaultClass::StuckTransient => "stuck_transient",
        }
    }

    /// Parses a [`FaultClass::label`] string.
    pub fn parse(s: &str) -> Option<FaultClass> {
        FaultClass::ALL.iter().copied().find(|c| c.label() == s)
    }

    /// Every valid label, comma-joined — the help text parse errors
    /// carry so a typo'd class is always answerable from the message.
    pub fn label_help() -> String {
        FaultClass::ALL
            .iter()
            .map(|c| c.label())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Which mechanism is expected to catch a fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Detector {
    /// A machine-wide invariant (I1–I8) flags the damage as a
    /// violation.
    Invariant,
    /// The forward-progress watchdog diagnoses a structured stall.
    Watchdog,
}

impl Detector {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Detector::Invariant => "invariant",
            Detector::Watchdog => "watchdog",
        }
    }
}

/// The fault-response matrix: every enabled fault class paired with the
/// detector that must catch it. The lint's fourth decision layer diffs
/// [`expected_detector`]'s match arms against this table, and the
/// mutation gate asserts each row detects in practice.
pub const TAXONOMY: &[(FaultClass, Detector)] = &[
    (FaultClass::NocDelay, Detector::Watchdog),
    (FaultClass::NocDuplicate, Detector::Invariant),
    (FaultClass::SharerFlip, Detector::Invariant),
    (FaultClass::StashClear, Detector::Invariant),
    (FaultClass::StashSpurious, Detector::Invariant),
    (FaultClass::DropGrant, Detector::Invariant),
    (FaultClass::StuckTransient, Detector::Watchdog),
];

/// The detector responsible for `class`.
///
/// Delay and stuck-transient faults starve forward progress without
/// corrupting state, so only the watchdog can see them; everything else
/// leaves a state footprint one of the checker invariants flags.
pub fn expected_detector(class: FaultClass) -> Detector {
    match class {
        FaultClass::NocDelay => Detector::Watchdog,
        FaultClass::NocDuplicate => Detector::Invariant,
        FaultClass::SharerFlip => Detector::Invariant,
        FaultClass::StashClear => Detector::Invariant,
        FaultClass::StashSpurious => Detector::Invariant,
        FaultClass::DropGrant => Detector::Invariant,
        FaultClass::StuckTransient => Detector::Watchdog,
    }
}

/// One scheduled injection window of a multi-fault campaign: `class`
/// rolls at `rate_per_mille` from cycle `onset`, stays hot for `len`
/// cycles, sleeps `gap` cycles, and repeats. A `len` or `gap` of `0`
/// means the burst never switches off once `onset` is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultBurst {
    /// The fault class this burst injects.
    pub class: FaultClass,
    /// First cycle at which the burst can fire.
    pub onset: u64,
    /// Hot-window length in cycles (`0` = forever).
    pub len: u64,
    /// Cool-down between hot windows in cycles (`0` = no cool-down).
    pub gap: u64,
    /// Injection probability per opportunity inside the window,
    /// thousandths.
    pub rate_per_mille: u32,
}

impl FaultBurst {
    /// `true` when the burst's hot window covers cycle `now`.
    pub fn active_at(&self, now: u64) -> bool {
        if now < self.onset {
            return false;
        }
        if self.len == 0 || self.gap == 0 {
            return true;
        }
        (now - self.onset) % (self.len + self.gap) < self.len
    }

    /// Human-readable schedule phase at cycle `now` (`pending`, `burst`
    /// or `gap`) — embedded in diagnostic snapshots so a multi-fault
    /// stall is attributable without a rerun.
    pub fn phase_at(&self, now: u64) -> &'static str {
        if now < self.onset {
            "pending"
        } else if self.active_at(now) {
            "burst"
        } else {
            "gap"
        }
    }
}

/// Configuration for one faulty run.
///
/// Thread it into a machine with [`Machine::with_faults`]; a config with
/// no class, no bursts and no watchdog bound is inert.
///
/// Two injection modes compose: the legacy single-`class` mode (always
/// armed, `rate_per_mille`) and any number of [`FaultBurst`] windows,
/// which arm their class only inside the scheduled hot windows — the
/// chaos-campaign layer's multi-fault mode.
///
/// [`Machine::with_faults`]: crate::Machine::with_faults
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// The single always-armed class to inject, or `None` when only
    /// bursts (or nothing) inject.
    pub class: Option<FaultClass>,
    /// Seed for the injection RNG (independent of the workload seed).
    pub seed: u64,
    /// Injection probability per opportunity for the legacy class,
    /// in thousandths.
    pub rate_per_mille: u32,
    /// Cap on recorded injections; `0` = unlimited.
    pub max_injections: u64,
    /// Extra delivery delay for [`FaultClass::NocDelay`], cycles.
    pub delay_cycles: u64,
    /// How far a [`FaultClass::StuckTransient`] pins the block busy
    /// window into the future, cycles.
    pub stuck_cycles: u64,
    /// Forward-progress bound: a core that retires nothing for this many
    /// cycles is diagnosed as stalled. `0` disables the watchdog.
    pub watchdog_bound: u64,
    /// Scheduled injection windows (the multi-fault campaign mode).
    pub bursts: Vec<FaultBurst>,
    /// Allowed injection-site indices: when non-empty, only the n-th
    /// would-fire opportunities named here actually inject — the
    /// minimizer's finest delta-debugging granularity. Empty = all.
    pub sites: Vec<u64>,
    /// Record per-(state×message) transition hit counts on the report
    /// (the chaos-coverage loop); off by default so plain chaos runs
    /// keep their historical artifacts.
    pub witness: bool,
}

impl FaultConfig {
    /// A fully inert config: no class, no bursts, no watchdog.
    pub fn disabled() -> FaultConfig {
        FaultConfig {
            class: None,
            seed: 0,
            rate_per_mille: 0,
            max_injections: 0,
            delay_cycles: 0,
            stuck_cycles: 0,
            watchdog_bound: 0,
            bursts: Vec::new(),
            sites: Vec::new(),
            witness: false,
        }
    }

    /// The chaos-suite config for `class`: inject at the first
    /// opportunity (rate 100%, one injection), with starvation horizons
    /// far beyond the watchdog bound so liveness faults trip it
    /// deterministically.
    pub fn for_class(class: FaultClass, seed: u64) -> FaultConfig {
        FaultConfig {
            class: Some(class),
            seed,
            rate_per_mille: 1000,
            max_injections: 1,
            delay_cycles: 50_000_000,
            stuck_cycles: 50_000_000,
            watchdog_bound: 1_000_000,
            ..FaultConfig::disabled()
        }
    }

    /// A campaign config with no legacy class: bursts added via
    /// [`FaultConfig::with_burst`] drive all injection. Horizons and the
    /// watchdog bound match [`FaultConfig::for_class`]; the budget is
    /// unlimited (bursts self-limit through their windows).
    pub fn for_campaign(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            delay_cycles: 50_000_000,
            stuck_cycles: 50_000_000,
            watchdog_bound: 1_000_000,
            ..FaultConfig::disabled()
        }
    }

    /// Appends one burst window.
    pub fn with_burst(mut self, burst: FaultBurst) -> FaultConfig {
        self.bursts.push(burst);
        self
    }

    /// Enables transition witnessing.
    pub fn with_witness(mut self) -> FaultConfig {
        self.witness = true;
        self
    }

    /// `true` when any burst window is scheduled.
    pub fn has_bursts(&self) -> bool {
        !self.bursts.is_empty()
    }

    /// Every class this config can inject (legacy class plus burst
    /// classes), deduplicated, in taxonomy order.
    pub fn enabled_classes(&self) -> Vec<FaultClass> {
        FaultClass::ALL
            .iter()
            .copied()
            .filter(|&c| self.class == Some(c) || self.bursts.iter().any(|b| b.class == c))
            .collect()
    }
}

impl std::fmt::Display for FaultConfig {
    /// Canonical `key=value` token string, the replayable form the
    /// minimizer saves next to diag snapshots. [`FaultConfig::from_str`]
    /// round-trips it exactly.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(class) = self.class {
            parts.push(format!("class={}", class.label()));
        }
        parts.push(format!("seed={}", self.seed));
        parts.push(format!("rate={}", self.rate_per_mille));
        parts.push(format!("max={}", self.max_injections));
        parts.push(format!("delay={}", self.delay_cycles));
        parts.push(format!("stuck={}", self.stuck_cycles));
        parts.push(format!("watchdog={}", self.watchdog_bound));
        for b in &self.bursts {
            parts.push(format!(
                "burst={}:{}:{}:{}:{}",
                b.class.label(),
                b.onset,
                b.len,
                b.gap,
                b.rate_per_mille
            ));
        }
        if !self.sites.is_empty() {
            let sites: Vec<String> = self.sites.iter().map(u64::to_string).collect();
            parts.push(format!("sites={}", sites.join(",")));
        }
        if self.witness {
            parts.push("witness=true".to_string());
        }
        write!(f, "{}", parts.join(" "))
    }
}

fn parse_class(s: &str) -> Result<FaultClass, String> {
    FaultClass::parse(s).ok_or_else(|| {
        format!(
            "unknown fault class `{s}` (valid classes: {})",
            FaultClass::label_help()
        )
    })
}

fn parse_num<T: std::str::FromStr>(key: &str, s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("`{key}` wants an unsigned integer, got `{s}`"))
}

impl std::str::FromStr for FaultConfig {
    type Err = String;

    /// Parses the [`Display`](FaultConfig::fmt) token grammar:
    /// whitespace-separated `key=value` tokens in any order. Unknown
    /// class labels list every valid label.
    fn from_str(s: &str) -> Result<FaultConfig, String> {
        let mut cfg = FaultConfig::disabled();
        for token in s.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("`{token}` is not a key=value token"))?;
            match key {
                "class" => cfg.class = Some(parse_class(value)?),
                "seed" => cfg.seed = parse_num(key, value)?,
                "rate" => cfg.rate_per_mille = parse_num(key, value)?,
                "max" => cfg.max_injections = parse_num(key, value)?,
                "delay" => cfg.delay_cycles = parse_num(key, value)?,
                "stuck" => cfg.stuck_cycles = parse_num(key, value)?,
                "watchdog" => cfg.watchdog_bound = parse_num(key, value)?,
                "burst" => {
                    let mut it = value.split(':');
                    let (Some(class), Some(onset), Some(len), Some(gap), Some(rate), None) = (
                        it.next(),
                        it.next(),
                        it.next(),
                        it.next(),
                        it.next(),
                        it.next(),
                    ) else {
                        return Err(format!("`burst={value}` wants class:onset:len:gap:rate"));
                    };
                    cfg.bursts.push(FaultBurst {
                        class: parse_class(class)?,
                        onset: parse_num("burst onset", onset)?,
                        len: parse_num("burst len", len)?,
                        gap: parse_num("burst gap", gap)?,
                        rate_per_mille: parse_num("burst rate", rate)?,
                    });
                }
                "sites" => {
                    cfg.sites = value
                        .split(',')
                        .map(|v| parse_num("sites", v))
                        .collect::<Result<Vec<u64>, String>>()?;
                }
                "witness" => match value {
                    "true" => cfg.witness = true,
                    "false" => cfg.witness = false,
                    other => return Err(format!("`witness` wants true or false, got `{other}`")),
                },
                other => return Err(format!("unknown fault-config key `{other}`")),
            }
        }
        Ok(cfg)
    }
}

/// Injection and detection counters, surfaced on
/// [`SimReport`](crate::SimReport) and persisted in sweep artifacts.
/// All-zero on a fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// NoC messages delayed.
    pub injected_noc_delay: u64,
    /// NoC demand requests duplicated.
    pub injected_noc_duplicate: u64,
    /// Directory views corrupted (holder dropped / owner mis-named).
    pub injected_sharer_flip: u64,
    /// Stash bits covering live hidden copies cleared.
    pub injected_stash_clear: u64,
    /// Spurious stash bits set on tracked lines.
    pub injected_stash_spurious: u64,
    /// Grants dropped on completion.
    pub injected_drop_grant: u64,
    /// Block busy windows pinned far in the future.
    pub injected_stuck_transient: u64,
    /// Detection events attributed to the invariant checker.
    pub detected_invariant: u64,
    /// Detection events attributed to the liveness watchdog.
    pub detected_watchdog: u64,
    /// `1` when the machine quiesced early (snapshot dumped) instead of
    /// running to completion.
    pub quiesced: u64,
}

impl FaultSummary {
    /// Total injections across classes.
    pub fn injected_total(&self) -> u64 {
        self.injected_noc_delay
            + self.injected_noc_duplicate
            + self.injected_sharer_flip
            + self.injected_stash_clear
            + self.injected_stash_spurious
            + self.injected_drop_grant
            + self.injected_stuck_transient
    }

    /// Total detection events across detectors.
    pub fn detected_total(&self) -> u64 {
        self.detected_invariant + self.detected_watchdog
    }

    /// The injection counter for `class`.
    pub fn injected_for(&self, class: FaultClass) -> u64 {
        match class {
            FaultClass::NocDelay => self.injected_noc_delay,
            FaultClass::NocDuplicate => self.injected_noc_duplicate,
            FaultClass::SharerFlip => self.injected_sharer_flip,
            FaultClass::StashClear => self.injected_stash_clear,
            FaultClass::StashSpurious => self.injected_stash_spurious,
            FaultClass::DropGrant => self.injected_drop_grant,
            FaultClass::StuckTransient => self.injected_stuck_transient,
        }
    }

    /// The detection counter for `detector`.
    pub fn detected_for(&self, detector: Detector) -> u64 {
        match detector {
            Detector::Invariant => self.detected_invariant,
            Detector::Watchdog => self.detected_watchdog,
        }
    }

    /// Bumps the injection counter for `class`.
    pub fn record_injection(&mut self, class: FaultClass) {
        match class {
            FaultClass::NocDelay => self.injected_noc_delay += 1,
            FaultClass::NocDuplicate => self.injected_noc_duplicate += 1,
            FaultClass::SharerFlip => self.injected_sharer_flip += 1,
            FaultClass::StashClear => self.injected_stash_clear += 1,
            FaultClass::StashSpurious => self.injected_stash_spurious += 1,
            FaultClass::DropGrant => self.injected_drop_grant += 1,
            FaultClass::StuckTransient => self.injected_stuck_transient += 1,
        }
    }

    /// Bumps the detection counter for `detector`.
    pub fn record_detection(&mut self, detector: Detector) {
        match detector {
            Detector::Invariant => self.detected_invariant += 1,
            Detector::Watchdog => self.detected_watchdog += 1,
        }
    }
}

/// The runtime side of a [`FaultConfig`]: the injection RNG plus the
/// accumulating [`FaultSummary`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: DetRng,
    /// Counters accumulated so far.
    pub summary: FaultSummary,
    /// Would-fire opportunities seen so far — the index space the
    /// minimizer's `sites` filter selects over.
    opportunities: u64,
}

impl FaultPlan {
    /// Builds a plan from `cfg`.
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        FaultPlan {
            rng: DetRng::seed_from(cfg.seed ^ 0xC4A0_5DA7),
            cfg,
            summary: FaultSummary::default(),
            opportunities: 0,
        }
    }

    /// The configuration this plan runs.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The watchdog bound, `None` when the watchdog is disarmed.
    pub fn watchdog_bound(&self) -> Option<u64> {
        (self.cfg.watchdog_bound > 0).then_some(self.cfg.watchdog_bound)
    }

    fn budget_open(&self) -> bool {
        self.cfg.max_injections == 0 || self.summary.injected_total() < self.cfg.max_injections
    }

    /// The effective legacy-mode rate for `class` (`None` when `class`
    /// is not the configured one).
    fn legacy_rate(&self, class: FaultClass) -> Option<u32> {
        (self.cfg.class == Some(class)).then_some(self.cfg.rate_per_mille)
    }

    /// The strongest burst-mode rate for `class` at cycle `now`
    /// (`None` when no burst for `class` is hot).
    fn burst_rate(&self, class: FaultClass, now: u64) -> Option<u32> {
        self.cfg
            .bursts
            .iter()
            .filter(|b| b.class == class && b.active_at(now))
            .map(|b| b.rate_per_mille)
            .max()
    }

    /// `true` when `class` is the enabled class and its injection budget
    /// is not exhausted. Does not consume randomness or record anything.
    pub fn armed(&self, class: FaultClass) -> bool {
        self.cfg.class == Some(class) && self.budget_open()
    }

    /// `true` when `class` can fire at cycle `now` through either mode
    /// (legacy class or a hot burst) and the budget is open.
    pub fn armed_at(&self, class: FaultClass, now: u64) -> bool {
        (self.legacy_rate(class).is_some() || self.burst_rate(class, now).is_some())
            && self.budget_open()
    }

    /// The shared dice-and-site-filter core: consumes one RNG draw when
    /// `rate` permits firing, counts the would-fire opportunity, and
    /// applies the `sites` allow-list.
    fn roll_with_rate(&mut self, rate: Option<u32>) -> bool {
        let Some(rate) = rate else {
            return false;
        };
        if !self.budget_open() {
            return false;
        }
        let fires = rate >= 1000 || self.rng.below(1000) < rate as u64;
        if !fires {
            return false;
        }
        let site = self.opportunities;
        self.opportunities += 1;
        self.cfg.sites.is_empty() || self.cfg.sites.contains(&site)
    }

    /// Rolls the injection dice for `class`: `true` when the fault
    /// should fire *and the caller will apply it*. The caller records
    /// the injection via [`FaultPlan::record_injection`] only once the
    /// damage is actually applied (targeted corruptions may find no
    /// victim). Legacy single-class entry point — equivalent to
    /// [`FaultPlan::roll_at`] at cycle 0 for burst-free configs.
    pub fn roll(&mut self, class: FaultClass) -> bool {
        self.roll_at(class, 0)
    }

    /// Rolls for `class` at cycle `now`, arming through whichever mode
    /// (legacy class or hot burst) offers the higher rate.
    pub fn roll_at(&mut self, class: FaultClass, now: u64) -> bool {
        let rate = match (self.legacy_rate(class), self.burst_rate(class, now)) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.roll_with_rate(rate)
    }

    /// Rolls for `class` at cycle `now` through burst windows only —
    /// used for the NoC classes at the machine layer, where the legacy
    /// single-class mode already injects inside the network itself (a
    /// combined roll would double-inject).
    pub fn roll_burst_at(&mut self, class: FaultClass, now: u64) -> bool {
        let rate = self.burst_rate(class, now);
        self.roll_with_rate(rate)
    }

    /// Records one applied injection of `class`.
    pub fn record_injection(&mut self, class: FaultClass) {
        self.summary.record_injection(class);
    }

    /// Records one detection event by `detector`.
    pub fn record_detection(&mut self, detector: Detector) {
        self.summary.record_detection(detector);
    }

    /// Access to the plan's RNG for target selection.
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }
}

/// The schema tag every diagnostic snapshot carries.
pub const SNAPSHOT_SCHEMA: &str = "stashdir/diag-snapshot/v1";

/// Validates a parsed diagnostic snapshot against the
/// [`SNAPSHOT_SCHEMA`] shape: schema tag, quiesce reason, cycle and
/// transaction counts, per-core pipeline/cache sections, per-bank
/// directory sections, in-flight messages and the recent-event trail.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate_snapshot(v: &Value) -> Result<(), String> {
    fn need<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
        v.get(key).ok_or_else(|| format!("missing key `{key}`"))
    }
    fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
        need(v, key)?
            .as_u64()
            .ok_or_else(|| format!("`{key}` is not an unsigned integer"))
    }
    fn need_array<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
        need(v, key)?
            .as_array()
            .ok_or_else(|| format!("`{key}` is not an array"))
    }
    let schema = need(v, "schema")?
        .as_str()
        .ok_or("`schema` is not a string")?;
    if schema != SNAPSHOT_SCHEMA {
        return Err(format!("schema `{schema}`, expected `{SNAPSHOT_SCHEMA}`"));
    }
    need(v, "reason")?
        .as_str()
        .ok_or("`reason` is not a string")?;
    need_u64(v, "cycle")?;
    need_u64(v, "transactions")?;
    for (i, core) in need_array(v, "cores")?.iter().enumerate() {
        for key in ["core", "pc", "trace_len", "ops_done", "last_retire"] {
            need_u64(core, key).map_err(|e| format!("cores[{i}]: {e}"))?;
        }
        need(core, "pending").map_err(|e| format!("cores[{i}]: {e}"))?;
        need(core, "finished")
            .ok()
            .and_then(Value::as_bool)
            .ok_or_else(|| format!("cores[{i}]: `finished` is not a bool"))?;
        for key in ["l1_blocks", "l2", "writebacks"] {
            need_array(core, key).map_err(|e| format!("cores[{i}]: {e}"))?;
        }
    }
    for (i, bank) in need_array(v, "banks")?.iter().enumerate() {
        need_u64(bank, "bank").map_err(|e| format!("banks[{i}]: {e}"))?;
        need_u64(bank, "llc_lines").map_err(|e| format!("banks[{i}]: {e}"))?;
        for key in ["dir", "stash_bits"] {
            need_array(bank, key).map_err(|e| format!("banks[{i}]: {e}"))?;
        }
    }
    for (i, msg) in need_array(v, "in_flight")?.iter().enumerate() {
        need_u64(msg, "at").map_err(|e| format!("in_flight[{i}]: {e}"))?;
        need(msg, "event")
            .ok()
            .and_then(Value::as_str)
            .ok_or_else(|| format!("in_flight[{i}]: `event` is not a string"))?;
    }
    for (i, line) in need_array(v, "recent_events")?.iter().enumerate() {
        line.as_str()
            .ok_or_else(|| format!("recent_events[{i}] is not a string"))?;
    }
    // Optional on fault-free snapshots; faulty runs embed the active
    // schedule so a multi-fault stall is attributable without a rerun.
    if let Some(fault) = v.get("fault") {
        for (i, class) in need_array(fault, "classes")?.iter().enumerate() {
            class
                .as_str()
                .and_then(FaultClass::parse)
                .ok_or_else(|| format!("fault.classes[{i}] is not a fault-class label"))?;
        }
        for (i, burst) in need_array(fault, "bursts")?.iter().enumerate() {
            need(burst, "class")
                .ok()
                .and_then(Value::as_str)
                .and_then(FaultClass::parse)
                .ok_or_else(|| format!("fault.bursts[{i}]: `class` is not a fault-class label"))?;
            for key in ["onset", "len", "gap", "rate"] {
                need_u64(burst, key).map_err(|e| format!("fault.bursts[{i}]: {e}"))?;
            }
            let phase = need(burst, "phase")
                .ok()
                .and_then(Value::as_str)
                .ok_or_else(|| format!("fault.bursts[{i}]: `phase` is not a string"))?;
            if !matches!(phase, "pending" | "burst" | "gap") {
                return Err(format!("fault.bursts[{i}]: unknown phase `{phase}`"));
            }
        }
        need_u64(fault, "injected").map_err(|e| format!("fault: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_covers_every_class_once() {
        assert_eq!(TAXONOMY.len(), FaultClass::ALL.len());
        for &class in FaultClass::ALL {
            let rows: Vec<_> = TAXONOMY.iter().filter(|(c, _)| *c == class).collect();
            assert_eq!(rows.len(), 1, "{class:?} appears exactly once");
            assert_eq!(rows[0].1, expected_detector(class));
        }
    }

    #[test]
    fn labels_round_trip() {
        for &class in FaultClass::ALL {
            assert_eq!(FaultClass::parse(class.label()), Some(class));
        }
        assert_eq!(FaultClass::parse("bogus"), None);
    }

    #[test]
    fn disabled_plan_never_fires() {
        let mut plan = FaultPlan::new(FaultConfig::disabled());
        for &class in FaultClass::ALL {
            assert!(!plan.roll(class));
        }
        assert_eq!(plan.summary, FaultSummary::default());
        assert_eq!(plan.watchdog_bound(), None);
    }

    #[test]
    fn max_injections_caps_the_budget() {
        let mut cfg = FaultConfig::for_class(FaultClass::DropGrant, 7);
        cfg.max_injections = 2;
        let mut plan = FaultPlan::new(cfg);
        assert!(plan.roll(FaultClass::DropGrant));
        plan.record_injection(FaultClass::DropGrant);
        assert!(plan.roll(FaultClass::DropGrant));
        plan.record_injection(FaultClass::DropGrant);
        assert!(!plan.roll(FaultClass::DropGrant), "budget exhausted");
        assert!(!plan.roll(FaultClass::NocDelay), "wrong class never arms");
        assert_eq!(plan.summary.injected_drop_grant, 2);
        assert_eq!(plan.summary.injected_total(), 2);
    }

    #[test]
    fn burst_windows_gate_arming_by_cycle() {
        let b = FaultBurst {
            class: FaultClass::SharerFlip,
            onset: 100,
            len: 10,
            gap: 90,
            rate_per_mille: 1000,
        };
        assert_eq!(b.phase_at(0), "pending");
        assert!(!b.active_at(99));
        assert!(b.active_at(100));
        assert!(b.active_at(109));
        assert_eq!(b.phase_at(105), "burst");
        assert!(!b.active_at(110));
        assert_eq!(b.phase_at(150), "gap");
        assert!(b.active_at(200), "window repeats every len+gap cycles");

        let forever = FaultBurst {
            len: 0,
            gap: 0,
            ..b
        };
        assert!(forever.active_at(100));
        assert!(forever.active_at(1_000_000), "len 0 never switches off");

        let mut plan = FaultPlan::new(FaultConfig::for_campaign(3).with_burst(b));
        assert!(!plan.roll_at(FaultClass::SharerFlip, 50), "before onset");
        assert!(plan.roll_at(FaultClass::SharerFlip, 105), "inside window");
        assert!(!plan.roll_at(FaultClass::SharerFlip, 150), "in the gap");
        assert!(
            !plan.roll_at(FaultClass::StashClear, 105),
            "other classes stay cold"
        );
        assert!(plan.armed_at(FaultClass::SharerFlip, 105));
        assert!(!plan.armed_at(FaultClass::SharerFlip, 150));
    }

    #[test]
    fn sites_filter_selects_individual_injections() {
        let burst = FaultBurst {
            class: FaultClass::StashClear,
            onset: 0,
            len: 0,
            gap: 0,
            rate_per_mille: 1000,
        };
        let mut cfg = FaultConfig::for_campaign(9).with_burst(burst);
        cfg.sites = vec![1];
        let mut plan = FaultPlan::new(cfg);
        assert!(
            !plan.roll_at(FaultClass::StashClear, 10),
            "site 0 is filtered out"
        );
        assert!(plan.roll_at(FaultClass::StashClear, 20), "site 1 fires");
        assert!(!plan.roll_at(FaultClass::StashClear, 30), "site 2 filtered");
    }

    #[test]
    fn config_display_round_trips_through_from_str() {
        let cfg = FaultConfig::for_class(FaultClass::DropGrant, 42);
        let parsed: FaultConfig = cfg.to_string().parse().expect("parse");
        assert_eq!(parsed, cfg);

        let mut campaign = FaultConfig::for_campaign(7)
            .with_burst(FaultBurst {
                class: FaultClass::NocDelay,
                onset: 200,
                len: 50,
                gap: 150,
                rate_per_mille: 250,
            })
            .with_burst(FaultBurst {
                class: FaultClass::StuckTransient,
                onset: 0,
                len: 0,
                gap: 0,
                rate_per_mille: 1000,
            })
            .with_witness();
        campaign.sites = vec![3, 7];
        let parsed: FaultConfig = campaign.to_string().parse().expect("parse");
        assert_eq!(parsed, campaign);
        assert_eq!(
            campaign.enabled_classes(),
            vec![FaultClass::NocDelay, FaultClass::StuckTransient],
            "taxonomy order, deduplicated"
        );
    }

    #[test]
    fn parse_errors_list_every_valid_class_label() {
        let err = "class=bogus".parse::<FaultConfig>().expect_err("bad class");
        for &class in FaultClass::ALL {
            assert!(err.contains(class.label()), "{err} lists {}", class.label());
        }
        let err = "burst=bogus:0:0:0:1000"
            .parse::<FaultConfig>()
            .expect_err("bad burst class");
        for &class in FaultClass::ALL {
            assert!(err.contains(class.label()), "{err} lists {}", class.label());
        }
        assert!("nonsense".parse::<FaultConfig>().is_err());
        assert!("pace=3".parse::<FaultConfig>().is_err());
        assert!("burst=noc_delay:1:2".parse::<FaultConfig>().is_err());
    }

    #[test]
    fn summary_counters_accumulate_by_class_and_detector() {
        let mut s = FaultSummary::default();
        for &class in FaultClass::ALL {
            s.record_injection(class);
        }
        assert_eq!(s.injected_total(), FaultClass::ALL.len() as u64);
        s.record_detection(Detector::Invariant);
        s.record_detection(Detector::Watchdog);
        s.record_detection(Detector::Watchdog);
        assert_eq!(s.detected_invariant, 1);
        assert_eq!(s.detected_watchdog, 2);
        assert_eq!(s.detected_total(), 3);
    }
}
