//! Property tests for the `DirSpec` grammar: every backend kind's
//! `Display` rendering must parse back to the same spec (the sweep CLI,
//! case ids and CSV labels all round-trip through this pair), and an
//! unknown kind must name every valid one in its error.

use proptest::prelude::*;
use stashdir_core::DirReplPolicy;
use stashdir_sim::{CoverageRatio, DirSpec};

const VALID_KINDS: [&str; 7] = [
    "fullmap",
    "sparse",
    "stash",
    "cuckoo",
    "limited-ptr",
    "dls",
    "opaque",
];

fn coverage() -> impl Strategy<Value = CoverageRatio> {
    (1u32..5, 1u32..33).prop_map(|(num, den)| CoverageRatio::new(num, den))
}

/// Specs as the parser produces them: every kind, with the per-kind
/// default replacement policy (the grammar does not encode `repl`).
fn any_spec() -> impl Strategy<Value = DirSpec> {
    prop_oneof![
        Just(DirSpec::FullMap),
        Just(DirSpec::Dls),
        (coverage(), 1usize..17).prop_map(|(coverage, assoc)| DirSpec::Sparse {
            coverage,
            assoc,
            repl: DirReplPolicy::Lru,
        }),
        (coverage(), 1usize..17).prop_map(|(coverage, assoc)| DirSpec::Stash {
            coverage,
            assoc,
            repl: DirReplPolicy::PrivateFirstLru,
        }),
        coverage().prop_map(|coverage| DirSpec::Cuckoo { coverage }),
        (coverage(), 1usize..17, 1u8..13)
            .prop_map(|(coverage, assoc, k)| { DirSpec::LimitedPtr { coverage, assoc, k } }),
        (coverage(), 1usize..17).prop_map(|(coverage, assoc)| DirSpec::Opaque { coverage, assoc }),
    ]
}

/// Random lowercase identifiers for the unknown-kind property.
fn lowercase_word() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..26, 1..13)
        .prop_map(|v| v.into_iter().map(|b| (b'a' + b) as char).collect())
}

proptest! {
    #[test]
    fn display_parses_back_to_the_same_spec(spec in any_spec()) {
        let shown = spec.to_string();
        let parsed: DirSpec = shown.parse().expect("Display output must parse");
        prop_assert_eq!(parsed, spec);
        // And the rendering is a fixed point: no canonicalization drift.
        prop_assert_eq!(parsed.to_string(), shown);
    }

    #[test]
    fn unknown_kinds_name_every_valid_kind(kind in lowercase_word()) {
        if VALID_KINDS.contains(&kind.as_str()) {
            return Ok(()); // sampled a real kind; nothing to check
        }
        let err = kind.parse::<DirSpec>().expect_err("unknown kind must not parse");
        for name in VALID_KINDS {
            prop_assert!(
                err.contains(name),
                "error `{}` does not name valid kind `{}`",
                err,
                name
            );
        }
    }
}
