//! Property tests for the machine-wide invariants in
//! `stashdir_sim::checker`.
//!
//! The unit tests in `checker.rs` corrupt a machine by hand and confirm
//! each invariant *fires*; these tests attack from the other side: no
//! sequence of legal operations — any trace mix, any directory
//! organization, silent or notifying clean evictions, with the checker
//! running periodically *and* at end of run — may ever produce a
//! violation. Alongside cleanliness they pin down op conservation,
//! bit-for-bit determinism, and the timeline-sampling gate.

use proptest::prelude::*;
use stashdir_common::{BlockAddr, MemOp};
use stashdir_mem::{CacheConfig, ReplKind};
use stashdir_sim::{CoverageRatio, DirSpec, Machine, SimReport, SystemConfig};

/// Distinct blocks the traces touch: three times the 8-block private L2
/// below, so replacements, discovery and directory evictions all trigger.
const BLOCKS: u64 = 24;
const CORES: usize = 4;

/// A deliberately tiny 4-core machine (8-block L2, 16-block LLC bank) so
/// short random traces still exercise every eviction path.
fn small_config(dir: DirSpec) -> SystemConfig {
    SystemConfig {
        cores: CORES as u16,
        l1: CacheConfig::new(256, 2, 64, 1, ReplKind::Lru),
        l2: CacheConfig::new(512, 2, 64, 4, ReplKind::Lru),
        llc_bank: CacheConfig::new(1024, 2, 64, 8, ReplKind::Lru),
        dir,
        ..SystemConfig::default()
    }
}

/// Every directory organization, with coverage pressure on the bounded
/// ones so entry eviction (and stash discovery) actually happens.
fn any_dir() -> impl Strategy<Value = DirSpec> {
    prop::sample::select(vec![
        DirSpec::FullMap,
        DirSpec::sparse(CoverageRatio::new(1, 2)),
        DirSpec::sparse(CoverageRatio::new(1, 8)),
        DirSpec::stash(CoverageRatio::new(1, 2)),
        DirSpec::stash(CoverageRatio::new(1, 8)),
        DirSpec::Cuckoo {
            coverage: CoverageRatio::new(1, 2),
        },
    ])
}

/// One core's trace: reads and writes over a small shared block space,
/// with occasional think time so cores drift out of lockstep.
fn trace() -> impl Strategy<Value = Vec<MemOp>> {
    prop::collection::vec(
        (0u64..BLOCKS, prop::bool::ANY, 0u32..4).prop_map(|(b, w, think)| {
            let op = if w {
                MemOp::write(BlockAddr::new(b))
            } else {
                MemOp::read(BlockAddr::new(b))
            };
            op.with_think(think)
        }),
        0..48,
    )
}

/// Per-core traces (empty traces included: a core may sit idle).
fn traces() -> impl Strategy<Value = Vec<Vec<MemOp>>> {
    prop::collection::vec(trace(), CORES)
}

fn total_ops(traces: &[Vec<MemOp>]) -> u64 {
    traces.iter().map(|t| t.len() as u64).sum()
}

fn run(dir: DirSpec, traces: Vec<Vec<MemOp>>, notify: bool, seed: u64) -> SimReport {
    let mut cfg = small_config(dir)
        .with_seed(seed)
        // Re-check all invariants every few transactions, not just at the
        // end, so transient corruption cannot hide behind a clean finish.
        .with_check_interval(7);
    cfg.notify_clean_evictions = notify;
    Machine::new(cfg).run(traces)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_runs_stay_invariant_clean(
        traces in traces(),
        dir in any_dir(),
        notify in prop::bool::ANY,
        seed in 0u64..1024,
    ) {
        let expected_ops = total_ops(&traces);
        let report = run(dir, traces, notify, seed);
        prop_assert!(
            report.violations.is_empty(),
            "{dir} notify={notify} seed={seed}: {:?}",
            report.violations
        );
        prop_assert_eq!(report.completed_ops, expected_ops);
    }

    #[test]
    fn identical_runs_are_deterministic(
        traces in traces(),
        dir in any_dir(),
        notify in prop::bool::ANY,
        seed in 0u64..1024,
    ) {
        let a = run(dir, traces.clone(), notify, seed);
        let b = run(dir, traces, notify, seed);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.completed_ops, b.completed_ops);
        prop_assert_eq!(a.violations.clone(), b.violations.clone());
        prop_assert_eq!(a.sink.clone(), b.sink.clone());
        prop_assert_eq!(a.timeline.clone(), b.timeline.clone());
    }

    #[test]
    fn timeline_gate_samples_only_when_enabled(
        traces in traces(),
        dir in any_dir(),
        seed in 0u64..1024,
    ) {
        let expected_ops = total_ops(&traces);
        let off = Machine::new(small_config(dir).with_seed(seed)).run(traces.clone());
        prop_assert!(off.timeline.is_empty(), "interval 0 must record nothing");

        let on = Machine::new(small_config(dir).with_seed(seed).with_timeline(64)).run(traces);
        if expected_ops > 0 {
            prop_assert!(!on.timeline.is_empty(), "interval 64 must sample a live run");
        }
        for w in on.timeline.windows(2) {
            prop_assert!(
                w[0].cycle < w[1].cycle && w[0].ops <= w[1].ops,
                "samples must advance: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        // Sampling is observation only: it must not perturb the simulation.
        prop_assert_eq!(off.cycles, on.cycles);
        prop_assert_eq!(off.sink, on.sink);
    }
}
