//! Property tests for the `FaultConfig` plan grammar: every plan the
//! campaign layer can build — legacy single-class, multi-burst
//! schedules, site pins, witnessing — must round-trip through its
//! `Display` string (the replayable form the minimizer saves next to
//! diag snapshots), and an unknown class label must name every valid
//! one in its error, mirroring `dirspec_props.rs`.

use proptest::prelude::*;
use stashdir_sim::{FaultBurst, FaultClass, FaultConfig};

fn any_class() -> impl Strategy<Value = FaultClass> {
    prop_oneof![
        Just(FaultClass::NocDelay),
        Just(FaultClass::NocDuplicate),
        Just(FaultClass::SharerFlip),
        Just(FaultClass::StashClear),
        Just(FaultClass::StashSpurious),
        Just(FaultClass::DropGrant),
        Just(FaultClass::StuckTransient),
    ]
}

fn any_burst() -> impl Strategy<Value = FaultBurst> {
    (
        any_class(),
        0u64..100_000,
        0u64..10_000,
        0u64..50_000,
        0u32..1_001,
    )
        .prop_map(|(class, onset, len, gap, rate_per_mille)| FaultBurst {
            class,
            onset,
            len,
            gap,
            rate_per_mille,
        })
}

/// Plans as the campaign and minimizer produce them: an optional legacy
/// class, up to four burst windows, optional site pins and witnessing.
fn maybe_class() -> impl Strategy<Value = Option<FaultClass>> {
    prop_oneof![Just(None), any_class().prop_map(Some)]
}

fn any_plan() -> impl Strategy<Value = FaultConfig> {
    (
        (maybe_class(), any::<u64>(), 0u32..1_001, 0u64..1_000),
        (
            1u64..100_000_000,
            1u64..100_000_000,
            1u64..10_000_000,
            prop::collection::vec(any_burst(), 0..4),
            prop::collection::vec(0u64..10_000, 0..4),
        ),
        any::<bool>(),
    )
        .prop_map(
            |((class, seed, rate, max), (delay, stuck, watchdog, bursts, sites), witness)| {
                let mut cfg = FaultConfig::disabled();
                cfg.class = class;
                cfg.seed = seed;
                cfg.rate_per_mille = rate;
                cfg.max_injections = max;
                cfg.delay_cycles = delay;
                cfg.stuck_cycles = stuck;
                cfg.watchdog_bound = watchdog;
                cfg.bursts = bursts;
                cfg.sites = sites;
                cfg.witness = witness;
                cfg
            },
        )
}

/// Random lowercase identifiers (with underscores, like real labels)
/// for the unknown-class property.
fn lowercase_word() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..27, 1..17).prop_map(|v| {
        v.into_iter()
            .map(|b| if b == 26 { '_' } else { (b'a' + b) as char })
            .collect()
    })
}

proptest! {
    #[test]
    fn display_parses_back_to_the_same_plan(plan in any_plan()) {
        let shown = plan.to_string();
        let parsed: FaultConfig = shown.parse().expect("Display output must parse");
        prop_assert_eq!(&parsed, &plan);
        // And the rendering is a fixed point: no canonicalization drift.
        prop_assert_eq!(parsed.to_string(), shown);
    }

    #[test]
    fn unknown_class_labels_name_every_valid_label(label in lowercase_word()) {
        if FaultClass::parse(&label).is_some() {
            return Ok(()); // sampled a real label; nothing to check
        }
        let err = format!("class={label}")
            .parse::<FaultConfig>()
            .expect_err("unknown class must not parse");
        for class in FaultClass::ALL {
            prop_assert!(
                err.contains(class.label()),
                "error `{}` does not name valid class `{}`",
                err,
                class.label()
            );
        }
        // Burst schedules go through the same class grammar.
        let err = format!("burst={label}:0:0:0:1000")
            .parse::<FaultConfig>()
            .expect_err("unknown burst class must not parse");
        prop_assert!(err.contains("valid classes"));
    }
}
