//! A minimal hand-rolled Rust lexer.
//!
//! Produces just enough token structure for the lint passes: identifiers,
//! punctuation (with `::` and `=>` fused), literals, lifetimes, and
//! comments (kept as tokens so the directive scanner can read them).
//! No network, no `syn` — consistent with the offline `stubs/` policy.

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// `'a`-style lifetime.
    Lifetime,
    /// Numeric literal.
    Number,
    /// String literal (including raw and byte strings).
    Str,
    /// Character or byte literal.
    Char,
    /// Punctuation; `::` and `=>` are fused into single tokens.
    Punct,
    /// Line or block comment, text preserved.
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Tok {
    /// `true` for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` for punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream. Unterminated literals or comments are
/// tolerated (the rest of the file becomes one token): the lint must
/// never panic on the code it scans.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    let count_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let start_line = line;
        // Comments.
        if c == '/' && i + 1 < n && (chars[i + 1] == '/' || chars[i + 1] == '*') {
            if chars[i + 1] == '/' {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            } else {
                i += 2;
                let mut depth = 1;
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            line += count_lines(&chars[start..i]);
            toks.push(Tok {
                kind: TokKind::Comment,
                text: chars[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Raw strings / raw identifiers: r"..." r#"..."# r#ident.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (raw_at, is_byte) = if c == 'b' && i + 1 < n && chars[i + 1] == 'r' {
                (i + 2, true)
            } else if c == 'r' {
                (i + 1, false)
            } else {
                (usize::MAX, false)
            };
            let _ = is_byte;
            if raw_at != usize::MAX && raw_at < n {
                let mut hashes = 0usize;
                let mut j = raw_at;
                while j < n && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && chars[j] == '"' {
                    // Raw string: scan for `"` followed by `hashes` hashes.
                    j += 1;
                    loop {
                        if j >= n {
                            break;
                        }
                        if chars[j] == '"' {
                            let mut k = j + 1;
                            let mut seen = 0;
                            while k < n && seen < hashes && chars[k] == '#' {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break;
                            }
                        }
                        j += 1;
                    }
                    line += count_lines(&chars[start..j]);
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: chars[start..j].iter().collect(),
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
                if hashes == 1 && c == 'r' && j < n && is_ident_start(chars[j]) {
                    // Raw identifier r#ident.
                    let mut k = j;
                    while k < n && is_ident_cont(chars[k]) {
                        k += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        text: chars[j..k].iter().collect(),
                        line: start_line,
                    });
                    i = k;
                    continue;
                }
            }
        }
        // Byte char / byte string via plain paths below.
        if c == 'b' && i + 1 < n && (chars[i + 1] == '"' || chars[i + 1] == '\'') {
            i += 1; // fall through to string/char handling on the quote
        }
        let c = chars[i];
        // Strings.
        if c == '"' {
            let mut j = i + 1;
            while j < n {
                if chars[j] == '\\' {
                    j += 2;
                    continue;
                }
                if chars[j] == '"' {
                    j += 1;
                    break;
                }
                j += 1;
            }
            line += count_lines(&chars[start..j.min(n)]);
            toks.push(Tok {
                kind: TokKind::Str,
                text: chars[start..j.min(n)].iter().collect(),
                line: start_line,
            });
            i = j.min(n);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied().unwrap_or(' ');
            let is_lifetime =
                is_ident_start(next) && next != '\\' && !(i + 2 < n && chars[i + 2] == '\'');
            if is_lifetime {
                let mut j = i + 1;
                while j < n && is_ident_cont(chars[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[start..j].iter().collect(),
                    line: start_line,
                });
                i = j;
                continue;
            }
            let mut j = i + 1;
            while j < n {
                if chars[j] == '\\' {
                    j += 2;
                    continue;
                }
                if chars[j] == '\'' {
                    j += 1;
                    break;
                }
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Char,
                text: chars[start..j.min(n)].iter().collect(),
                line: start_line,
            });
            i = j.min(n);
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            let mut seen_dot = false;
            while j < n {
                let d = chars[j];
                if is_ident_cont(d) {
                    j += 1;
                } else if d == '.' && !seen_dot && j + 1 < n && chars[j + 1].is_ascii_digit() {
                    seen_dot = true;
                    j += 1;
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Number,
                text: chars[start..j].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_cont(chars[j]) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..j].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Punctuation; fuse `::` and `=>`.
        let fused = match c {
            ':' if i + 1 < n && chars[i + 1] == ':' => Some("::"),
            '=' if i + 1 < n && chars[i + 1] == '>' => Some("=>"),
            _ => None,
        };
        if let Some(f) = fused {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: f.to_string(),
                line: start_line,
            });
            i += 2;
        } else {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line: start_line,
            });
            i += 1;
        }
    }
    toks
}

/// Strips comment tokens (structure-only view for the parsers).
pub fn code_only(toks: &[Tok]) -> Vec<Tok> {
    toks.iter()
        .filter(|t| t.kind != TokKind::Comment)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_idents_puncts_and_fused_ops() {
        let toks = lex("match (a, b) { X::Y => 1, _ => 2 }");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "match", "(", "a", ",", "b", ")", "{", "X", "::", "Y", "=>", "1", ",", "_", "=>",
                "2", "}"
            ]
        );
    }

    #[test]
    fn comments_are_tokens_with_lines() {
        let toks = lex("a\n// hello\nb /* multi\nline */ c");
        let comments: Vec<(&str, u32)> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Comment)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(comments[0], ("// hello", 2));
        assert!(comments[1].0.starts_with("/* multi"));
        assert_eq!(comments[1].1, 3);
        let c = toks.iter().find(|t| t.is_ident("c")).unwrap();
        assert_eq!(c.line, 4);
    }

    #[test]
    fn strings_and_chars_do_not_leak_tokens() {
        let toks = lex(r#"let s = "unwrap() [0] // not a comment"; let c = '[';"#);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let toks = lex(r##"let r = r#"has "quotes" and ]["#; fn f<'a>(x: &'a str) {}"##);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = lex("0..10 1.5 9.007_199e15");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["0", ".", ".", "10", "1.5", "9.007_199e15"]);
    }
}
