//! `stashdir-lint`: repo-specific static analysis for the stash-directory
//! reproduction.
//!
//! Five passes, all built on a hand-rolled lexer (no `syn`, no network —
//! consistent with the offline `stubs/` policy):
//!
//! 1. **Transition coverage** ([`coverage`]): extracts the
//!    `(state × incoming-message)` transition matrix from the protocol
//!    crate's `match` arms and diffs it against the reachable-transition
//!    set recorded by the model-check explorer
//!    (`stashdir_protocol::reachability`). Uncovered reachable
//!    transitions and dead handler arms both fail the lint; pairs that
//!    only arise through in-flight races live on a documented allowlist.
//!    A fourth section diffs the chaos layer's `expected_detector` arms
//!    against the compiled `(FaultClass × Detector)` taxonomy the same
//!    way.
//! 2. **Waits-for liveness** ([`waitsfor`]): extracts which messages
//!    each transient state blocks on and which each home arm emits,
//!    builds the waits-for graph, and cross-checks every blocking edge
//!    against the model — waits no reachable peer can satisfy and probe
//!    cycles with no escape edge are hard findings.
//! 3. **Hot-path panics** ([`panics`]): no `unwrap()` / `expect()` /
//!    panicking indexing in the hot crates (`core`, `protocol`, `sim`,
//!    `mem`) outside an explicit `// lint: allow(...)` directive.
//! 4. **Artifact determinism** ([`determinism`]): taint-tracks from the
//!    CSV/JSON export functions and flags unordered-map iteration and
//!    wall-clock reads that can scramble artifact bytes across runs.
//! 5. **Stat registration** ([`statreg`]): every stat field of
//!    `SimReport` / `TimelineSample` / `FaultSummary` / `Histogram` /
//!    `StatSink` must appear in its merge/serialization path, so
//!    counters cannot be silently dropped from sweep artifacts.
//!
//! `// lint: allow(...)` directives are tracked centrally
//! ([`directives`]): one that suppresses nothing is itself a finding.
//!
//! The `lint` binary runs all passes over a repo root, prints findings
//! and per-pass timings, writes the v1 transition-matrix and v2
//! protocol-model JSON artifacts, and exits non-zero on any finding —
//! `ci.sh` runs it as a hard gate between clippy and tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arms;
pub mod artifact;
pub mod coverage;
pub mod determinism;
pub mod directives;
pub mod files;
pub mod lexer;
pub mod panics;
pub mod statreg;
pub mod waitsfor;

use stashdir_common::json::Value;
use std::io;
use std::path::Path;
use std::time::Instant;

/// Rule name: reachable transition with no handling arm.
pub const RULE_COVERAGE_UNCOVERED: &str = "transition-uncovered";
/// Rule name: handled transition that is neither reachable nor
/// race-allowlisted.
pub const RULE_COVERAGE_DEAD: &str = "transition-dead";
/// Rule name: the coverage extractor could not parse what it expected.
pub const RULE_COVERAGE_PARSE: &str = "coverage-parse";
/// Rule name: a blocking wait no reachable peer can satisfy.
pub const RULE_WAITSFOR_UNSATISFIABLE: &str = "waitsfor-unsatisfiable";
/// Rule name: a probe wait with no escape edge — a deadlockable cycle.
pub const RULE_WAITSFOR_CYCLE: &str = "waitsfor-cycle";
/// Rule name: disallowed `.unwrap()`.
pub const RULE_UNWRAP: &str = "unwrap";
/// Rule name: disallowed `.expect()`.
pub const RULE_EXPECT: &str = "expect";
/// Rule name: disallowed panicking index expression.
pub const RULE_INDEXING: &str = "indexing";
/// Rule name: nondeterminism on an artifact-export path.
pub const RULE_DETERMINISM: &str = "determinism";
/// Rule name: malformed or unknown `// lint:` directive.
pub const RULE_DIRECTIVE: &str = "lint-directive";
/// Rule name: an allow directive that suppresses nothing.
pub const RULE_ALLOW_UNUSED: &str = "lint-allow-unused";
/// Rule name: stat field missing from a merge/serialization path.
pub const RULE_STAT_UNREGISTERED: &str = "stat-unregistered";

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (one of the `RULE_*` constants).
    pub rule: String,
    /// Repo-relative file the finding points at.
    pub file: String,
    /// 1-based line, or 0 when the finding is file- or model-level.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Wall-clock duration of one pass, for the CI timing readout.
#[derive(Debug, Clone)]
pub struct PassTiming {
    /// Pass name as printed by the binary.
    pub name: String,
    /// Elapsed milliseconds.
    pub millis: f64,
}

/// The result of running every pass.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// All findings, sorted by file, line, then rule.
    pub findings: Vec<Finding>,
    /// The v1 transition-matrix artifact (includes the findings).
    pub matrix: Value,
    /// The v2 protocol-model artifact: matrix superset plus the
    /// waits-for graph.
    pub model: Value,
    /// Per-pass wall-clock timings, in run order.
    pub timings: Vec<PassTiming>,
}

fn lap(timings: &mut Vec<PassTiming>, clock: &mut Instant, name: &str) {
    timings.push(PassTiming {
        name: name.to_string(),
        millis: clock.elapsed().as_secs_f64() * 1e3,
    });
    *clock = Instant::now();
}

/// Runs all passes over the repo at `root`.
pub fn run(root: &Path) -> io::Result<LintReport> {
    let mut findings = Vec::new();
    let mut timings = Vec::new();
    let mut clock = Instant::now();

    let sources = coverage::CoverageSources::load(root)?;
    let loaded = files::load(root, files::SCANNED_CRATES)?;
    let mut directives = directives::DirectiveIndex::collect(&loaded);
    lap(&mut timings, &mut clock, "load");

    let model = stashdir_protocol::reachability::reachable_transitions();
    let reachable = coverage::ReachablePairs::from_model(&model);
    lap(&mut timings, &mut clock, "model-check");

    let (sections, cov_findings) = coverage::analyze(&sources, &reachable);
    findings.extend(cov_findings);
    lap(&mut timings, &mut clock, "coverage");

    let (waits, wf_findings) = waitsfor::analyze(&sources, &reachable, &model);
    findings.extend(wf_findings);
    lap(&mut timings, &mut clock, "waitsfor");

    findings.extend(panics::scan_files(&loaded, &mut directives));
    lap(&mut timings, &mut clock, "panics");

    findings.extend(determinism::analyze(&loaded, &mut directives));
    lap(&mut timings, &mut clock, "determinism");

    findings.extend(statreg::check_repo(root)?);
    lap(&mut timings, &mut clock, "statreg");

    findings.extend(directives.finish());
    lap(&mut timings, &mut clock, "directives");

    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    let matrix = artifact::matrix_json(&sections, &findings);
    let model_artifact = artifact::model_json(&sections, &waits, &findings);
    Ok(LintReport {
        findings,
        matrix,
        model: model_artifact,
        timings,
    })
}
