//! `stashdir-lint`: repo-specific static analysis for the stash-directory
//! reproduction.
//!
//! Three passes, all built on a hand-rolled lexer (no `syn`, no network —
//! consistent with the offline `stubs/` policy):
//!
//! 1. **Transition coverage** ([`coverage`]): extracts the
//!    `(state × incoming-message)` transition matrix from the protocol
//!    crate's `match` arms and diffs it against the reachable-transition
//!    set recorded by the model-check explorer
//!    (`stashdir_protocol::reachability`). Uncovered reachable
//!    transitions and dead handler arms both fail the lint; pairs that
//!    only arise through in-flight races live on a documented allowlist.
//!    A fourth section diffs the chaos layer's `expected_detector` arms
//!    against the compiled `(FaultClass × Detector)` taxonomy the same
//!    way.
//! 2. **Hot-path panics** ([`panics`]): no `unwrap()` / `expect()` /
//!    panicking indexing in the hot crates (`core`, `protocol`, `sim`,
//!    `mem`) outside an explicit `// lint: allow(...)` directive.
//! 3. **Stat registration** ([`statreg`]): every stat field of
//!    `SimReport` / `TimelineSample` / `FaultSummary` / `Histogram` /
//!    `StatSink` must appear in its merge/serialization path, so
//!    counters cannot be silently dropped from sweep artifacts.
//!
//! The `lint` binary runs all passes over a repo root, prints findings,
//! writes the transition-matrix JSON artifact, and exits non-zero on any
//! finding — `ci.sh` runs it as a hard gate between clippy and tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arms;
pub mod artifact;
pub mod coverage;
pub mod lexer;
pub mod panics;
pub mod statreg;

use stashdir_common::json::Value;
use std::io;
use std::path::Path;

/// Rule name: reachable transition with no handling arm.
pub const RULE_COVERAGE_UNCOVERED: &str = "transition-uncovered";
/// Rule name: handled transition that is neither reachable nor
/// race-allowlisted.
pub const RULE_COVERAGE_DEAD: &str = "transition-dead";
/// Rule name: the coverage extractor could not parse what it expected.
pub const RULE_COVERAGE_PARSE: &str = "coverage-parse";
/// Rule name: disallowed `.unwrap()`.
pub const RULE_UNWRAP: &str = "unwrap";
/// Rule name: disallowed `.expect()`.
pub const RULE_EXPECT: &str = "expect";
/// Rule name: disallowed panicking index expression.
pub const RULE_INDEXING: &str = "indexing";
/// Rule name: malformed or unknown `// lint:` directive.
pub const RULE_DIRECTIVE: &str = "lint-directive";
/// Rule name: stat field missing from a merge/serialization path.
pub const RULE_STAT_UNREGISTERED: &str = "stat-unregistered";

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (one of the `RULE_*` constants).
    pub rule: String,
    /// Repo-relative file the finding points at.
    pub file: String,
    /// 1-based line, or 0 when the finding is file- or model-level.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The result of running every pass.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// All findings, sorted by file, line, then rule.
    pub findings: Vec<Finding>,
    /// The transition-matrix artifact (includes the findings).
    pub matrix: Value,
}

/// Runs all passes over the repo at `root`.
pub fn run(root: &Path) -> io::Result<LintReport> {
    let mut findings = Vec::new();

    let sources = coverage::CoverageSources::load(root)?;
    let reachable = coverage::ReachablePairs::from_model(
        &stashdir_protocol::reachability::reachable_transitions(),
    );
    let (sections, cov_findings) = coverage::analyze(&sources, &reachable);
    findings.extend(cov_findings);

    findings.extend(panics::scan_repo(root)?);
    findings.extend(statreg::check_repo(root)?);

    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    let matrix = artifact::matrix_json(&sections, &findings);
    Ok(LintReport { findings, matrix })
}
