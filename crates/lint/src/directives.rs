//! Centralized `// lint:` directive handling: parsing, validation, rule
//! suppression, and staleness accounting.
//!
//! Directives are ordinary comments:
//!
//! * `// lint: allow(unwrap)` — allows the named rule(s) on the
//!   directive's own line and the line below it (so it works both as a
//!   trailing comment and as a comment above the call).
//! * `// lint: allow-file(indexing)` — allows the rule(s) for the whole
//!   file.
//!
//! Every directive is tracked: one that suppresses nothing by the end of
//! the run is itself a finding ([`crate::RULE_ALLOW_UNUSED`]), so stale
//! allows cannot rot silently after refactors. Unknown rule names are
//! findings too ([`crate::RULE_DIRECTIVE`]) — a typo must not disable a
//! rule.

use crate::files::SourceFile;
use crate::lexer::{lex, TokKind};
use crate::{
    Finding, RULE_ALLOW_UNUSED, RULE_DETERMINISM, RULE_DIRECTIVE, RULE_EXPECT, RULE_INDEXING,
    RULE_UNWRAP,
};
use std::collections::{BTreeMap, BTreeSet};

/// The rules an allow directive may name.
pub const SUPPRESSIBLE: &[&str] = &[RULE_UNWRAP, RULE_EXPECT, RULE_INDEXING, RULE_DETERMINISM];

/// One parsed allow directive.
#[derive(Debug, Clone)]
struct Directive {
    rule: String,
    /// Line the comment sits on.
    line: u32,
    file_wide: bool,
}

#[derive(Debug, Default)]
struct FileDirectives {
    directives: Vec<Directive>,
    /// rule → file-wide directive lines.
    file_rules: BTreeMap<String, Vec<u32>>,
    /// rule → (covered line → directive line).
    line_rules: BTreeMap<String, BTreeMap<u32, u32>>,
    /// `(directive line, rule)` pairs that suppressed at least one site.
    used: BTreeSet<(u32, String)>,
}

/// The repo-wide directive index. Passes ask [`DirectiveIndex::allows`]
/// before reporting a suppressible finding; [`DirectiveIndex::finish`]
/// yields the parse findings plus one finding per never-used directive.
#[derive(Debug, Default)]
pub struct DirectiveIndex {
    files: BTreeMap<String, FileDirectives>,
    findings: Vec<Finding>,
}

impl DirectiveIndex {
    /// Parses every `lint:` directive out of the comment tokens of
    /// `files`.
    pub fn collect(files: &[SourceFile]) -> DirectiveIndex {
        let mut index = DirectiveIndex::default();
        for f in files {
            index.collect_file(&f.label, &f.src);
        }
        index
    }

    /// Parses one file's directives into the index.
    pub fn collect_file(&mut self, file: &str, src: &str) {
        let entry = self.files.entry(file.to_string()).or_default();
        for t in lex(src).iter().filter(|t| t.kind == TokKind::Comment) {
            let Some(at) = t.text.find("lint:") else {
                continue;
            };
            let rest = t.text[at + "lint:".len()..].trim_start();
            let (file_wide, args) = if let Some(a) = rest.strip_prefix("allow-file(") {
                (true, a)
            } else if let Some(a) = rest.strip_prefix("allow(") {
                (false, a)
            } else {
                self.findings.push(Finding {
                    rule: RULE_DIRECTIVE.to_string(),
                    file: file.to_string(),
                    line: t.line,
                    message: format!("unrecognized lint directive: `{}`", rest.trim_end()),
                });
                continue;
            };
            let Some(close) = args.find(')') else {
                self.findings.push(Finding {
                    rule: RULE_DIRECTIVE.to_string(),
                    file: file.to_string(),
                    line: t.line,
                    message: "unterminated lint directive".to_string(),
                });
                continue;
            };
            for rule in args[..close].split(',').map(str::trim) {
                if !SUPPRESSIBLE.contains(&rule) {
                    self.findings.push(Finding {
                        rule: RULE_DIRECTIVE.to_string(),
                        file: file.to_string(),
                        line: t.line,
                        message: format!(
                            "unknown rule `{rule}` in lint directive (known: {SUPPRESSIBLE:?})"
                        ),
                    });
                    continue;
                }
                entry.directives.push(Directive {
                    rule: rule.to_string(),
                    line: t.line,
                    file_wide,
                });
                if file_wide {
                    entry
                        .file_rules
                        .entry(rule.to_string())
                        .or_default()
                        .push(t.line);
                } else {
                    let lines = entry.line_rules.entry(rule.to_string()).or_default();
                    lines.insert(t.line, t.line);
                    lines.insert(t.line + 1, t.line);
                }
            }
        }
    }

    /// Whether `rule` is allowed at `file:line`, marking the covering
    /// directive as used. Line directives take precedence over file-wide
    /// ones so a redundant narrow allow still registers as exercised.
    pub fn allows(&mut self, file: &str, rule: &str, line: u32) -> bool {
        let Some(entry) = self.files.get_mut(file) else {
            return false;
        };
        if let Some(&directive_line) = entry.line_rules.get(rule).and_then(|m| m.get(&line)) {
            entry.used.insert((directive_line, rule.to_string()));
            return true;
        }
        if let Some(lines) = entry.file_rules.get(rule) {
            if let Some(&first) = lines.first() {
                entry.used.insert((first, rule.to_string()));
                return true;
            }
        }
        false
    }

    /// Consumes the index: parse findings plus one finding per directive
    /// that never suppressed anything.
    pub fn finish(self) -> Vec<Finding> {
        let mut findings = self.findings;
        for (file, entry) in &self.files {
            for d in &entry.directives {
                if entry.used.contains(&(d.line, d.rule.clone())) {
                    continue;
                }
                let form = if d.file_wide { "allow-file" } else { "allow" };
                findings.push(Finding {
                    rule: RULE_ALLOW_UNUSED.to_string(),
                    file: file.clone(),
                    line: d.line,
                    message: format!(
                        "`// lint: {form}({})` suppresses nothing; remove the stale directive",
                        d.rule
                    ),
                });
            }
        }
        findings
    }
}
