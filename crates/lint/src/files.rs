//! Shared source loading: the repo-wide passes (panics, determinism,
//! directive accounting) scan the same file set, so it is read once and
//! handed to each of them.

use std::io;
use std::path::{Path, PathBuf};

/// Every crate whose `src/` tree the repo-wide passes scan. The panic
/// lint restricts itself to the hot subset ([`crate::panics::HOT_CRATES`]);
/// the determinism pass and directive accounting cover all of these.
pub const SCANNED_CRATES: &[&str] = &["common", "core", "harness", "mem", "protocol", "sim"];

/// One loaded source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes (`crates/sim/src/machine.rs`).
    pub label: String,
    /// File contents.
    pub src: String,
}

impl SourceFile {
    /// The crate name a `crates/<name>/src/...` label belongs to, if any.
    pub fn crate_name(&self) -> Option<&str> {
        self.label.strip_prefix("crates/")?.split('/').next()
    }
}

/// Recursively collects the `.rs` files under `dir`, sorted.
pub fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads the `src/` trees of `crates` under `root`, sorted by label.
/// Crates missing from the tree (e.g. trimmed fixture repos) are skipped.
pub fn load(root: &Path, crates: &[&str]) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for krate in crates {
        let dir = root.join("crates").join(krate).join("src");
        if !dir.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        rs_files(&dir, &mut paths)?;
        for path in paths {
            let src = std::fs::read_to_string(&path)?;
            let label = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile { label, src });
        }
    }
    Ok(files)
}
