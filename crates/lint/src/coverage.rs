//! Protocol transition-coverage analysis.
//!
//! Extracts the `(state × incoming-message)` transition matrix from the
//! protocol crate's `match` arms and diffs it against the reachable
//! transition set recorded by the model-check explorer
//! ([`stashdir_protocol::reachability`]). A reachable transition with no
//! handling arm is an **uncovered** finding; a handled pair that is
//! neither reachable nor on the documented race allowlist is a **dead**
//! finding. The race allowlist holds the pairs that only arise with
//! in-flight messages — the atomic-transaction model cannot reach them,
//! but the timed simulator can, so the handler arms are load-bearing.
//!
//! The same machinery covers a fourth decision layer: the chaos
//! taxonomy's `(fault class × detector)` matrix, diffed between the
//! `expected_detector` match arms and the compiled
//! [`stashdir_sim::TAXONOMY`] table.

use crate::arms::{
    extract_enum, find_fn_body, matches_in, normalize_pattern, split_alternatives, split_tuple,
    MatchArm, Variant,
};
use crate::lexer::{code_only, lex, Tok};
use crate::{Finding, RULE_COVERAGE_DEAD, RULE_COVERAGE_PARSE, RULE_COVERAGE_UNCOVERED};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

/// `(state, probe)` pairs handled in `probe()` that are reachable only
/// through in-flight races, with their justification. The atomic model
/// cannot produce them; deleting the arm would still break the simulator.
pub const RACE_ALLOWED_PROBE: &[(&str, &str, &str)] = &[
    (
        "Shared",
        "FwdGetS",
        "eviction race: the old owner degraded to S while the forward was in flight",
    ),
    (
        "Shared",
        "FwdGetM",
        "eviction race: the old owner degraded to S while the forward was in flight",
    ),
    (
        "Modified",
        "Inv",
        "Inv crossing an in-flight ownership grant: the sharer already promoted",
    ),
    (
        "Exclusive",
        "Inv",
        "Inv crossing an in-flight ownership grant: the sharer already promoted",
    ),
    (
        "Shared",
        "Recall",
        "Recall vs FwdGetS race: the tracked owner already degraded to S",
    ),
];

/// `(request, view-kind)` pairs handled at the home that only arise with
/// in-flight messages.
pub const RACE_ALLOWED_HOME: &[(&str, &str, &str)] = &[
    (
        "Upgrade",
        "Exclusive",
        "Upgrade racing a GetM: the view moved to Exclusive while the Upgrade was in flight",
    ),
    (
        "PutS",
        "Exclusive",
        "stale PutS: ownership moved before the eviction notice arrived",
    ),
    (
        "PutE",
        "Shared",
        "stale PutE: the E-put lost a FwdGetS race",
    ),
    (
        "PutM",
        "Shared",
        "stale PutM: the M-put lost a FwdGetS race",
    ),
];

/// No local-access pairs are race-only: all eight are atomically
/// reachable.
pub const RACE_ALLOWED_LOCAL: &[(&str, &str, &str)] = &[];

/// No fault-response pairs are exceptional: the taxonomy is the complete
/// truth about which detector owns which fault class.
pub const RACE_ALLOWED_FAULT: &[(&str, &str, &str)] = &[];

/// One axis of a transition matrix: the ordered universe of canonical
/// labels, extracted from the enum definitions in the scanned source.
#[derive(Debug, Clone)]
pub struct Axis {
    /// Axis name, for diagnostics.
    pub name: &'static str,
    /// All canonical labels, in declaration order.
    pub labels: Vec<String>,
}

impl Axis {
    /// Builds an axis from extracted enum variants. A tuple variant whose
    /// payload type appears in `payload_enums` is expanded per payload
    /// variant (`Discovery(Share)`); any other payload is dropped from
    /// the label (`Exclusive(CoreId)` → `Exclusive`).
    fn from_variants(
        name: &'static str,
        variants: &[Variant],
        payload_enums: &BTreeMap<String, Vec<String>>,
    ) -> Axis {
        let mut labels = Vec::new();
        for v in variants {
            match v.payload.as_ref().and_then(|p| payload_enums.get(p)) {
                Some(inner) => {
                    for iv in inner {
                        labels.push(format!("{}({})", v.name, iv));
                    }
                }
                None => labels.push(v.name.clone()),
            }
        }
        Axis { name, labels }
    }

    /// Expands one normalized pattern alternative to the axis labels it
    /// covers. `Err` carries a description of an unrecognized pattern.
    fn expand(&self, alt: &str) -> Result<Vec<String>, String> {
        let is_binding = |s: &str| {
            s == "_"
                || s == ".."
                || s.chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_')
        };
        if is_binding(alt) {
            return Ok(self.labels.clone());
        }
        if self.labels.iter().any(|l| l == alt) {
            return Ok(vec![alt.to_string()]);
        }
        if let Some(open) = alt.find('(') {
            let head = &alt[..open];
            let inner = alt[open + 1..].trim_end_matches(')');
            // Payload-insensitive axis: `Exclusive(owner)` covers the
            // `Exclusive` kind.
            if self.labels.iter().any(|l| l == head) {
                return Ok(vec![head.to_string()]);
            }
            let prefixed: Vec<String> = self
                .labels
                .iter()
                .filter(|l| l.starts_with(&format!("{head}(")))
                .cloned()
                .collect();
            if !prefixed.is_empty() {
                if is_binding(inner) {
                    return Ok(prefixed);
                }
                let exact = format!("{head}({inner})");
                if prefixed.contains(&exact) {
                    return Ok(vec![exact]);
                }
            }
        }
        Err(format!(
            "pattern alternative `{alt}` matches nothing on axis {} ({:?})",
            self.name, self.labels
        ))
    }
}

/// A label pair with its source attribution.
pub type PairMap = BTreeMap<(String, String), (String, u32)>;

/// One transition-matrix section plus its diff against the model.
#[derive(Debug, Clone)]
pub struct Section {
    /// Section name (`private_probe`, `local_access`, `home`).
    pub name: &'static str,
    /// Row labels (first axis).
    pub rows: Vec<String>,
    /// Column labels (second axis).
    pub cols: Vec<String>,
    /// Pairs handled in source, with `(file, line)` of the covering arm.
    pub source: PairMap,
    /// Pairs the model-check explorer reaches.
    pub reachable: BTreeSet<(String, String)>,
    /// Race-only pairs: allowed in source despite being model-unreachable.
    pub race_allowed: BTreeMap<(String, String), &'static str>,
}

impl Section {
    /// Diffs source coverage against reachability, appending findings.
    pub fn diff(&self, findings: &mut Vec<Finding>) {
        for pair in &self.reachable {
            if !self.source.contains_key(pair) {
                findings.push(Finding {
                    rule: RULE_COVERAGE_UNCOVERED.to_string(),
                    file: self.attribution_file(),
                    line: 0,
                    message: format!(
                        "[{}] transition ({}, {}) is reachable in the model but no match arm handles it",
                        self.name, pair.0, pair.1
                    ),
                });
            }
        }
        for (pair, (file, line)) in &self.source {
            if !self.reachable.contains(pair) && !self.race_allowed.contains_key(pair) {
                findings.push(Finding {
                    rule: RULE_COVERAGE_DEAD.to_string(),
                    file: file.clone(),
                    line: *line,
                    message: format!(
                        "[{}] handled transition ({}, {}) is neither model-reachable nor on the race allowlist (dead arm?)",
                        self.name, pair.0, pair.1
                    ),
                });
            }
        }
        for pair in self.race_allowed.keys() {
            if self.reachable.contains(pair) {
                findings.push(Finding {
                    rule: RULE_COVERAGE_DEAD.to_string(),
                    file: self.attribution_file(),
                    line: 0,
                    message: format!(
                        "[{}] race-allowlist entry ({}, {}) is now model-reachable; remove it from the allowlist",
                        self.name, pair.0, pair.1
                    ),
                });
            }
            if !self.source.contains_key(pair) {
                findings.push(Finding {
                    rule: RULE_COVERAGE_UNCOVERED.to_string(),
                    file: self.attribution_file(),
                    line: 0,
                    message: format!(
                        "[{}] race-allowlist transition ({}, {}) has no handling arm in source",
                        self.name, pair.0, pair.1
                    ),
                });
            }
        }
    }

    fn attribution_file(&self) -> String {
        self.source
            .values()
            .next()
            .map(|(f, _)| f.clone())
            .unwrap_or_else(|| self.name.to_string())
    }
}

/// The protocol source files the coverage pass reads.
#[derive(Debug, Clone)]
pub struct CoverageSources {
    /// `crates/protocol/src/msg.rs` (Probe, DiscoveryIntent, Request).
    pub msg: String,
    /// `crates/protocol/src/private.rs` (PrivState, `probe`,
    /// `local_access`).
    pub private: String,
    /// `crates/protocol/src/home.rs` (DirView, `decide*`).
    pub home: String,
    /// `crates/common/src/ops.rs` (MemOpKind).
    pub ops: String,
    /// `crates/sim/src/fault.rs` (FaultClass, Detector,
    /// `expected_detector`).
    pub fault: String,
}

impl CoverageSources {
    /// Reads the five files from a repo root.
    pub fn load(root: &Path) -> io::Result<CoverageSources> {
        Ok(CoverageSources {
            msg: std::fs::read_to_string(root.join("crates/protocol/src/msg.rs"))?,
            private: std::fs::read_to_string(root.join("crates/protocol/src/private.rs"))?,
            home: std::fs::read_to_string(root.join("crates/protocol/src/home.rs"))?,
            ops: std::fs::read_to_string(root.join("crates/common/src/ops.rs"))?,
            fault: std::fs::read_to_string(root.join("crates/sim/src/fault.rs"))?,
        })
    }
}

/// The reachable pairs the sections are diffed against, as label pairs.
#[derive(Debug, Clone, Default)]
pub struct ReachablePairs {
    /// `(PrivState, Probe)` pairs.
    pub probe: BTreeSet<(String, String)>,
    /// `(PrivState, MemOpKind)` pairs.
    pub local: BTreeSet<(String, String)>,
    /// `(Request, DirView-kind)` pairs.
    pub home: BTreeSet<(String, String)>,
    /// `(FaultClass, Detector)` pairs (the chaos taxonomy).
    pub fault: BTreeSet<(String, String)>,
}

impl ReachablePairs {
    /// Converts the protocol crate's recorded transition set, plus the
    /// sim crate's compiled fault taxonomy: just as the first three
    /// sections diff source arms against the model checker, the
    /// `fault_response` section diffs `expected_detector`'s arms against
    /// [`stashdir_sim::TAXONOMY`].
    pub fn from_model(set: &stashdir_protocol::reachability::TransitionSet) -> ReachablePairs {
        let own = |it: &mut dyn Iterator<Item = (&'static str, &'static str)>| {
            it.map(|(a, b)| (a.to_string(), b.to_string())).collect()
        };
        ReachablePairs {
            probe: own(&mut set.probe_pairs()),
            local: own(&mut set.local_pairs()),
            home: own(&mut set.home_pairs()),
            fault: stashdir_sim::TAXONOMY
                .iter()
                .map(|&(class, det)| (format!("{class:?}"), format!("{det:?}")))
                .collect(),
        }
    }
}

fn allowlist(entries: &'static [(&str, &str, &str)]) -> BTreeMap<(String, String), &'static str> {
    entries
        .iter()
        .map(|&(a, b, why)| ((a.to_string(), b.to_string()), why))
        .collect()
}

struct Extractor<'a> {
    findings: &'a mut Vec<Finding>,
    file: String,
}

impl Extractor<'_> {
    fn parse_error(&mut self, line: u32, msg: String) {
        self.findings.push(Finding {
            rule: RULE_COVERAGE_PARSE.to_string(),
            file: self.file.clone(),
            line,
            message: msg,
        });
    }

    /// Expands a tuple-pattern arm `(a, b)` against two axes into pairs.
    fn tuple_arm_pairs(&mut self, arm: &MatchArm, ax_a: &Axis, ax_b: &Axis, out: &mut PairMap) {
        let Some(elems) = split_tuple(&arm.pattern) else {
            // A bare `_` arm covers the full product.
            let norm = normalize_pattern(&arm.pattern);
            if norm == "_" {
                for a in &ax_a.labels {
                    for b in &ax_b.labels {
                        out.entry((a.clone(), b.clone()))
                            .or_insert_with(|| (self.file.clone(), arm.line));
                    }
                }
            } else {
                self.parse_error(arm.line, format!("expected tuple pattern, got `{norm}`"));
            }
            return;
        };
        if elems.len() != 2 {
            self.parse_error(arm.line, "expected a 2-tuple pattern".to_string());
            return;
        }
        let expand_elem = |ex: &mut Extractor<'_>, toks: &[Tok], ax: &Axis| -> Vec<String> {
            let mut labels = Vec::new();
            for alt in split_alternatives(toks) {
                match ax.expand(&normalize_pattern(&alt)) {
                    Ok(mut l) => labels.append(&mut l),
                    Err(e) => ex.parse_error(arm.line, e),
                }
            }
            labels
        };
        let a_labels = expand_elem(self, &elems[0], ax_a);
        let b_labels = expand_elem(self, &elems[1], ax_b);
        for a in &a_labels {
            for b in &b_labels {
                out.entry((a.clone(), b.clone()))
                    .or_insert_with(|| (self.file.clone(), arm.line));
            }
        }
    }

    /// Expands a single-axis arm pattern into the labels it covers.
    fn arm_labels(&mut self, arm: &MatchArm, ax: &Axis) -> Vec<String> {
        let mut labels = Vec::new();
        for alt in split_alternatives(&arm.pattern) {
            match ax.expand(&normalize_pattern(&alt)) {
                Ok(mut l) => labels.append(&mut l),
                Err(e) => self.parse_error(arm.line, e),
            }
        }
        labels
    }
}

/// Finds a `match` in `fn name` whose scrutinee mentions `needle`.
fn fn_match(toks: &[Tok], fn_name: &str, needle: &str) -> Option<crate::arms::MatchExpr> {
    let body = find_fn_body(toks, fn_name)?;
    matches_in(body)
        .into_iter()
        .find(|m| m.scrutinee.contains(needle))
}

/// Runs the full coverage analysis: three matrix sections plus any parse
/// or diff findings.
pub fn analyze(src: &CoverageSources, reachable: &ReachablePairs) -> (Vec<Section>, Vec<Finding>) {
    let mut findings = Vec::new();
    let msg_toks = code_only(&lex(&src.msg));
    let private_toks = code_only(&lex(&src.private));
    let home_toks = code_only(&lex(&src.home));
    let ops_toks = code_only(&lex(&src.ops));
    let fault_toks = code_only(&lex(&src.fault));

    // Axes from the enum definitions.
    let mut payloads: BTreeMap<String, Vec<String>> = BTreeMap::new();
    if let Some(v) = extract_enum(&msg_toks, "DiscoveryIntent") {
        payloads.insert(
            "DiscoveryIntent".to_string(),
            v.into_iter().map(|x| x.name).collect(),
        );
    }
    let axis = |toks: &[Tok],
                enum_name: &str,
                axis_name: &'static str,
                file: &str,
                expand_payloads: bool,
                findings: &mut Vec<Finding>|
     -> Axis {
        match extract_enum(toks, enum_name) {
            Some(v) => {
                let empty = BTreeMap::new();
                let table = if expand_payloads { &payloads } else { &empty };
                Axis::from_variants(axis_name, &v, table)
            }
            None => {
                findings.push(Finding {
                    rule: RULE_COVERAGE_PARSE.to_string(),
                    file: file.to_string(),
                    line: 0,
                    message: format!("enum {enum_name} not found"),
                });
                Axis {
                    name: axis_name,
                    labels: Vec::new(),
                }
            }
        }
    };
    let ax_state = axis(
        &private_toks,
        "PrivState",
        "PrivState",
        "crates/protocol/src/private.rs",
        false,
        &mut findings,
    );
    let ax_probe = axis(
        &msg_toks,
        "Probe",
        "Probe",
        "crates/protocol/src/msg.rs",
        true,
        &mut findings,
    );
    let ax_req = axis(
        &msg_toks,
        "Request",
        "Request",
        "crates/protocol/src/msg.rs",
        false,
        &mut findings,
    );
    let ax_view = axis(
        &home_toks,
        "DirView",
        "DirView",
        "crates/protocol/src/home.rs",
        false,
        &mut findings,
    );
    let ax_op = axis(
        &ops_toks,
        "MemOpKind",
        "MemOpKind",
        "crates/common/src/ops.rs",
        false,
        &mut findings,
    );
    let ax_fault = axis(
        &fault_toks,
        "FaultClass",
        "FaultClass",
        "crates/sim/src/fault.rs",
        false,
        &mut findings,
    );
    let ax_detector = axis(
        &fault_toks,
        "Detector",
        "Detector",
        "crates/sim/src/fault.rs",
        false,
        &mut findings,
    );

    // Section 1: the probe table in `probe()`.
    let mut probe_source = PairMap::new();
    {
        let mut ex = Extractor {
            findings: &mut findings,
            file: "crates/protocol/src/private.rs".to_string(),
        };
        match fn_match(&private_toks, "probe", "state") {
            Some(m) => {
                for arm in m.arms.iter().filter(|a| !a.is_rejection()) {
                    ex.tuple_arm_pairs(arm, &ax_state, &ax_probe, &mut probe_source);
                }
            }
            None => ex.parse_error(0, "fn probe: match on (state, probe) not found".to_string()),
        }
    }

    // Section 2: the local-access table in `local_access()`.
    let mut local_source = PairMap::new();
    {
        let mut ex = Extractor {
            findings: &mut findings,
            file: "crates/protocol/src/private.rs".to_string(),
        };
        match fn_match(&private_toks, "local_access", "state") {
            Some(m) => {
                for arm in m.arms.iter().filter(|a| !a.is_rejection()) {
                    ex.tuple_arm_pairs(arm, &ax_state, &ax_op, &mut local_source);
                }
            }
            None => ex.parse_error(
                0,
                "fn local_access: match on (state, op) not found".to_string(),
            ),
        }
    }

    // Section 3: the home tables. `decide` routes demand requests to a
    // per-request handler whose match on the view supplies the kinds;
    // `decide_put` nests a view match inside each request arm.
    let mut home_source = PairMap::new();
    {
        let mut ex = Extractor {
            findings: &mut findings,
            file: "crates/protocol/src/home.rs".to_string(),
        };
        let handler_names = ["decide_gets", "decide_getm"];
        match fn_match(&home_toks, "decide", "req") {
            Some(m) => {
                for arm in m.arms.iter().filter(|a| !a.is_rejection()) {
                    let reqs = ex.arm_labels(arm, &ax_req);
                    let callee = arm
                        .body
                        .iter()
                        .find(|t| handler_names.contains(&t.text.as_str()))
                        .map(|t| t.text.clone());
                    let Some(callee) = callee else {
                        ex.parse_error(
                            arm.line,
                            "decide arm routes to no known handler function".to_string(),
                        );
                        continue;
                    };
                    match fn_match(&home_toks, &callee, "view") {
                        Some(vm) => {
                            for varm in vm.arms.iter().filter(|a| !a.is_rejection()) {
                                for kind in ex.arm_labels(varm, &ax_view) {
                                    for r in &reqs {
                                        home_source
                                            .entry((r.clone(), kind.clone()))
                                            .or_insert_with(|| (ex.file.clone(), varm.line));
                                    }
                                }
                            }
                        }
                        None => ex.parse_error(
                            arm.line,
                            format!("handler {callee}: match on view not found"),
                        ),
                    }
                }
            }
            None => ex.parse_error(0, "fn decide: match on req not found".to_string()),
        }
        match fn_match(&home_toks, "decide_put", "req") {
            Some(m) => {
                for arm in m.arms.iter().filter(|a| !a.is_rejection()) {
                    let reqs = ex.arm_labels(arm, &ax_req);
                    let inner = matches_in(&arm.body)
                        .into_iter()
                        .find(|im| im.scrutinee.contains("view"));
                    match inner {
                        Some(vm) => {
                            for varm in vm.arms.iter().filter(|a| !a.is_rejection()) {
                                for kind in ex.arm_labels(varm, &ax_view) {
                                    for r in &reqs {
                                        home_source
                                            .entry((r.clone(), kind.clone()))
                                            .or_insert_with(|| (ex.file.clone(), varm.line));
                                    }
                                }
                            }
                        }
                        None => ex.parse_error(
                            arm.line,
                            "decide_put arm has no nested match on view".to_string(),
                        ),
                    }
                }
            }
            None => ex.parse_error(0, "fn decide_put: match on req not found".to_string()),
        }
    }

    // Section 4: the fault-response layer. `expected_detector` matches on
    // the fault class and names the owning detector in each arm body;
    // the pairs are diffed against the compiled chaos taxonomy exactly
    // like the protocol sections are diffed against the model checker.
    let mut fault_source = PairMap::new();
    {
        let mut ex = Extractor {
            findings: &mut findings,
            file: "crates/sim/src/fault.rs".to_string(),
        };
        match fn_match(&fault_toks, "expected_detector", "class") {
            Some(m) => {
                for arm in m.arms.iter().filter(|a| !a.is_rejection()) {
                    let classes = ex.arm_labels(arm, &ax_fault);
                    let detector = arm
                        .body
                        .iter()
                        .find(|t| ax_detector.labels.iter().any(|l| t.is_ident(l)))
                        .map(|t| t.text.clone());
                    let Some(detector) = detector else {
                        ex.parse_error(
                            arm.line,
                            "expected_detector arm names no Detector variant".to_string(),
                        );
                        continue;
                    };
                    for class in classes {
                        fault_source
                            .entry((class, detector.clone()))
                            .or_insert_with(|| (ex.file.clone(), arm.line));
                    }
                }
            }
            None => ex.parse_error(
                0,
                "fn expected_detector: match on class not found".to_string(),
            ),
        }
    }

    let sections = vec![
        Section {
            name: "private_probe",
            rows: ax_state.labels.clone(),
            cols: ax_probe.labels.clone(),
            source: probe_source,
            reachable: reachable.probe.clone(),
            race_allowed: allowlist(RACE_ALLOWED_PROBE),
        },
        Section {
            name: "local_access",
            rows: ax_state.labels.clone(),
            cols: ax_op.labels.clone(),
            source: local_source,
            reachable: reachable.local.clone(),
            race_allowed: allowlist(RACE_ALLOWED_LOCAL),
        },
        Section {
            name: "home",
            rows: ax_req.labels.clone(),
            cols: ax_view.labels.clone(),
            source: home_source,
            reachable: reachable.home.clone(),
            race_allowed: allowlist(RACE_ALLOWED_HOME),
        },
        Section {
            name: "fault_response",
            rows: ax_fault.labels.clone(),
            cols: ax_detector.labels.clone(),
            source: fault_source,
            reachable: reachable.fault.clone(),
            race_allowed: allowlist(RACE_ALLOWED_FAULT),
        },
    ];
    for s in &sections {
        s.diff(&mut findings);
    }
    (sections, findings)
}
