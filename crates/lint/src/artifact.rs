//! JSON artifact emission, via `stashdir-common::json` (no external
//! serializers):
//!
//! * [`matrix_json`] — the v1 `stashdir-lint/transition-matrix/v1`
//!   artifact, kept byte-identical for downstream readers.
//! * [`model_json`] — the v2 `stashdir/protocol-model/v2` artifact: a
//!   strict superset of v1 (same `sections`/`findings` shape) plus a
//!   `model` object carrying the waits-for graph.
//! * [`findings_json`] — the machine-readable findings list for
//!   `lint --json`.
//! * [`verify_v1_compat`] — checks that an artifact is readable under
//!   the v1 shape, so the v2 schema cannot silently drop what v1
//!   consumers parse.

use crate::coverage::Section;
use crate::directives::SUPPRESSIBLE;
use crate::waitsfor::WaitsForModel;
use crate::Finding;
use stashdir_common::json::Value;

/// Schema identifier of the v1 transition-matrix artifact.
pub const SCHEMA_V1: &str = "stashdir-lint/transition-matrix/v1";
/// Schema identifier of the v2 protocol-model artifact.
pub const SCHEMA_V2: &str = "stashdir/protocol-model/v2";
/// Schema identifier of the findings artifact.
pub const SCHEMA_FINDINGS: &str = "stashdir-lint/findings/v1";
/// Schema identifier of the chaos-campaign coverage artifact (written
/// by the harness `campaign` binary, verified here so `ci.sh` can gate
/// on its shape the same way it gates on the protocol model).
pub const SCHEMA_CHAOS: &str = "stashdir/chaos-coverage/v1";

fn pair_array(pairs: impl Iterator<Item = (String, String)>) -> Value {
    Value::array(
        pairs
            .map(|(a, b)| Value::array(vec![Value::String(a), Value::String(b)]))
            .collect(),
    )
}

fn label_array(labels: &[String]) -> Value {
    Value::array(labels.iter().cloned().map(Value::String).collect())
}

/// Renders one matrix section, including the computed diff sets.
fn section_json(s: &Section) -> Value {
    let uncovered: Vec<(String, String)> = s
        .reachable
        .iter()
        .filter(|p| !s.source.contains_key(*p))
        .cloned()
        .collect();
    let dead: Vec<(String, String)> = s
        .source
        .keys()
        .filter(|p| !s.reachable.contains(*p) && !s.race_allowed.contains_key(*p))
        .cloned()
        .collect();
    Value::object(vec![
        ("name".to_string(), Value::String(s.name.to_string())),
        ("rows".to_string(), label_array(&s.rows)),
        ("cols".to_string(), label_array(&s.cols)),
        ("source".to_string(), pair_array(s.source.keys().cloned())),
        (
            "reachable".to_string(),
            pair_array(s.reachable.iter().cloned()),
        ),
        (
            "race_allowed".to_string(),
            Value::array(
                s.race_allowed
                    .iter()
                    .map(|((a, b), why)| {
                        Value::array(vec![
                            Value::String(a.clone()),
                            Value::String(b.clone()),
                            Value::String(why.to_string()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("uncovered".to_string(), pair_array(uncovered.into_iter())),
        ("dead".to_string(), pair_array(dead.into_iter())),
    ])
}

fn finding_json(f: &Finding) -> Value {
    Value::object(vec![
        ("rule".to_string(), Value::String(f.rule.clone())),
        ("file".to_string(), Value::String(f.file.clone())),
        ("line".to_string(), Value::Number(f.line as f64)),
        ("message".to_string(), Value::String(f.message.clone())),
    ])
}

fn findings_array(findings: &[Finding]) -> Value {
    Value::array(findings.iter().map(finding_json).collect())
}

/// Renders the full transition-matrix artifact (v1 — kept byte-stable).
pub fn matrix_json(sections: &[Section], findings: &[Finding]) -> Value {
    Value::object(vec![
        ("schema".to_string(), Value::String(SCHEMA_V1.to_string())),
        (
            "sections".to_string(),
            Value::array(sections.iter().map(section_json).collect()),
        ),
        ("findings".to_string(), findings_array(findings)),
    ])
}

fn waits_json(waits: &WaitsForModel) -> Value {
    let requesters = waits
        .requesters
        .iter()
        .map(|r| {
            Value::object(vec![
                ("state".to_string(), Value::String(r.state.clone())),
                ("op".to_string(), Value::String(r.op.clone())),
                (
                    "blocks_on".to_string(),
                    match &r.request {
                        Some(req) => Value::String(req.clone()),
                        None => Value::Null,
                    },
                ),
                ("line".to_string(), Value::Number(r.line as f64)),
            ])
        })
        .collect();
    let home = waits
        .home
        .iter()
        .map(|h| {
            Value::object(vec![
                ("request".to_string(), Value::String(h.request.clone())),
                ("view".to_string(), Value::String(h.view.clone())),
                (
                    "emits".to_string(),
                    Value::array(
                        h.emits
                            .iter()
                            .map(|(p, _)| Value::String(p.clone()))
                            .collect(),
                    ),
                ),
                ("grants".to_string(), label_array(&h.grants)),
                ("model_emits".to_string(), label_array(&h.model_emits)),
                ("model_grants".to_string(), label_array(&h.model_grants)),
                ("reachable".to_string(), Value::Bool(h.reachable)),
                ("line".to_string(), Value::Number(h.line as f64)),
            ])
        })
        .collect();
    let probes = waits
        .probes
        .iter()
        .map(|p| {
            Value::object(vec![
                ("probe".to_string(), Value::String(p.probe.clone())),
                ("handled_states".to_string(), label_array(&p.handled_states)),
                ("escape".to_string(), Value::Bool(p.escape)),
            ])
        })
        .collect();
    Value::object(vec![
        ("requesters".to_string(), Value::array(requesters)),
        ("home".to_string(), Value::array(home)),
        ("probes".to_string(), Value::array(probes)),
    ])
}

/// Renders the v2 protocol-model artifact: the v1 sections and findings
/// verbatim, plus the waits-for graph under `model`.
pub fn model_json(sections: &[Section], waits: &WaitsForModel, findings: &[Finding]) -> Value {
    Value::object(vec![
        ("schema".to_string(), Value::String(SCHEMA_V2.to_string())),
        (
            "sections".to_string(),
            Value::array(sections.iter().map(section_json).collect()),
        ),
        ("model".to_string(), waits_json(waits)),
        ("findings".to_string(), findings_array(findings)),
    ])
}

/// Renders the machine-readable findings artifact for `lint --json`.
pub fn findings_json(findings: &[Finding]) -> Value {
    Value::object(vec![
        (
            "schema".to_string(),
            Value::String(SCHEMA_FINDINGS.to_string()),
        ),
        (
            "findings".to_string(),
            Value::array(
                findings
                    .iter()
                    .map(|f| {
                        Value::object(vec![
                            (
                                "pass".to_string(),
                                Value::String(pass_of(&f.rule).to_string()),
                            ),
                            ("rule".to_string(), Value::String(f.rule.clone())),
                            (
                                "severity".to_string(),
                                Value::String(severity_of(&f.rule).to_string()),
                            ),
                            ("file".to_string(), Value::String(f.file.clone())),
                            ("line".to_string(), Value::Number(f.line as f64)),
                            ("message".to_string(), Value::String(f.message.clone())),
                            (
                                "suppressible".to_string(),
                                Value::Bool(SUPPRESSIBLE.contains(&f.rule.as_str())),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The pass a rule belongs to, as surfaced in the findings artifact.
pub fn pass_of(rule: &str) -> &'static str {
    match rule {
        crate::RULE_COVERAGE_UNCOVERED | crate::RULE_COVERAGE_DEAD | crate::RULE_COVERAGE_PARSE => {
            "coverage"
        }
        crate::RULE_WAITSFOR_UNSATISFIABLE | crate::RULE_WAITSFOR_CYCLE => "waitsfor",
        crate::RULE_UNWRAP | crate::RULE_EXPECT | crate::RULE_INDEXING => "panics",
        crate::RULE_DETERMINISM => "determinism",
        crate::RULE_STAT_UNREGISTERED => "statreg",
        crate::RULE_DIRECTIVE | crate::RULE_ALLOW_UNUSED => "directives",
        _ => "unknown",
    }
}

/// Finding severity: liveness and coverage defects are errors; stale
/// directives are warnings (still gate-failing, but mechanical to fix).
pub fn severity_of(rule: &str) -> &'static str {
    match rule {
        crate::RULE_ALLOW_UNUSED => "warning",
        _ => "error",
    }
}

/// Checks that `artifact` parses under the v1 reader shape: a known
/// schema id, a `sections` array whose entries carry the v1 keys, and a
/// `findings` array of `{rule, file, line, message}` objects. Accepts
/// both the v1 and v2 schema ids — the v2 artifact must stay readable by
/// v1 consumers that ignore unknown keys.
pub fn verify_v1_compat(artifact: &Value) -> Result<(), String> {
    let obj = artifact.as_object().ok_or("artifact is not an object")?;
    let get = |key: &str| -> Result<&Value, String> {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key `{key}`"))
    };
    let schema = get("schema")?.as_str().ok_or("`schema` is not a string")?;
    if schema != SCHEMA_V1 && schema != SCHEMA_V2 {
        return Err(format!("unknown schema `{schema}`"));
    }
    let sections = get("sections")?
        .as_array()
        .ok_or("`sections` is not an array")?;
    for (i, s) in sections.iter().enumerate() {
        let s_obj = s
            .as_object()
            .ok_or_else(|| format!("section {i} is not an object"))?;
        for key in [
            "name",
            "rows",
            "cols",
            "source",
            "reachable",
            "race_allowed",
            "uncovered",
            "dead",
        ] {
            let v = s_obj
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("section {i} missing key `{key}`"))?;
            let ok = if key == "name" {
                v.as_str().is_some()
            } else {
                v.as_array().is_some()
            };
            if !ok {
                return Err(format!("section {i} key `{key}` has the wrong type"));
            }
        }
    }
    let findings = get("findings")?
        .as_array()
        .ok_or("`findings` is not an array")?;
    for (i, f) in findings.iter().enumerate() {
        let f_obj = f
            .as_object()
            .ok_or_else(|| format!("finding {i} is not an object"))?;
        for (key, want_str) in [
            ("rule", true),
            ("file", true),
            ("line", false),
            ("message", true),
        ] {
            let v = f_obj
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("finding {i} missing key `{key}`"))?;
            let ok = if want_str {
                v.as_str().is_some()
            } else {
                v.as_f64().is_some()
            };
            if !ok {
                return Err(format!("finding {i} key `{key}` has the wrong type"));
            }
        }
    }
    Ok(())
}

/// Checks that `artifact` is a well-formed chaos-coverage artifact
/// (`stashdir/chaos-coverage/v1`): the schema string, the round ledger,
/// per-section hit counts whose `[row, col, n]` triples are consistent
/// with the section's `witnessed` total, and the campaign-level
/// `pairwise`/`total` gates.
///
/// # Errors
///
/// Returns the first shape violation found, phrased for the lint
/// binary's `--verify-coverage` diagnostics.
pub fn verify_chaos_coverage(artifact: &Value) -> Result<(), String> {
    let obj = artifact.as_object().ok_or("artifact is not an object")?;
    let get = |key: &str| -> Result<&Value, String> {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key `{key}`"))
    };
    let schema = get("schema")?.as_str().ok_or("`schema` is not a string")?;
    if schema != SCHEMA_CHAOS {
        return Err(format!("unknown schema `{schema}`"));
    }
    get("model")?.as_str().ok_or("`model` is not a string")?;
    for key in ["seed", "ops"] {
        get(key)?
            .as_u64()
            .ok_or_else(|| format!("`{key}` is not an integer"))?;
    }
    let rounds = get("rounds")?
        .as_array()
        .ok_or("`rounds` is not an array")?;
    if rounds.is_empty() {
        return Err("`rounds` is empty".to_string());
    }
    for (i, r) in rounds.iter().enumerate() {
        r.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("round {i} missing string `name`"))?;
        for key in ["cases", "new_pairs", "witnessed"] {
            r.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("round {i} missing integer `{key}`"))?;
        }
    }
    let sections = get("sections")?
        .as_array()
        .ok_or("`sections` is not an array")?;
    let mut hit_pairs = 0u64;
    for (i, s) in sections.iter().enumerate() {
        s.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("section {i} missing string `name`"))?;
        let reachable = s
            .get("reachable")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("section {i} missing integer `reachable`"))?;
        let witnessed = s
            .get("witnessed")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("section {i} missing integer `witnessed`"))?;
        if witnessed > reachable {
            return Err(format!(
                "section {i} witnessed {witnessed} exceeds reachable {reachable}"
            ));
        }
        let hits = s
            .get("hits")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("section {i} missing array `hits`"))?;
        for (j, h) in hits.iter().enumerate() {
            let triple = h
                .as_array()
                .ok_or_else(|| format!("section {i} hit {j} is not an array"))?;
            if triple.len() != 3
                || triple[0].as_str().is_none()
                || triple[1].as_str().is_none()
                || triple[2].as_u64().is_none_or(|n| n == 0)
            {
                return Err(format!(
                    "section {i} hit {j} is not a [row, col, count>0] triple"
                ));
            }
        }
        if hits.len() as u64 != witnessed {
            return Err(format!(
                "section {i} has {} hits but claims {witnessed} witnessed",
                hits.len()
            ));
        }
        hit_pairs += witnessed;
        for key in ["unwitnessed", "unexpected"] {
            s.get(key)
                .and_then(Value::as_array)
                .ok_or_else(|| format!("section {i} missing array `{key}`"))?;
        }
    }
    let pairwise = get("pairwise")?;
    let caught = pairwise
        .get("caught")
        .and_then(Value::as_u64)
        .ok_or("`pairwise` missing integer `caught`")?;
    let classes = pairwise
        .get("total")
        .and_then(Value::as_u64)
        .ok_or("`pairwise` missing integer `total`")?;
    if caught > classes {
        return Err(format!(
            "pairwise caught {caught} exceeds class total {classes}"
        ));
    }
    let total = get("total")?;
    let witnessed = total
        .get("witnessed")
        .and_then(Value::as_u64)
        .ok_or("`total` missing integer `witnessed`")?;
    let reachable = total
        .get("reachable")
        .and_then(Value::as_u64)
        .ok_or("`total` missing integer `reachable`")?;
    total
        .get("baseline_witnessed")
        .and_then(Value::as_u64)
        .ok_or("`total` missing integer `baseline_witnessed`")?;
    if witnessed > reachable {
        return Err(format!(
            "total witnessed {witnessed} exceeds reachable {reachable}"
        ));
    }
    if hit_pairs != witnessed {
        return Err(format!(
            "sections witness {hit_pairs} pairs but `total` claims {witnessed}"
        ));
    }
    get("cases")?.as_array().ok_or("`cases` is not an array")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
      "schema": "stashdir/chaos-coverage/v1",
      "model": "builtin",
      "seed": 7,
      "ops": 400,
      "rounds": [{"name": "baseline", "cases": 7, "new_pairs": 15, "witnessed": 15}],
      "sections": [{
        "name": "fault_response",
        "reachable": 7,
        "witnessed": 1,
        "hits": [["SharerFlip", "Invariant", 9]],
        "unwitnessed": [],
        "unexpected": []
      }],
      "pairwise": {"caught": 7, "total": 7},
      "total": {"reachable": 48, "witnessed": 1, "baseline_witnessed": 1},
      "cases": []
    }"#;

    #[test]
    fn well_formed_coverage_artifact_verifies() {
        let value = Value::parse(SAMPLE).unwrap();
        verify_chaos_coverage(&value).expect("sample verifies");
    }

    #[test]
    fn coverage_check_rejects_shape_violations() {
        let mangle = |from: &str, to: &str, want: &str| {
            let text = SAMPLE.replace(from, to);
            assert_ne!(text, SAMPLE, "pattern {from:?} must match the sample");
            let err = verify_chaos_coverage(&Value::parse(&text).unwrap())
                .expect_err("mangled artifact must fail");
            assert!(err.contains(want), "{err:?} should mention {want:?}");
        };
        // Wrong schema id.
        mangle("chaos-coverage/v1", "chaos-coverage/v0", "unknown schema");
        // Hit count inconsistent with the section's witnessed total.
        mangle(
            "\"witnessed\": 1,\n        \"hits\"",
            "\"witnessed\": 2,\n        \"hits\"",
            "claims 2 witnessed",
        );
        // Witnessed beyond reachable.
        mangle("\"reachable\": 7", "\"reachable\": 0", "exceeds reachable");
        // A zero hit count is not a witness.
        mangle("\"Invariant\", 9", "\"Invariant\", 0", "count>0");
        // Section totals must agree with the campaign total.
        mangle(
            "\"witnessed\": 1, \"baseline",
            "\"witnessed\": 5, \"baseline",
            "claims 5",
        );
        // The round ledger cannot be empty.
        mangle(
            "[{\"name\": \"baseline\", \"cases\": 7, \"new_pairs\": 15, \"witnessed\": 15}]",
            "[]",
            "`rounds` is empty",
        );
    }
}
