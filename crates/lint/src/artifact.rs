//! JSON artifact emission for the transition matrix, via
//! `stashdir-common::json` (no external serializers).

use crate::coverage::Section;
use crate::Finding;
use stashdir_common::json::Value;

fn pair_array(pairs: impl Iterator<Item = (String, String)>) -> Value {
    Value::array(
        pairs
            .map(|(a, b)| Value::array(vec![Value::String(a), Value::String(b)]))
            .collect(),
    )
}

fn label_array(labels: &[String]) -> Value {
    Value::array(labels.iter().cloned().map(Value::String).collect())
}

/// Renders one matrix section, including the computed diff sets.
fn section_json(s: &Section) -> Value {
    let uncovered: Vec<(String, String)> = s
        .reachable
        .iter()
        .filter(|p| !s.source.contains_key(*p))
        .cloned()
        .collect();
    let dead: Vec<(String, String)> = s
        .source
        .keys()
        .filter(|p| !s.reachable.contains(*p) && !s.race_allowed.contains_key(*p))
        .cloned()
        .collect();
    Value::object(vec![
        ("name".to_string(), Value::String(s.name.to_string())),
        ("rows".to_string(), label_array(&s.rows)),
        ("cols".to_string(), label_array(&s.cols)),
        ("source".to_string(), pair_array(s.source.keys().cloned())),
        (
            "reachable".to_string(),
            pair_array(s.reachable.iter().cloned()),
        ),
        (
            "race_allowed".to_string(),
            Value::array(
                s.race_allowed
                    .iter()
                    .map(|((a, b), why)| {
                        Value::array(vec![
                            Value::String(a.clone()),
                            Value::String(b.clone()),
                            Value::String(why.to_string()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("uncovered".to_string(), pair_array(uncovered.into_iter())),
        ("dead".to_string(), pair_array(dead.into_iter())),
    ])
}

/// Renders the full transition-matrix artifact.
pub fn matrix_json(sections: &[Section], findings: &[Finding]) -> Value {
    Value::object(vec![
        (
            "schema".to_string(),
            Value::String("stashdir-lint/transition-matrix/v1".to_string()),
        ),
        (
            "sections".to_string(),
            Value::array(sections.iter().map(section_json).collect()),
        ),
        (
            "findings".to_string(),
            Value::array(
                findings
                    .iter()
                    .map(|f| {
                        Value::object(vec![
                            ("rule".to_string(), Value::String(f.rule.clone())),
                            ("file".to_string(), Value::String(f.file.clone())),
                            ("line".to_string(), Value::Number(f.line as f64)),
                            ("message".to_string(), Value::String(f.message.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}
