//! The `lint` binary: runs every `stashdir-lint` pass over a repo root,
//! prints findings and per-pass timings, writes the artifacts, and exits
//! non-zero when anything fires.
//!
//! ```text
//! usage: lint [--root DIR] [--artifact FILE | --no-artifact]
//!             [--model FILE] [--json FILE] [--quiet]
//!        lint --verify-v1 FILE
//!        lint --verify-coverage FILE
//! ```
//!
//! Defaults: `--root .`, v1 artifact at
//! `<root>/results/lint/transition_matrix.json`, v2 protocol model at
//! `<root>/results/lint/protocol_model.json`. `--json FILE` additionally
//! writes the machine-readable findings artifact. All artifact writes go
//! through the shared atomic temp+rename discipline
//! (`stashdir_common::fsio`).
//!
//! `--verify-v1 FILE` is a standalone mode: it parses `FILE` and checks
//! it is readable under the v1 artifact shape (both schema ids accepted),
//! exiting 0/1 — `ci.sh` runs it against the freshly written v2 model.
//!
//! `--verify-coverage FILE` is the same idea for the harness campaign's
//! `stashdir/chaos-coverage/v1` artifact: shape, per-section hit-count
//! consistency and the pairwise/total gate fields — `ci.sh` runs it
//! against the E19 smoke's `coverage.json`.

use stashdir_common::fsio::write_atomic;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn write_artifact(path: &Path, value: &stashdir_common::json::Value) -> Result<(), ExitCode> {
    let mut text = value.render_pretty();
    text.push('\n');
    write_atomic(path, &text).map_err(|e| {
        eprintln!("lint: cannot write {}: {e}", path.display());
        ExitCode::from(2)
    })
}

fn verify_v1(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lint: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let value = match stashdir_common::json::Value::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("lint: {} is not valid JSON: {e}", path.display());
            return ExitCode::from(1);
        }
    };
    match stashdir_lint::artifact::verify_v1_compat(&value) {
        Ok(()) => {
            println!("lint: {} is v1-readable", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lint: {} fails the v1 reader: {e}", path.display());
            ExitCode::from(1)
        }
    }
}

fn verify_coverage(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lint: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let value = match stashdir_common::json::Value::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("lint: {} is not valid JSON: {e}", path.display());
            return ExitCode::from(1);
        }
    };
    match stashdir_lint::artifact::verify_chaos_coverage(&value) {
        Ok(()) => {
            println!(
                "lint: {} is a well-formed coverage artifact",
                path.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lint: {} fails the coverage check: {e}", path.display());
            ExitCode::from(1)
        }
    }
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut artifact: Option<PathBuf> = None;
    let mut model: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut verify: Option<PathBuf> = None;
    let mut verify_cov: Option<PathBuf> = None;
    let mut no_artifact = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--artifact" => match args.next() {
                Some(v) => artifact = Some(PathBuf::from(v)),
                None => return usage("--artifact needs a value"),
            },
            "--model" => match args.next() {
                Some(v) => model = Some(PathBuf::from(v)),
                None => return usage("--model needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs a value"),
            },
            "--verify-v1" => match args.next() {
                Some(v) => verify = Some(PathBuf::from(v)),
                None => return usage("--verify-v1 needs a value"),
            },
            "--verify-coverage" => match args.next() {
                Some(v) => verify_cov = Some(PathBuf::from(v)),
                None => return usage("--verify-coverage needs a value"),
            },
            "--no-artifact" => no_artifact = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if let Some(path) = verify {
        return verify_v1(&path);
    }
    if let Some(path) = verify_cov {
        return verify_coverage(&path);
    }

    let report = match stashdir_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: failed to read sources under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if !quiet {
        let total: f64 = report.timings.iter().map(|t| t.millis).sum();
        let laps: Vec<String> = report
            .timings
            .iter()
            .map(|t| format!("{} {:.0}ms", t.name, t.millis))
            .collect();
        println!("lint: passes: {} (total {total:.0}ms)", laps.join(", "));
    }

    if !no_artifact {
        let lint_dir = root.join("results").join("lint");
        let matrix_path = artifact.unwrap_or_else(|| lint_dir.join("transition_matrix.json"));
        if let Err(code) = write_artifact(&matrix_path, &report.matrix) {
            return code;
        }
        let model_path = model.unwrap_or_else(|| lint_dir.join("protocol_model.json"));
        if let Err(code) = write_artifact(&model_path, &report.model) {
            return code;
        }
        if !quiet {
            println!(
                "lint: transition matrix written to {}",
                matrix_path.display()
            );
            println!("lint: protocol model written to {}", model_path.display());
        }
    }
    if let Some(path) = json {
        let findings = stashdir_lint::artifact::findings_json(&report.findings);
        if let Err(code) = write_artifact(&path, &findings) {
            return code;
        }
        if !quiet {
            println!("lint: findings written to {}", path.display());
        }
    }

    for f in &report.findings {
        println!("{f}");
    }
    if report.findings.is_empty() {
        if !quiet {
            println!("lint: clean (0 findings)");
        }
        ExitCode::SUCCESS
    } else {
        println!("lint: {} finding(s)", report.findings.len());
        ExitCode::from(1)
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("lint: {err}");
    }
    eprintln!(
        "usage: lint [--root DIR] [--artifact FILE | --no-artifact] [--model FILE] [--json FILE] [--quiet]\n       lint --verify-v1 FILE\n       lint --verify-coverage FILE"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
