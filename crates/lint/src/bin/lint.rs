//! The `lint` binary: runs every `stashdir-lint` pass over a repo root,
//! prints findings, writes the transition-matrix artifact, and exits
//! non-zero when anything fires.
//!
//! ```text
//! usage: lint [--root DIR] [--artifact FILE | --no-artifact] [--quiet]
//! ```
//!
//! Defaults: `--root .`, artifact at
//! `<root>/results/lint/transition_matrix.json`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut artifact: Option<PathBuf> = None;
    let mut no_artifact = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--artifact" => match args.next() {
                Some(v) => artifact = Some(PathBuf::from(v)),
                None => return usage("--artifact needs a value"),
            },
            "--no-artifact" => no_artifact = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match stashdir_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: failed to read sources under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if !no_artifact {
        let path = artifact.unwrap_or_else(|| {
            root.join("results")
                .join("lint")
                .join("transition_matrix.json")
        });
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("lint: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        let mut text = report.matrix.render_pretty();
        text.push('\n');
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        if !quiet {
            println!("lint: transition matrix written to {}", path.display());
        }
    }

    for f in &report.findings {
        println!("{f}");
    }
    if report.findings.is_empty() {
        if !quiet {
            println!("lint: clean (0 findings)");
        }
        ExitCode::SUCCESS
    } else {
        println!("lint: {} finding(s)", report.findings.len());
        ExitCode::from(1)
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("lint: {err}");
    }
    eprintln!("usage: lint [--root DIR] [--artifact FILE | --no-artifact] [--quiet]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
