//! The stat-registration rule: every field of the statistics-carrying
//! structs must appear in the corresponding merge/serialization paths.
//!
//! Adding a counter to `SimReport` (or a field to `Histogram`) and
//! forgetting to thread it through the artifact serializer or the merge
//! function silently drops data from sweeps — exactly the failure mode a
//! future sharded/mergeable `StatSink` would amplify. The rule is
//! textual on purpose: a field is "registered" when its identifier
//! occurs in the registry function's body.

use crate::arms::{extract_struct_fields, find_fn_body, matching_close};
use crate::lexer::{code_only, lex, Tok, TokKind};
use crate::{Finding, RULE_COVERAGE_PARSE, RULE_STAT_UNREGISTERED};
use std::io;
use std::path::Path;

/// Where a struct's fields must be mentioned.
#[derive(Debug, Clone)]
pub struct Registry {
    /// Repo-relative path of the file holding the registry function.
    pub file: &'static str,
    /// Function whose body must mention every field.
    pub function: &'static str,
}

/// One struct-to-registries rule.
#[derive(Debug, Clone)]
pub struct RegRule {
    /// Repo-relative path of the file defining the struct.
    pub struct_file: &'static str,
    /// The struct whose fields are checked.
    pub struct_name: &'static str,
    /// Every registry the fields must appear in.
    pub registries: &'static [Registry],
}

/// The repo's stat-registration rules.
pub const RULES: &[RegRule] = &[
    RegRule {
        struct_file: "crates/sim/src/report.rs",
        struct_name: "SimReport",
        registries: &[
            Registry {
                file: "crates/harness/src/artifact.rs",
                function: "report_to_json",
            },
            Registry {
                file: "crates/harness/src/artifact.rs",
                function: "report_from_json",
            },
        ],
    },
    RegRule {
        struct_file: "crates/sim/src/report.rs",
        struct_name: "TimelineSample",
        registries: &[
            Registry {
                file: "crates/harness/src/artifact.rs",
                function: "sample_to_json",
            },
            Registry {
                file: "crates/harness/src/artifact.rs",
                function: "sample_from_json",
            },
        ],
    },
    RegRule {
        struct_file: "crates/sim/src/fault.rs",
        struct_name: "FaultSummary",
        registries: &[
            Registry {
                file: "crates/harness/src/artifact.rs",
                function: "fault_to_json",
            },
            Registry {
                file: "crates/harness/src/artifact.rs",
                function: "fault_from_json",
            },
        ],
    },
    RegRule {
        struct_file: "crates/sim/src/bank.rs",
        struct_name: "BackendStats",
        // The backend counters (DLS remote accesses, opaque indirection)
        // funnel through two sites: `export` writes them into the bank's
        // shard sink under `backend.*`, and `merge` folds per-bank shards
        // together. A counter missing from either silently vanishes from
        // the E18 shoot-out artifacts.
        registries: &[
            Registry {
                file: "crates/sim/src/bank.rs",
                function: "BackendStats::export",
            },
            Registry {
                file: "crates/sim/src/bank.rs",
                function: "BackendStats::merge",
            },
        ],
    },
    RegRule {
        struct_file: "crates/common/src/stats.rs",
        struct_name: "Histogram",
        registries: &[Registry {
            file: "crates/common/src/stats.rs",
            function: "Histogram::merge",
        }],
    },
    RegRule {
        struct_file: "crates/common/src/stats.rs",
        struct_name: "StatSink",
        // The interned sink's registration site is `merge`: it is the
        // one function every shard's counters funnel through before the
        // artifact writer serializes the merged sink, and its body
        // touches every field (the intern tables *and* the value
        // vector), so a field added without merge support fails here.
        registries: &[Registry {
            file: "crates/common/src/stats.rs",
            function: "StatSink::merge",
        }],
    },
];

/// Resolves a registry function name to its body tokens.
///
/// A plain `name` matches the first `fn name` in the file. A qualified
/// `Type::name` restricts the search to inherent `impl Type { .. }`
/// blocks, so two types in one file can both register through a method
/// with the same name (e.g. `Histogram::merge` vs `StatSink::merge`
/// in `stats.rs` after the interned-sink rework).
fn find_registry_fn_body<'a>(toks: &'a [Tok], name: &str) -> Option<&'a [Tok]> {
    let Some((type_name, fn_name)) = name.split_once("::") else {
        return find_fn_body(toks, name);
    };
    let mut i = 0;
    while i + 1 < toks.len() {
        // An inherent impl lexes as `impl Type {`; trait impls
        // (`impl Trait for Type`) put the trait name after `impl` and
        // are skipped, which is what we want — registration sites are
        // inherent methods.
        if toks[i].is_ident("impl") && toks[i + 1].is_ident(type_name) {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct("{") {
                j += 1;
            }
            if j < toks.len() {
                if let Some(close) = matching_close(toks, j) {
                    if let Some(body) = find_fn_body(&toks[j + 1..close], fn_name) {
                        return Some(body);
                    }
                    i = close;
                    continue;
                }
            }
        }
        i += 1;
    }
    None
}

/// Checks one struct's fields against one registry function body; both
/// arguments are pre-lexed, comment-free token streams.
pub fn check_registration(
    struct_toks: &[Tok],
    struct_name: &str,
    struct_file: &str,
    registry_toks: &[Tok],
    registry_file: &str,
    registry_fn: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(fields) = extract_struct_fields(struct_toks, struct_name) else {
        findings.push(Finding {
            rule: RULE_COVERAGE_PARSE.to_string(),
            file: struct_file.to_string(),
            line: 0,
            message: format!("struct {struct_name} not found"),
        });
        return findings;
    };
    let Some(body) = find_registry_fn_body(registry_toks, registry_fn) else {
        findings.push(Finding {
            rule: RULE_COVERAGE_PARSE.to_string(),
            file: registry_file.to_string(),
            line: 0,
            message: format!("registry function {registry_fn} not found"),
        });
        return findings;
    };
    let mentioned: std::collections::BTreeSet<&str> = body
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    for (field, line) in &fields {
        if !mentioned.contains(field.as_str()) {
            findings.push(Finding {
                rule: RULE_STAT_UNREGISTERED.to_string(),
                file: struct_file.to_string(),
                line: *line,
                message: format!(
                    "stat field `{struct_name}.{field}` does not appear in {registry_fn}() ({registry_file}); it would be dropped on merge/serialization"
                ),
            });
        }
    }
    findings
}

/// Runs all [`RULES`] against the repo at `root`.
pub fn check_repo(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut cache: std::collections::BTreeMap<&'static str, Vec<Tok>> =
        std::collections::BTreeMap::new();
    let mut load = |file: &'static str| -> io::Result<Vec<Tok>> {
        if let Some(t) = cache.get(file) {
            return Ok(t.clone());
        }
        let src = std::fs::read_to_string(root.join(file))?;
        let toks = code_only(&lex(&src));
        cache.insert(file, toks.clone());
        Ok(toks)
    };
    for rule in RULES {
        let struct_toks = load(rule.struct_file)?;
        for reg in rule.registries {
            let reg_toks = load(reg.file)?;
            findings.extend(check_registration(
                &struct_toks,
                rule.struct_name,
                rule.struct_file,
                &reg_toks,
                reg.file,
                reg.function,
            ));
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{code_only, lex};

    #[test]
    fn missing_field_is_flagged() {
        let s = code_only(&lex(
            "pub struct R { pub hits: u64, pub misses: u64, pub stalls: u64 }",
        ));
        let r = code_only(&lex("fn to_json(r: &R) { emit(r.hits); emit(r.misses); }"));
        let f = check_registration(&s, "R", "s.rs", &r, "r.rs", "to_json");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("R.stalls"));
    }

    #[test]
    fn fully_registered_struct_is_clean() {
        let s = code_only(&lex("pub struct R { a: u64, b: u64 }"));
        let r = code_only(&lex("fn m(x: &mut R, y: &R) { x.a += y.a; x.b |= y.b; }"));
        assert!(check_registration(&s, "R", "s.rs", &r, "r.rs", "m").is_empty());
    }

    #[test]
    fn qualified_name_picks_the_right_impl_block() {
        // Two types with same-named `merge` methods in one file: the
        // bare name would always resolve to A's, silently checking the
        // wrong body for B.
        let src = "
            pub struct A { x: u64 }
            pub struct B { y: u64, z: u64 }
            impl A { fn merge(&mut self, o: &A) { self.x += o.x; } }
            impl Clone for B { fn clone(&self) -> B { todo!() } }
            impl B { fn merge(&mut self, o: &B) { self.y += o.y; } }
        ";
        let toks = code_only(&lex(src));
        let f = check_registration(&toks, "B", "s.rs", &toks, "s.rs", "B::merge");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("B.z"));
        assert!(check_registration(&toks, "A", "s.rs", &toks, "s.rs", "A::merge").is_empty());
    }

    #[test]
    fn qualified_name_missing_method_is_a_parse_finding() {
        let toks = code_only(&lex(
            "pub struct A { x: u64 } impl A { fn other(&self) {} }",
        ));
        let f = check_registration(&toks, "A", "s.rs", &toks, "s.rs", "A::merge");
        assert_eq!(f.len(), 1);
        assert!(f[0].rule == crate::RULE_COVERAGE_PARSE);
    }
}
