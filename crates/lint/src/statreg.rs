//! The stat-registration rule: every field of the statistics-carrying
//! structs must appear in the corresponding merge/serialization paths.
//!
//! Adding a counter to `SimReport` (or a field to `Histogram`) and
//! forgetting to thread it through the artifact serializer or the merge
//! function silently drops data from sweeps — exactly the failure mode a
//! future sharded/mergeable `StatSink` would amplify. The rule is
//! textual on purpose: a field is "registered" when its identifier
//! occurs in the registry function's body.

use crate::arms::{extract_struct_fields, find_fn_body};
use crate::lexer::{code_only, lex, Tok, TokKind};
use crate::{Finding, RULE_COVERAGE_PARSE, RULE_STAT_UNREGISTERED};
use std::io;
use std::path::Path;

/// Where a struct's fields must be mentioned.
#[derive(Debug, Clone)]
pub struct Registry {
    /// Repo-relative path of the file holding the registry function.
    pub file: &'static str,
    /// Function whose body must mention every field.
    pub function: &'static str,
}

/// One struct-to-registries rule.
#[derive(Debug, Clone)]
pub struct RegRule {
    /// Repo-relative path of the file defining the struct.
    pub struct_file: &'static str,
    /// The struct whose fields are checked.
    pub struct_name: &'static str,
    /// Every registry the fields must appear in.
    pub registries: &'static [Registry],
}

/// The repo's stat-registration rules.
pub const RULES: &[RegRule] = &[
    RegRule {
        struct_file: "crates/sim/src/report.rs",
        struct_name: "SimReport",
        registries: &[
            Registry {
                file: "crates/harness/src/artifact.rs",
                function: "report_to_json",
            },
            Registry {
                file: "crates/harness/src/artifact.rs",
                function: "report_from_json",
            },
        ],
    },
    RegRule {
        struct_file: "crates/sim/src/report.rs",
        struct_name: "TimelineSample",
        registries: &[
            Registry {
                file: "crates/harness/src/artifact.rs",
                function: "sample_to_json",
            },
            Registry {
                file: "crates/harness/src/artifact.rs",
                function: "sample_from_json",
            },
        ],
    },
    RegRule {
        struct_file: "crates/sim/src/fault.rs",
        struct_name: "FaultSummary",
        registries: &[
            Registry {
                file: "crates/harness/src/artifact.rs",
                function: "fault_to_json",
            },
            Registry {
                file: "crates/harness/src/artifact.rs",
                function: "fault_from_json",
            },
        ],
    },
    RegRule {
        struct_file: "crates/common/src/stats.rs",
        struct_name: "Histogram",
        registries: &[Registry {
            file: "crates/common/src/stats.rs",
            function: "merge",
        }],
    },
    RegRule {
        struct_file: "crates/common/src/stats.rs",
        struct_name: "StatSink",
        registries: &[Registry {
            file: "crates/common/src/stats.rs",
            function: "merge_add",
        }],
    },
];

/// Checks one struct's fields against one registry function body; both
/// arguments are pre-lexed, comment-free token streams.
pub fn check_registration(
    struct_toks: &[Tok],
    struct_name: &str,
    struct_file: &str,
    registry_toks: &[Tok],
    registry_file: &str,
    registry_fn: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(fields) = extract_struct_fields(struct_toks, struct_name) else {
        findings.push(Finding {
            rule: RULE_COVERAGE_PARSE.to_string(),
            file: struct_file.to_string(),
            line: 0,
            message: format!("struct {struct_name} not found"),
        });
        return findings;
    };
    let Some(body) = find_fn_body(registry_toks, registry_fn) else {
        findings.push(Finding {
            rule: RULE_COVERAGE_PARSE.to_string(),
            file: registry_file.to_string(),
            line: 0,
            message: format!("registry function {registry_fn} not found"),
        });
        return findings;
    };
    let mentioned: std::collections::BTreeSet<&str> = body
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    for (field, line) in &fields {
        if !mentioned.contains(field.as_str()) {
            findings.push(Finding {
                rule: RULE_STAT_UNREGISTERED.to_string(),
                file: struct_file.to_string(),
                line: *line,
                message: format!(
                    "stat field `{struct_name}.{field}` does not appear in {registry_fn}() ({registry_file}); it would be dropped on merge/serialization"
                ),
            });
        }
    }
    findings
}

/// Runs all [`RULES`] against the repo at `root`.
pub fn check_repo(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut cache: std::collections::BTreeMap<&'static str, Vec<Tok>> =
        std::collections::BTreeMap::new();
    let mut load = |file: &'static str| -> io::Result<Vec<Tok>> {
        if let Some(t) = cache.get(file) {
            return Ok(t.clone());
        }
        let src = std::fs::read_to_string(root.join(file))?;
        let toks = code_only(&lex(&src));
        cache.insert(file, toks.clone());
        Ok(toks)
    };
    for rule in RULES {
        let struct_toks = load(rule.struct_file)?;
        for reg in rule.registries {
            let reg_toks = load(reg.file)?;
            findings.extend(check_registration(
                &struct_toks,
                rule.struct_name,
                rule.struct_file,
                &reg_toks,
                reg.file,
                reg.function,
            ));
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{code_only, lex};

    #[test]
    fn missing_field_is_flagged() {
        let s = code_only(&lex(
            "pub struct R { pub hits: u64, pub misses: u64, pub stalls: u64 }",
        ));
        let r = code_only(&lex("fn to_json(r: &R) { emit(r.hits); emit(r.misses); }"));
        let f = check_registration(&s, "R", "s.rs", &r, "r.rs", "to_json");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("R.stalls"));
    }

    #[test]
    fn fully_registered_struct_is_clean() {
        let s = code_only(&lex("pub struct R { a: u64, b: u64 }"));
        let r = code_only(&lex("fn m(x: &mut R, y: &R) { x.a += y.a; x.b |= y.b; }"));
        assert!(check_registration(&s, "R", "s.rs", &r, "r.rs", "m").is_empty());
    }
}
