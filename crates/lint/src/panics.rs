//! The hot-path panic lint: no `unwrap()`, `expect()`, or panicking
//! indexing in the hot crates outside an explicit allow directive (see
//! [`crate::directives`] for the directive forms).
//!
//! Code under `#[cfg(test)] mod … { }` is skipped: tests may unwrap.

use crate::directives::DirectiveIndex;
use crate::files::SourceFile;
use crate::lexer::{lex, Tok, TokKind};
use crate::{Finding, RULE_EXPECT, RULE_INDEXING, RULE_UNWRAP};

/// The crates whose `src/` trees the panic lint scans.
pub const HOT_CRATES: &[&str] = &["core", "protocol", "sim", "mem"];

/// Keywords that may directly precede `[` without it being an index
/// expression (array literals, attribute syntax, types, …).
fn is_indexable_prefix(t: &Tok) -> bool {
    match t.kind {
        TokKind::Ident => !matches!(
            t.text.as_str(),
            "if" | "else"
                | "match"
                | "return"
                | "in"
                | "mut"
                | "ref"
                | "box"
                | "move"
                | "break"
                | "continue"
                | "as"
                | "where"
                | "loop"
                | "while"
                | "for"
                | "let"
                | "static"
                | "const"
                | "crate"
                | "super"
                | "dyn"
                | "impl"
                | "fn"
                | "use"
                | "pub"
                | "enum"
                | "struct"
                | "trait"
                | "type"
                | "unsafe"
                | "await"
                | "async"
                | "yield"
        ),
        TokKind::Punct => matches!(t.text.as_str(), ")" | "]" | "?"),
        _ => false,
    }
}

/// Returns the index just past a `#[cfg(test)] mod … { }` block starting
/// at `i` (which must point at `#`), or `None` when `i` starts no such
/// block.
pub(crate) fn skip_test_mod(toks: &[Tok], i: usize) -> Option<usize> {
    if !(toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("["))) {
        return None;
    }
    // Find the attribute's closing `]` and require cfg(test) inside.
    let mut depth = 0usize;
    let mut close = None;
    for (j, t) in toks.iter().enumerate().skip(i + 1) {
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                close = Some(j);
                break;
            }
        }
    }
    let close = close?;
    let attr = &toks[i + 2..close];
    let is_cfg_test =
        attr.first().is_some_and(|t| t.is_ident("cfg")) && attr.iter().any(|t| t.is_ident("test"));
    if !is_cfg_test {
        return None;
    }
    // Skip further attributes, then require `mod name {`.
    let mut j = close + 1;
    while j + 1 < toks.len() && toks[j].is_punct("#") && toks[j + 1].is_punct("[") {
        let mut depth = 0usize;
        let mut k = j + 1;
        while k < toks.len() {
            if toks[k].is_punct("[") {
                depth += 1;
            } else if toks[k].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        j = k + 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_ident("mod")) {
        return None;
    }
    while j < toks.len() && !toks[j].is_punct("{") {
        j += 1;
    }
    let mut depth = 0usize;
    while j < toks.len() {
        if toks[j].is_punct("{") {
            depth += 1;
        } else if toks[j].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    Some(toks.len())
}

fn scan_tokens(file: &str, toks: &[Tok], directives: &mut DirectiveIndex) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut push = |rule: &str, line: u32, message: String, directives: &mut DirectiveIndex| {
        if !directives.allows(file, rule, line) {
            findings.push(Finding {
                rule: rule.to_string(),
                file: file.to_string(),
                line,
                message,
            });
        }
    };

    let mut i = 0;
    while i < toks.len() {
        if let Some(next) = skip_test_mod(toks, i) {
            i = next;
            continue;
        }
        let t = &toks[i];
        if t.is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
            && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
        {
            let name = toks[i + 1].text.as_str();
            let line = toks[i + 1].line;
            if name == "unwrap" {
                push(
                    RULE_UNWRAP,
                    line,
                    "`.unwrap()` in a hot crate; return an error, use a safe fallback, or add `// lint: allow(unwrap)`"
                        .to_string(),
                    directives,
                );
            } else if name == "expect" {
                push(
                    RULE_EXPECT,
                    line,
                    "`.expect()` in a hot crate; return an error, use a safe fallback, or add `// lint: allow(expect)`"
                        .to_string(),
                    directives,
                );
            }
        }
        if t.is_punct("[") && i > 0 && is_indexable_prefix(&toks[i - 1]) {
            push(
                RULE_INDEXING,
                t.line,
                "panicking index in a hot crate; use `.get()`, or add `// lint: allow(indexing)`"
                    .to_string(),
                directives,
            );
        }
        i += 1;
    }
    findings
}

/// Scans one file's source, self-contained: parses its directives into a
/// throwaway index and reports stale ones too. The repo path goes
/// through [`scan_files`] with the shared index instead.
pub fn scan_file(file: &str, src: &str) -> Vec<Finding> {
    let mut directives = DirectiveIndex::default();
    directives.collect_file(file, src);
    let toks: Vec<Tok> = lex(src)
        .into_iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    let mut findings = scan_tokens(file, &toks, &mut directives);
    findings.extend(directives.finish());
    findings
}

/// Scans the hot-crate members of `files`, consulting (and exercising)
/// the shared directive index.
pub fn scan_files(files: &[SourceFile], directives: &mut DirectiveIndex) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if !f.crate_name().is_some_and(|c| HOT_CRATES.contains(&c)) {
            continue;
        }
        let toks: Vec<Tok> = lex(&f.src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Comment)
            .collect();
        findings.extend(scan_tokens(&f.label, &toks, directives));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_expect_and_indexing() {
        let src =
            "fn f(v: Vec<u32>, i: usize) -> u32 { v.get(i).unwrap(); x.expect(\"no\"); v[i] }";
        let rules: Vec<String> = scan_file("t.rs", src).into_iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["unwrap", "expect", "indexing"]);
    }

    #[test]
    fn allow_directives_suppress_same_and_next_line() {
        let src = "fn f() {\n    a.unwrap(); // lint: allow(unwrap)\n    // lint: allow(expect)\n    b.expect(\"ok\");\n    c.unwrap();\n}";
        let found = scan_file("t.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "unwrap");
        assert_eq!(found[0].line, 5);
    }

    #[test]
    fn allow_file_covers_everything_and_unknown_rules_are_findings() {
        let src = "// lint: allow-file(indexing)\nfn f() { v[0]; w[1] }\n// lint: allow(unwrp)\n";
        let found = scan_file("t.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "lint-directive");
    }

    #[test]
    fn unused_allow_directives_are_findings() {
        let src = "fn f() {\n    // lint: allow(unwrap)\n    let x = 1;\n}";
        let found = scan_file("t.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "lint-allow-unused");
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn test_mods_array_literals_attributes_and_macros_are_exempt() {
        let src = "#[derive(Clone)]\nstruct S;\nfn f() { let a = [0u8; 4]; let v = vec![1]; }\n#[cfg(test)]\nmod tests { fn g() { x.unwrap(); y[0]; } }\n";
        assert!(scan_file("t.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trip() {
        let src = "fn f() { let s = \"a.unwrap() b[0]\"; /* v[1].expect(\"x\") */ }";
        assert!(scan_file("t.rs", src).is_empty());
    }
}
