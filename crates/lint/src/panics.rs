//! The hot-path panic lint: no `unwrap()`, `expect()`, or panicking
//! indexing in the hot crates outside an explicit allow directive.
//!
//! Directives are ordinary comments:
//!
//! * `// lint: allow(unwrap)` — allows the named rule(s) on the
//!   directive's own line and the line below it (so it works both as a
//!   trailing comment and as a comment above the call).
//! * `// lint: allow-file(indexing)` — allows the rule(s) for the whole
//!   file; used where a file pervasively indexes by construction-valid
//!   IDs (e.g. bank/core vectors sized at startup).
//!
//! Code under `#[cfg(test)] mod … { }` is skipped: tests may unwrap.

use crate::lexer::{lex, Tok, TokKind};
use crate::{Finding, RULE_DIRECTIVE, RULE_EXPECT, RULE_INDEXING, RULE_UNWRAP};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};

/// The crates whose `src/` trees the panic lint scans.
pub const HOT_CRATES: &[&str] = &["core", "protocol", "sim", "mem"];

const RULES: &[&str] = &[RULE_UNWRAP, RULE_EXPECT, RULE_INDEXING];

/// Keywords that may directly precede `[` without it being an index
/// expression (array literals, attribute syntax, types, …).
fn is_indexable_prefix(t: &Tok) -> bool {
    match t.kind {
        TokKind::Ident => !matches!(
            t.text.as_str(),
            "if" | "else"
                | "match"
                | "return"
                | "in"
                | "mut"
                | "ref"
                | "box"
                | "move"
                | "break"
                | "continue"
                | "as"
                | "where"
                | "loop"
                | "while"
                | "for"
                | "let"
                | "static"
                | "const"
                | "crate"
                | "super"
                | "dyn"
                | "impl"
                | "fn"
                | "use"
                | "pub"
                | "enum"
                | "struct"
                | "trait"
                | "type"
                | "unsafe"
                | "await"
                | "async"
                | "yield"
        ),
        TokKind::Punct => matches!(t.text.as_str(), ")" | "]" | "?"),
        _ => false,
    }
}

#[derive(Debug, Default)]
struct Allows {
    file_rules: BTreeSet<String>,
    line_rules: BTreeMap<String, BTreeSet<u32>>,
}

impl Allows {
    fn allows(&self, rule: &str, line: u32) -> bool {
        self.file_rules.contains(rule)
            || self
                .line_rules
                .get(rule)
                .is_some_and(|lines| lines.contains(&line))
    }
}

/// Parses every `lint:` directive out of the comment tokens; unknown
/// rule names become findings so typos cannot silently disable a rule.
fn collect_allows(file: &str, toks: &[Tok], findings: &mut Vec<Finding>) -> Allows {
    let mut allows = Allows::default();
    for t in toks.iter().filter(|t| t.kind == TokKind::Comment) {
        let Some(at) = t.text.find("lint:") else {
            continue;
        };
        let rest = t.text[at + "lint:".len()..].trim_start();
        let (file_wide, args) = if let Some(a) = rest.strip_prefix("allow-file(") {
            (true, a)
        } else if let Some(a) = rest.strip_prefix("allow(") {
            (false, a)
        } else {
            findings.push(Finding {
                rule: RULE_DIRECTIVE.to_string(),
                file: file.to_string(),
                line: t.line,
                message: format!("unrecognized lint directive: `{}`", rest.trim_end()),
            });
            continue;
        };
        let Some(close) = args.find(')') else {
            findings.push(Finding {
                rule: RULE_DIRECTIVE.to_string(),
                file: file.to_string(),
                line: t.line,
                message: "unterminated lint directive".to_string(),
            });
            continue;
        };
        for rule in args[..close].split(',').map(str::trim) {
            if !RULES.contains(&rule) {
                findings.push(Finding {
                    rule: RULE_DIRECTIVE.to_string(),
                    file: file.to_string(),
                    line: t.line,
                    message: format!("unknown rule `{rule}` in lint directive (known: {RULES:?})"),
                });
                continue;
            }
            if file_wide {
                allows.file_rules.insert(rule.to_string());
            } else {
                let lines = allows.line_rules.entry(rule.to_string()).or_default();
                lines.insert(t.line);
                lines.insert(t.line + 1);
            }
        }
    }
    allows
}

/// Returns the index just past a `#[cfg(test)] mod … { }` block starting
/// at `i` (which must point at `#`), or `None` when `i` starts no such
/// block.
fn skip_test_mod(toks: &[Tok], i: usize) -> Option<usize> {
    if !(toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("["))) {
        return None;
    }
    // Find the attribute's closing `]` and require cfg(test) inside.
    let mut depth = 0usize;
    let mut close = None;
    for (j, t) in toks.iter().enumerate().skip(i + 1) {
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                close = Some(j);
                break;
            }
        }
    }
    let close = close?;
    let attr = &toks[i + 2..close];
    let is_cfg_test =
        attr.first().is_some_and(|t| t.is_ident("cfg")) && attr.iter().any(|t| t.is_ident("test"));
    if !is_cfg_test {
        return None;
    }
    // Skip further attributes, then require `mod name {`.
    let mut j = close + 1;
    while j + 1 < toks.len() && toks[j].is_punct("#") && toks[j + 1].is_punct("[") {
        let mut depth = 0usize;
        let mut k = j + 1;
        while k < toks.len() {
            if toks[k].is_punct("[") {
                depth += 1;
            } else if toks[k].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        j = k + 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_ident("mod")) {
        return None;
    }
    while j < toks.len() && !toks[j].is_punct("{") {
        j += 1;
    }
    let mut depth = 0usize;
    while j < toks.len() {
        if toks[j].is_punct("{") {
            depth += 1;
        } else if toks[j].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    Some(toks.len())
}

/// Scans one file's source for disallowed panicking constructs.
pub fn scan_file(file: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let all_toks = lex(src);
    let allows = collect_allows(file, &all_toks, &mut findings);
    let toks: Vec<Tok> = all_toks
        .into_iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();

    let mut push = |rule: &str, line: u32, message: String| {
        if !allows.allows(rule, line) {
            findings.push(Finding {
                rule: rule.to_string(),
                file: file.to_string(),
                line,
                message,
            });
        }
    };

    let mut i = 0;
    while i < toks.len() {
        if let Some(next) = skip_test_mod(&toks, i) {
            i = next;
            continue;
        }
        let t = &toks[i];
        if t.is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
            && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
        {
            let name = toks[i + 1].text.as_str();
            let line = toks[i + 1].line;
            if name == "unwrap" {
                push(
                    RULE_UNWRAP,
                    line,
                    "`.unwrap()` in a hot crate; return an error, use a safe fallback, or add `// lint: allow(unwrap)`"
                        .to_string(),
                );
            } else if name == "expect" {
                push(
                    RULE_EXPECT,
                    line,
                    "`.expect()` in a hot crate; return an error, use a safe fallback, or add `// lint: allow(expect)`"
                        .to_string(),
                );
            }
        }
        if t.is_punct("[") && i > 0 && is_indexable_prefix(&toks[i - 1]) {
            push(
                RULE_INDEXING,
                t.line,
                "panicking index in a hot crate; use `.get()`, or add `// lint: allow(indexing)`"
                    .to_string(),
            );
        }
        i += 1;
    }
    findings
}

/// Recursively collects the `.rs` files under `dir`, sorted.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans the hot crates' `src/` trees under `root`.
pub fn scan_repo(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for krate in HOT_CRATES {
        let dir = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        rs_files(&dir, &mut files)?;
        for path in files {
            let src = std::fs::read_to_string(&path)?;
            let label = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            findings.extend(scan_file(&label, &src));
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_expect_and_indexing() {
        let src =
            "fn f(v: Vec<u32>, i: usize) -> u32 { v.get(i).unwrap(); x.expect(\"no\"); v[i] }";
        let rules: Vec<String> = scan_file("t.rs", src).into_iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["unwrap", "expect", "indexing"]);
    }

    #[test]
    fn allow_directives_suppress_same_and_next_line() {
        let src = "fn f() {\n    a.unwrap(); // lint: allow(unwrap)\n    // lint: allow(expect)\n    b.expect(\"ok\");\n    c.unwrap();\n}";
        let found = scan_file("t.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "unwrap");
        assert_eq!(found[0].line, 5);
    }

    #[test]
    fn allow_file_covers_everything_and_unknown_rules_are_findings() {
        let src = "// lint: allow-file(indexing)\nfn f() { v[0]; w[1] }\n// lint: allow(unwrp)\n";
        let found = scan_file("t.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "lint-directive");
    }

    #[test]
    fn test_mods_array_literals_attributes_and_macros_are_exempt() {
        let src = "#[derive(Clone)]\nstruct S;\nfn f() { let a = [0u8; 4]; let v = vec![1]; }\n#[cfg(test)]\nmod tests { fn g() { x.unwrap(); y[0]; } }\n";
        assert!(scan_file("t.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trip() {
        let src = "fn f() { let s = \"a.unwrap() b[0]\"; /* v[1].expect(\"x\") */ }";
        assert!(scan_file("t.rs", src).is_empty());
    }
}
