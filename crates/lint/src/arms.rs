//! Structure extraction over the token stream: function bodies, `match`
//! expressions and their arms, enum variants, and struct fields.
//!
//! Everything operates on comment-free token slices (see
//! [`crate::lexer::code_only`]). The extractors are deliberately shallow:
//! they track bracket depth, not full Rust grammar, which is enough for
//! the protocol crates' style and keeps the lint dependency-free.

use crate::lexer::{Tok, TokKind};

/// One arm of a `match` expression.
#[derive(Debug, Clone)]
pub struct MatchArm {
    /// Pattern tokens (guard excluded).
    pub pattern: Vec<Tok>,
    /// Guard tokens (after `if`), when present.
    pub guard: Option<Vec<Tok>>,
    /// Body tokens (braces included for block bodies).
    pub body: Vec<Tok>,
    /// 1-based line of the pattern's first token.
    pub line: u32,
}

impl MatchArm {
    /// `true` when the arm body is a `panic!`/`unreachable!`/`todo!`
    /// invocation — a rejection arm, not a handled transition.
    pub fn is_rejection(&self) -> bool {
        self.body.windows(2).any(|w| {
            w[0].kind == TokKind::Ident
                && matches!(w[0].text.as_str(), "panic" | "unreachable" | "todo")
                && w[1].is_punct("!")
        })
    }
}

/// A `match` expression: scrutinee text plus parsed arms.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// The scrutinee, rendered with single spaces between tokens.
    pub scrutinee: String,
    /// The arms, in source order.
    pub arms: Vec<MatchArm>,
    /// 1-based line of the `match` keyword.
    pub line: u32,
}

/// Index of the delimiter closing the one opened at `open_idx`.
pub(crate) fn matching_close(toks: &[Tok], open_idx: usize) -> Option<usize> {
    let (open, close) = match toks[open_idx].text.as_str() {
        "{" => ("{", "}"),
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => return None,
    };
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Net bracket-depth tracker over `()`, `[]`, `{}`.
#[derive(Default)]
struct Depth(i32);

impl Depth {
    fn feed(&mut self, t: &Tok) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => self.0 += 1,
                ")" | "]" | "}" => self.0 -= 1,
                _ => {}
            }
        }
    }

    fn at_top(&self) -> bool {
        self.0 == 0
    }
}

/// Finds `fn name` and returns the tokens inside its body braces.
pub fn find_fn_body<'a>(toks: &'a [Tok], name: &str) -> Option<&'a [Tok]> {
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].is_ident(name) {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct("{") {
                j += 1;
            }
            if j < toks.len() {
                let close = matching_close(toks, j)?;
                return Some(&toks[j + 1..close]);
            }
        }
        i += 1;
    }
    None
}

/// All `match` expressions found by linear scan of `toks` (nested ones
/// included — a match inside an arm body is reported separately, after
/// its parent).
pub fn matches_in(toks: &[Tok]) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("match") {
            // Scrutinee: up to the `{` at the depth we started at.
            let mut depth = Depth::default();
            let mut j = i + 1;
            while j < toks.len() {
                if toks[j].is_punct("{") && depth.at_top() {
                    break;
                }
                depth.feed(&toks[j]);
                j += 1;
            }
            if j >= toks.len() {
                break;
            }
            let scrutinee = toks[i + 1..j]
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            if let Some(close) = matching_close(toks, j) {
                out.push(MatchExpr {
                    scrutinee,
                    arms: parse_arms(&toks[j + 1..close]),
                    line: toks[i].line,
                });
            }
        }
        i += 1;
    }
    out
}

/// Parses the region between a match's braces into arms.
pub fn parse_arms(toks: &[Tok]) -> Vec<MatchArm> {
    let mut arms = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct(",") {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        // Pattern: until `if` or `=>` at top depth.
        let mut depth = Depth::default();
        let pat_start = i;
        while i < toks.len() {
            if depth.at_top() && (toks[i].is_ident("if") || toks[i].is_punct("=>")) {
                break;
            }
            depth.feed(&toks[i]);
            i += 1;
        }
        if i >= toks.len() {
            break;
        }
        let pattern = toks[pat_start..i].to_vec();
        // Guard.
        let guard = if toks[i].is_ident("if") {
            i += 1;
            let g_start = i;
            let mut depth = Depth::default();
            while i < toks.len() && !(depth.at_top() && toks[i].is_punct("=>")) {
                depth.feed(&toks[i]);
                i += 1;
            }
            Some(toks[g_start..i].to_vec())
        } else {
            None
        };
        if i >= toks.len() {
            break;
        }
        i += 1; // skip `=>`
        if i >= toks.len() {
            break;
        }
        // Body: a brace block, or tokens to the next top-depth comma.
        let body = if toks[i].is_punct("{") {
            match matching_close(toks, i) {
                Some(close) => {
                    let b = toks[i..=close].to_vec();
                    i = close + 1;
                    b
                }
                None => break,
            }
        } else {
            let b_start = i;
            let mut depth = Depth::default();
            while i < toks.len() && !(depth.at_top() && toks[i].is_punct(",")) {
                depth.feed(&toks[i]);
                i += 1;
            }
            toks[b_start..i].to_vec()
        };
        arms.push(MatchArm {
            pattern,
            guard,
            body,
            line,
        });
    }
    arms
}

/// An enum variant: name plus, for single-field tuple variants, the last
/// path segment of the payload type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// Variant identifier.
    pub name: String,
    /// `Some(last path segment)` for `Name(Payload)` tuple variants.
    pub payload: Option<String>,
}

/// Extracts the variants of `enum name` from a file's tokens.
pub fn extract_enum(toks: &[Tok], name: &str) -> Option<Vec<Variant>> {
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_ident("enum") && toks[i + 1].is_ident(name) {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct("{") {
                j += 1;
            }
            let close = matching_close(toks, j)?;
            return Some(parse_variants(&toks[j + 1..close]));
        }
        i += 1;
    }
    None
}

fn parse_variants(toks: &[Tok]) -> Vec<Variant> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Skip attributes and commas.
        if toks[i].is_punct("#") {
            if i + 1 < toks.len() && toks[i + 1].is_punct("[") {
                if let Some(close) = matching_close(toks, i + 1) {
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        if toks[i].is_punct(",") {
            i += 1;
            continue;
        }
        if toks[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = toks[i].text.clone();
        i += 1;
        let mut payload = None;
        if i < toks.len() && toks[i].is_punct("(") {
            if let Some(close) = matching_close(toks, i) {
                payload = toks[i + 1..close]
                    .iter()
                    .rev()
                    .find(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
                i = close + 1;
            }
        }
        // Skip discriminant or struct payload to the next top-level comma.
        let mut depth = Depth::default();
        while i < toks.len() && !(depth.at_top() && toks[i].is_punct(",")) {
            depth.feed(&toks[i]);
            i += 1;
        }
        out.push(Variant { name, payload });
    }
    out
}

/// Extracts `(field name, line)` pairs of `struct name`'s named fields.
pub fn extract_struct_fields(toks: &[Tok], name: &str) -> Option<Vec<(String, u32)>> {
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_ident("struct") && toks[i + 1].is_ident(name) {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct("{") {
                if toks[j].is_punct(";") || toks[j].is_punct("(") {
                    return Some(Vec::new()); // unit or tuple struct
                }
                j += 1;
            }
            let close = matching_close(toks, j)?;
            return Some(parse_fields(&toks[j + 1..close]));
        }
        i += 1;
    }
    None
}

fn parse_fields(toks: &[Tok]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") {
            if i + 1 < toks.len() && toks[i + 1].is_punct("[") {
                if let Some(close) = matching_close(toks, i + 1) {
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        if toks[i].is_punct(",") || toks[i].is_ident("pub") {
            i += 1;
            continue;
        }
        if toks[i].is_punct("(") {
            // pub(crate) visibility group.
            if let Some(close) = matching_close(toks, i) {
                i = close + 1;
                continue;
            }
        }
        if toks[i].kind == TokKind::Ident && i + 1 < toks.len() && toks[i + 1].is_punct(":") {
            out.push((toks[i].text.clone(), toks[i].line));
            i += 2;
            // Skip the type to the next top-level comma.
            let mut depth = Depth::default();
            while i < toks.len() && !(depth.at_top() && toks[i].is_punct(",")) {
                depth.feed(&toks[i]);
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Renders a pattern (or any token run) with path qualifiers dropped:
/// `Probe::Discovery(DiscoveryIntent::Share)` → `Discovery(Share)`.
pub fn normalize_pattern(toks: &[Tok]) -> String {
    let mut out = String::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && i + 1 < toks.len() && toks[i + 1].is_punct("::") {
            i += 2; // drop the qualifying segment and the `::`
            continue;
        }
        if toks[i].is_punct("&") || toks[i].is_ident("ref") || toks[i].is_ident("mut") {
            i += 1;
            continue;
        }
        out.push_str(&toks[i].text);
        i += 1;
    }
    out
}

/// Splits pattern tokens at top-depth `|` into alternatives.
pub fn split_alternatives(toks: &[Tok]) -> Vec<Vec<Tok>> {
    split_at_top(toks, "|")
}

/// Splits a tuple pattern `(a, b)` into its elements; returns `None` when
/// the tokens are not a single parenthesized group.
pub fn split_tuple(toks: &[Tok]) -> Option<Vec<Vec<Tok>>> {
    let toks: Vec<Tok> = toks
        .iter()
        .filter(|t| !t.is_punct("&") && !t.is_ident("ref"))
        .cloned()
        .collect();
    if toks.is_empty() || !toks[0].is_punct("(") {
        return None;
    }
    let close = matching_close(&toks, 0)?;
    if close != toks.len() - 1 {
        return None;
    }
    Some(split_at_top(&toks[1..close], ","))
}

fn split_at_top(toks: &[Tok], sep: &str) -> Vec<Vec<Tok>> {
    let mut parts = vec![Vec::new()];
    let mut depth = Depth::default();
    for t in toks {
        if depth.at_top() && t.is_punct(sep) {
            parts.push(Vec::new());
            continue;
        }
        depth.feed(t);
        parts.last_mut().expect("parts never empty").push(t.clone());
    }
    parts.retain(|p| !p.is_empty());
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{code_only, lex};

    const SRC: &str = r#"
pub enum Color { Red, Green(Hue), Blue }

pub struct Pair {
    /// doc
    pub left: u64,
    right: Vec<(String, u32)>,
}

fn pick(state: Color, n: u32) -> u32 {
    match (state, n) {
        (Color::Red, 0) => 1,
        (Color::Green(h) | Color::Blue, _) if n > 2 => { body(h); 2 }
        _ => panic!("bad"),
    }
}
"#;

    fn toks() -> Vec<crate::lexer::Tok> {
        code_only(&lex(SRC))
    }

    #[test]
    fn extracts_enum_variants_with_payloads() {
        let v = extract_enum(&toks(), "Color").unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v[1].name, "Green");
        assert_eq!(v[1].payload.as_deref(), Some("Hue"));
        assert_eq!(v[0].payload, None);
    }

    #[test]
    fn extracts_struct_fields() {
        let f = extract_struct_fields(&toks(), "Pair").unwrap();
        let names: Vec<&str> = f.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["left", "right"]);
    }

    #[test]
    fn parses_match_arms_with_guards_and_rejections() {
        let t = toks();
        let body = find_fn_body(&t, "pick").unwrap();
        let ms = matches_in(body);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].scrutinee, "( state , n )");
        let arms = &ms[0].arms;
        assert_eq!(arms.len(), 3);
        assert!(arms[1].guard.is_some());
        assert!(arms[2].is_rejection());
        assert!(!arms[1].is_rejection());
    }

    #[test]
    fn tuple_and_alternative_splitting() {
        let t = toks();
        let body = find_fn_body(&t, "pick").unwrap();
        let arms = &matches_in(body)[0].arms;
        let elems = split_tuple(&arms[1].pattern).unwrap();
        assert_eq!(elems.len(), 2);
        let alts = split_alternatives(&elems[0]);
        assert_eq!(alts.len(), 2);
        assert_eq!(normalize_pattern(&alts[0]), "Green(h)");
        assert_eq!(normalize_pattern(&alts[1]), "Blue");
    }
}
