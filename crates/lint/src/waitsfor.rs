//! Waits-for liveness analysis over the protocol decision layer.
//!
//! Every coherence transaction *blocks* on messages: a requester that
//! misses blocks on a grant, a home that probes blocks on the probe
//! replies. The protocol stays live only because every blocking edge has
//! a sender that can still emit the awaited message, and every potential
//! cycle has an *escape edge* — a peer in `Invalid` (or a NACK/retry
//! path) that answers a probe even while its own request is in flight.
//!
//! This pass extracts, per match arm:
//!
//! * the requests each `local_access` miss arm **blocks on** (the grant
//!   for `GetS`/`GetM`/`Upgrade` — the requester's transient states),
//! * the probes each home decision arm **emits** (and therefore blocks
//!   on the replies to), and the grants it issues,
//! * the `(state, probe)` pairs the private-cache `probe()` table
//!   handles, with `(Invalid, P)` handling (or a NACK/retry/refill
//!   marker in the arm body) counting as probe `P`'s escape edge,
//!
//! then cross-checks each blocking edge against the BFS model
//! ([`stashdir_protocol::reachability`]):
//!
//! * **`waitsfor-unsatisfiable`** — a wait on a message no peer can
//!   send or receive: a miss request no home arm (or no reachable home
//!   transition) consumes, or an emitted probe no probe-table arm (or no
//!   reachable peer transition) handles.
//! * **`waitsfor-cycle`** — an emitted probe with no escape edge whose
//!   emitting arm serves an in-flight (transient) request: the probed
//!   core may itself be that requester, waiting on the very transaction
//!   that is waiting on it.
//! * **`coverage-parse`** — the model emitted a probe for a reachable
//!   `(request, view)` pair that extraction did not find in the arm: the
//!   waits-for graph is out of sync with the source.

use crate::arms::{find_fn_body, matches_in, normalize_pattern, split_alternatives, split_tuple};
use crate::coverage::{CoverageSources, ReachablePairs};
use crate::lexer::{code_only, lex, Tok};
use crate::{Finding, RULE_COVERAGE_PARSE, RULE_WAITSFOR_CYCLE, RULE_WAITSFOR_UNSATISFIABLE};
use stashdir_protocol::reachability::TransitionSet;
use std::collections::{BTreeMap, BTreeSet};

const PRIVATE_FILE: &str = "crates/protocol/src/private.rs";
const HOME_FILE: &str = "crates/protocol/src/home.rs";

/// One `local_access` table entry: what the requester does at
/// `(state, op)`, and the request it blocks on when it misses.
#[derive(Debug, Clone)]
pub struct RequesterArm {
    /// Private-cache state label.
    pub state: String,
    /// Memory operation label.
    pub op: String,
    /// `Some(request)` when the arm misses and blocks on a grant.
    pub request: Option<String>,
    /// Arm line in `private.rs`.
    pub line: u32,
}

/// One home decision entry: the messages a `(request, view)` pair emits
/// (and thus blocks on the replies to), statically and in the model.
#[derive(Debug, Clone)]
pub struct HomeArm {
    /// Request label.
    pub request: String,
    /// Directory-view kind label.
    pub view: String,
    /// Probes the arm body emits, with the emit-site line.
    pub emits: Vec<(String, u32)>,
    /// Grants the arm body issues.
    pub grants: Vec<String>,
    /// Probes the model emitted for this pair (empty when unreachable).
    pub model_emits: Vec<String>,
    /// Grants the model issued for this pair.
    pub model_grants: Vec<String>,
    /// Whether the model reaches this pair at all.
    pub reachable: bool,
    /// Arm line in `home.rs`.
    pub line: u32,
}

/// One probe's receive side: which states handle it, and whether it has
/// an escape edge.
#[derive(Debug, Clone)]
pub struct ProbeRow {
    /// Probe kind label (base, payload ignored).
    pub probe: String,
    /// States with a handling arm.
    pub handled_states: Vec<String>,
    /// `true` when `(Invalid, probe)` is handled or an arm body carries
    /// a NACK/retry/refill marker: a transient peer can still answer.
    pub escape: bool,
}

/// The extracted waits-for graph, embedded in the v2 protocol-model
/// artifact.
#[derive(Debug, Clone, Default)]
pub struct WaitsForModel {
    /// `local_access` entries.
    pub requesters: Vec<RequesterArm>,
    /// Home decision entries (demand and put).
    pub home: Vec<HomeArm>,
    /// Probe receive rows.
    pub probes: Vec<ProbeRow>,
}

/// A simple single-level axis: enum variant base names in declaration
/// order (payloads dropped — `Discovery(Share)` and `Discovery` are the
/// same node in the waits-for graph).
struct BaseAxis {
    labels: Vec<String>,
}

impl BaseAxis {
    fn from_enum(toks: &[Tok], name: &str) -> BaseAxis {
        let labels = crate::arms::extract_enum(toks, name)
            .unwrap_or_default()
            .into_iter()
            .map(|v| v.name)
            .collect();
        BaseAxis { labels }
    }

    /// Labels one normalized pattern alternative covers; bindings and
    /// `_` cover all, payloads are stripped.
    fn expand(&self, alt: &str) -> Vec<String> {
        let is_binding = |s: &str| {
            s == "_"
                || s == ".."
                || s.chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_')
        };
        if is_binding(alt) {
            return self.labels.clone();
        }
        let head = alt.split('(').next().unwrap_or(alt);
        if self.labels.iter().any(|l| l == head) {
            return vec![head.to_string()];
        }
        Vec::new()
    }
}

/// Base name of a possibly payload-expanded label (`Discovery(Share)` →
/// `Discovery`).
fn base_of(label: &str) -> &str {
    label.split('(').next().unwrap_or(label)
}

/// `Enum :: Variant` references in an arm body, with their lines.
fn variant_refs(body: &[Tok], enum_name: &str, axis: &BaseAxis) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for i in 0..body.len() {
        if body[i].is_ident(enum_name)
            && body.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && body
                .get(i + 2)
                .is_some_and(|t| axis.labels.iter().any(|l| t.is_ident(l)))
        {
            out.push((body[i + 2].text.clone(), body[i + 2].line));
        }
    }
    out
}

/// Tuple-pattern alternatives of an arm, expanded against two base axes.
fn tuple_pairs(pattern: &[Tok], ax_a: &BaseAxis, ax_b: &BaseAxis) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let Some(elems) = split_tuple(pattern) else {
        if normalize_pattern(pattern) == "_" {
            for a in &ax_a.labels {
                for b in &ax_b.labels {
                    out.push((a.clone(), b.clone()));
                }
            }
        }
        return out;
    };
    if elems.len() != 2 {
        return out;
    }
    let expand = |toks: &[Tok], ax: &BaseAxis| -> Vec<String> {
        split_alternatives(toks)
            .iter()
            .flat_map(|alt| ax.expand(&normalize_pattern(alt)))
            .collect()
    };
    for a in expand(&elems[0], ax_a) {
        for b in expand(&elems[1], ax_b) {
            out.push((a.clone(), b));
        }
    }
    out
}

fn find_match(toks: &[Tok], fn_name: &str, needle: &str) -> Option<crate::arms::MatchExpr> {
    let body = find_fn_body(toks, fn_name)?;
    matches_in(body)
        .into_iter()
        .find(|m| m.scrutinee.contains(needle))
}

/// Runs the waits-for analysis: extracts the graph from the protocol
/// source and diffs its blocking edges against the model.
pub fn analyze(
    src: &CoverageSources,
    reachable: &ReachablePairs,
    model: &TransitionSet,
) -> (WaitsForModel, Vec<Finding>) {
    let mut findings = Vec::new();
    let msg_toks = code_only(&lex(&src.msg));
    let private_toks = code_only(&lex(&src.private));
    let home_toks = code_only(&lex(&src.home));
    let ops_toks = code_only(&lex(&src.ops));

    let ax_state = BaseAxis::from_enum(&private_toks, "PrivState");
    let ax_probe = BaseAxis::from_enum(&msg_toks, "Probe");
    let ax_req = BaseAxis::from_enum(&msg_toks, "Request");
    let ax_grant = BaseAxis::from_enum(&msg_toks, "Grant");
    let ax_view = BaseAxis::from_enum(&home_toks, "DirView");
    let ax_op = BaseAxis::from_enum(&ops_toks, "MemOpKind");

    let mut out = WaitsForModel::default();

    // Requester side: the `local_access` miss table.
    if let Some(m) = find_match(&private_toks, "local_access", "state") {
        for arm in m.arms.iter().filter(|a| !a.is_rejection()) {
            let misses = arm.body.iter().any(|t| t.is_ident("Miss"));
            let request = if misses {
                variant_refs(&arm.body, "Request", &ax_req)
                    .first()
                    .map(|(r, _)| r.clone())
            } else {
                None
            };
            for (state, op) in tuple_pairs(&arm.pattern, &ax_state, &ax_op) {
                out.requesters.push(RequesterArm {
                    state,
                    op,
                    request: request.clone(),
                    line: arm.line,
                });
            }
        }
    }

    // Probe receive side: which states handle each probe kind, and the
    // escape edges. A NACK/retry/refill marker in an arm body makes its
    // probes escapable even without an `(Invalid, P)` arm.
    let mut handled: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut marker_escape: BTreeSet<String> = BTreeSet::new();
    if let Some(m) = find_match(&private_toks, "probe", "state") {
        for arm in m.arms.iter().filter(|a| !a.is_rejection()) {
            let pairs = tuple_pairs(&arm.pattern, &ax_state, &ax_probe);
            let marker = arm.body.iter().any(|t| {
                let low = t.text.to_ascii_lowercase();
                low.contains("nack") || low.contains("retry") || low.contains("refill")
            });
            for (state, probe) in pairs {
                handled.entry(probe.clone()).or_default().insert(state);
                if marker {
                    marker_escape.insert(probe);
                }
            }
        }
    }
    for probe in &ax_probe.labels {
        let states = handled.get(probe).cloned().unwrap_or_default();
        let escape = states.contains("Invalid") || marker_escape.contains(probe.as_str());
        out.probes.push(ProbeRow {
            probe: probe.clone(),
            handled_states: states.into_iter().collect(),
            escape,
        });
    }

    // Home side: demand routing (`decide` → per-request handler) and the
    // put table, with per-arm emissions.
    let model_emissions: BTreeMap<(String, String), (Vec<String>, Vec<String>)> = model
        .home_emissions()
        .map(|((r, v), e)| {
            (
                (r.to_string(), v.to_string()),
                (
                    e.probes().map(str::to_string).collect(),
                    e.grants().map(str::to_string).collect(),
                ),
            )
        })
        .collect();
    let mut home_arms: BTreeMap<(String, String), HomeArm> = BTreeMap::new();
    let mut add_home = |reqs: &[String], views: &[(String, u32)], body: &[Tok]| {
        let emits = variant_refs(body, "Probe", &ax_probe);
        let grants: Vec<String> = variant_refs(body, "Grant", &ax_grant)
            .into_iter()
            .map(|(g, _)| g)
            .collect();
        for r in reqs {
            for (v, line) in views {
                let key = (r.clone(), v.clone());
                let (model_emits, model_grants) =
                    model_emissions.get(&key).cloned().unwrap_or_default();
                let entry = home_arms.entry(key).or_insert_with(|| HomeArm {
                    request: r.clone(),
                    view: v.clone(),
                    emits: Vec::new(),
                    grants: Vec::new(),
                    model_emits,
                    model_grants,
                    reachable: reachable.home.contains(&(r.clone(), v.clone())),
                    line: *line,
                });
                for e in &emits {
                    if !entry.emits.contains(e) {
                        entry.emits.push(e.clone());
                    }
                }
                for g in &grants {
                    if !entry.grants.contains(g) {
                        entry.grants.push(g.clone());
                    }
                }
            }
        }
    };
    if let Some(m) = find_match(&home_toks, "decide", "req") {
        let handler_names = ["decide_gets", "decide_getm"];
        for arm in m.arms.iter().filter(|a| !a.is_rejection()) {
            let reqs: Vec<String> = split_alternatives(&arm.pattern)
                .iter()
                .flat_map(|alt| ax_req.expand(&normalize_pattern(alt)))
                .collect();
            let callee = arm
                .body
                .iter()
                .find(|t| handler_names.contains(&t.text.as_str()))
                .map(|t| t.text.clone());
            if let Some(callee) = callee {
                if let Some(vm) = find_match(&home_toks, &callee, "view") {
                    for varm in vm.arms.iter().filter(|a| !a.is_rejection()) {
                        let views: Vec<(String, u32)> = split_alternatives(&varm.pattern)
                            .iter()
                            .flat_map(|alt| ax_view.expand(&normalize_pattern(alt)))
                            .map(|v| (v, varm.line))
                            .collect();
                        add_home(&reqs, &views, &varm.body);
                    }
                }
            }
        }
    }
    if let Some(m) = find_match(&home_toks, "decide_put", "req") {
        for arm in m.arms.iter().filter(|a| !a.is_rejection()) {
            let reqs: Vec<String> = split_alternatives(&arm.pattern)
                .iter()
                .flat_map(|alt| ax_req.expand(&normalize_pattern(alt)))
                .collect();
            if let Some(vm) = matches_in(&arm.body)
                .into_iter()
                .find(|im| im.scrutinee.contains("view"))
            {
                for varm in vm.arms.iter().filter(|a| !a.is_rejection()) {
                    let views: Vec<(String, u32)> = split_alternatives(&varm.pattern)
                        .iter()
                        .flat_map(|alt| ax_view.expand(&normalize_pattern(alt)))
                        .map(|v| (v, varm.line))
                        .collect();
                    add_home(&reqs, &views, &varm.body);
                }
            }
        }
    }
    out.home = home_arms.into_values().collect();

    // The transient requests: what an in-flight requester blocks on.
    let transient: BTreeSet<&str> = out
        .requesters
        .iter()
        .filter_map(|r| r.request.as_deref())
        .collect();

    // Check 1: every miss request must have a consumer, in source and in
    // the model.
    let mut flagged_requests: BTreeSet<String> = BTreeSet::new();
    for r in &out.requesters {
        let Some(req) = &r.request else { continue };
        if !flagged_requests.insert(req.clone()) {
            continue;
        }
        if !out.home.iter().any(|h| &h.request == req) {
            findings.push(Finding {
                rule: RULE_WAITSFOR_UNSATISFIABLE.to_string(),
                file: PRIVATE_FILE.to_string(),
                line: r.line,
                message: format!(
                    "requester transient ({}, {}) blocks on a grant for {req}, but no home \
                     decision arm consumes {req}",
                    r.state, r.op
                ),
            });
        } else if !reachable.home.iter().any(|(hr, _)| hr == req) {
            findings.push(Finding {
                rule: RULE_WAITSFOR_UNSATISFIABLE.to_string(),
                file: PRIVATE_FILE.to_string(),
                line: r.line,
                message: format!(
                    "requester transient ({}, {}) blocks on a grant for {req}, but the model \
                     reaches no ({req}, *) home transition",
                    r.state, r.op
                ),
            });
        }
    }

    // Checks 2–4, per emitted probe: the receive side must exist in the
    // probe table and in the model; the model's emissions must all have
    // been extracted; inescapable probes serving transient requests form
    // waits-for cycles.
    let probe_row = |p: &str| out.probes.iter().find(|row| row.probe == p);
    let model_receives = |p: &str| reachable.probe.iter().any(|(_, col)| base_of(col) == p);
    let mut reported: BTreeSet<(u32, String)> = BTreeSet::new();
    for h in &out.home {
        for (p, line) in &h.emits {
            if !reported.insert((*line, p.clone())) {
                continue;
            }
            let row = probe_row(p);
            let handled_somewhere = row.is_some_and(|r| !r.handled_states.is_empty());
            if !handled_somewhere {
                findings.push(Finding {
                    rule: RULE_WAITSFOR_UNSATISFIABLE.to_string(),
                    file: HOME_FILE.to_string(),
                    line: *line,
                    message: format!(
                        "home arm ({}, {}) emits {p} and blocks on its reply, but no \
                         private-cache probe arm handles {p} at any state — the wait can \
                         never be satisfied",
                        h.request, h.view
                    ),
                });
                continue;
            }
            if !model_receives(p) {
                findings.push(Finding {
                    rule: RULE_WAITSFOR_UNSATISFIABLE.to_string(),
                    file: HOME_FILE.to_string(),
                    line: *line,
                    message: format!(
                        "home arm ({}, {}) emits {p}, but no reachable peer transition \
                         receives {p} in the model — the wait cannot be satisfied",
                        h.request, h.view
                    ),
                });
                continue;
            }
            let escape = row.is_some_and(|r| r.escape);
            if !escape && transient.contains(h.request.as_str()) {
                findings.push(Finding {
                    rule: RULE_WAITSFOR_CYCLE.to_string(),
                    file: HOME_FILE.to_string(),
                    line: *line,
                    message: format!(
                        "waits-for cycle: ({}, {}) emits {p} while a {} requester is in \
                         flight, and {p} has no escape edge (no (Invalid, {p}) handler and \
                         no NACK/retry/refill path) — the probed core can itself be the \
                         blocked requester",
                        h.request, h.view, h.request
                    ),
                });
            }
        }
    }
    for h in &out.home {
        if !h.reachable {
            continue;
        }
        for p in &h.model_emits {
            if !h.emits.iter().any(|(e, _)| e == p) {
                findings.push(Finding {
                    rule: RULE_COVERAGE_PARSE.to_string(),
                    file: HOME_FILE.to_string(),
                    line: h.line,
                    message: format!(
                        "model emits {p} for ({}, {}) but no `Probe::{p}` was extracted \
                         from the handling arm — waits-for extraction out of sync",
                        h.request, h.view
                    ),
                });
            }
        }
    }

    (out, findings)
}
