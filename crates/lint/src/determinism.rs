//! Artifact-determinism taint analysis.
//!
//! The repo's strongest regression oracle is byte-identical artifacts:
//! every CSV, JSON report, and manifest must come out the same on every
//! run. This pass taint-tracks from the export functions backwards
//! through callers and forwards through callees, and flags the two ways
//! nondeterminism creeps in:
//!
//! * **unordered iteration** — `HashMap`/`FxHashMap`/`HashSet`/
//!   `FxHashSet` iteration order differs per process (std's
//!   `RandomState`) or is arbitrary (Fx); iterating one on an export
//!   path scrambles artifact bytes. Sorting in the same statement or the
//!   next (`collect` + `sort*`), collecting into a `BTreeMap`/`BTreeSet`
//!   /`HashSet`, or reducing order-insensitively (`sum`, `count`, `max`,
//!   …) is exempt.
//! * **wall-clock reads** — `Instant`/`SystemTime` inside a sink or its
//!   callees stamps host time into artifact bytes. (Callers of sinks may
//!   time things — progress meters and pools do — so the wall-clock rule
//!   applies only to the sink cone itself.)
//!
//! The taint set: the sink functions (`save_csv`, `to_csv`,
//! `diag_snapshot`, `build_report`, `*to_json`), every function that
//! directly calls one, and every function transitively called from that
//! set. Matching is name-based over the hand-rolled lexer — conservative
//! by design. `// lint: allow(determinism)` opts a line out.

use crate::directives::DirectiveIndex;
use crate::files::SourceFile;
use crate::lexer::{code_only, lex, Tok, TokKind};
use crate::panics::skip_test_mod;
use crate::{Finding, RULE_DETERMINISM};
use std::collections::{BTreeMap, BTreeSet};

/// Function names treated as artifact sinks, beyond the `*to_json`
/// suffix rule.
pub const SINK_NAMES: &[&str] = &["save_csv", "to_csv", "diag_snapshot", "build_report"];

/// Hash-based collection types whose iteration order is not stable.
const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Iterator-producing methods whose order reflects the receiver's.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Order-insensitive reductions that make an unordered iteration safe.
const REDUCTIONS: &[&str] = &[
    "sum",
    "count",
    "fold",
    "product",
    "all",
    "any",
    "max",
    "min",
    "max_by",
    "min_by",
    "max_by_key",
    "min_by_key",
];

/// Ordered (or order-erasing) collection targets for `collect`.
const ORDERED_COLLECTIONS: &[&str] = &["BTreeMap", "BTreeSet", "HashSet", "FxHashSet"];

/// Names too generic to resolve through the name-based call graph:
/// every type has a `new`, and a sink calling `String::new()` must not
/// taint every other `new` in the repo.
const AMBIGUOUS_CALLEES: &[&str] = &[
    "new",
    "default",
    "from",
    "with_capacity",
    "clone",
    "to_string",
    "into",
    "fmt",
];

fn is_sink_name(name: &str) -> bool {
    SINK_NAMES.contains(&name) || name.ends_with("to_json")
}

#[derive(Debug)]
struct FnInfo {
    file: usize,
    name: String,
    /// Token range of the body (inclusive braces) in the file's code
    /// tokens.
    body: (usize, usize),
}

/// Finds every `fn name … { body }` outside test mods, as token ranges.
fn find_fns(toks: &[Tok], file: usize) -> Vec<FnInfo> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if let Some(next) = skip_test_mod(toks, i) {
            i = next;
            continue;
        }
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let name = toks[i + 1].text.clone();
            // Find the parameter list's `(…)`, then the body `{` at
            // bracket depth 0 — or a `;` first (trait declaration).
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct("(") {
                if toks[j].is_punct(";") || toks[j].is_punct("{") {
                    break;
                }
                j += 1;
            }
            if !toks.get(j).is_some_and(|t| t.is_punct("(")) {
                i += 2;
                continue;
            }
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    _ => {}
                }
                j += 1;
                if depth == 0 {
                    break;
                }
            }
            // Now scan to the body `{` (or give up at `;`).
            let mut open = None;
            let mut d = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => d += 1,
                    ")" | "]" => d -= 1,
                    "{" if d == 0 => {
                        open = Some(j);
                        break;
                    }
                    ";" if d == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = open {
                let mut bd = 0i32;
                let mut k = open;
                while k < toks.len() {
                    if toks[k].is_punct("{") {
                        bd += 1;
                    } else if toks[k].is_punct("}") {
                        bd -= 1;
                        if bd == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                out.push(FnInfo {
                    file,
                    name,
                    body: (open, k.min(toks.len().saturating_sub(1))),
                });
                // Continue scanning *inside* the body too: nested fns and
                // the body's own sites are found by the flat walk.
                i = open + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Collects identifiers bound or declared with an unordered collection
/// type: annotated bindings/fields (`name: FxHashMap<…>`) and inferred
/// constructor bindings (`name = HashMap::new()`). Names are scoped to
/// the file (a binding in one file must not taint a same-named field
/// elsewhere), and test-mod bindings are skipped — tests are not scanned
/// for sites, so their names would be pure collision noise.
fn collect_unordered_names(
    toks: &[Tok],
    unordered_types: &BTreeSet<String>,
    out: &mut BTreeSet<String>,
) {
    let mut i = 0;
    while i < toks.len() {
        if let Some(next) = skip_test_mod(toks, i) {
            i = next;
            continue;
        }
        if toks[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // `name : Type<…>` — scan the type window, stopping at a
        // same-depth `,`/`;`/`=`/`)`/`{` (angle depth tracked, with `->`
        // exempted via the preceding `-`).
        if toks.get(i + 1).is_some_and(|t| t.is_punct(":")) {
            let mut angle = 0i32;
            for j in i + 2..(i + 24).min(toks.len()) {
                let t = &toks[j];
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" if !toks[j - 1].is_punct("-") => angle -= 1,
                    "," | ";" | "=" | ")" | "{" if angle <= 0 => break,
                    _ => {}
                }
                if t.kind == TokKind::Ident && unordered_types.contains(&t.text) {
                    out.insert(toks[i].text.clone());
                    break;
                }
            }
        }
        // `name = [path::]UnorderedType::ctor(…)`.
        if toks.get(i + 1).is_some_and(|t| t.is_punct("=")) {
            for j in i + 2..(i + 8).min(toks.len()) {
                let t = &toks[j];
                if t.kind == TokKind::Ident
                    && unordered_types.contains(&t.text)
                    && toks.get(j + 1).is_some_and(|n| n.is_punct("::"))
                {
                    out.insert(toks[i].text.clone());
                    break;
                }
                if t.is_punct(";") {
                    break;
                }
            }
        }
        i += 1;
    }
}

/// Whether the statement window around an iteration site neutralizes the
/// ordering: a `sort*` call or order-insensitive reduction before the
/// second statement boundary, a `collect` into an ordered/order-erasing
/// collection, or a set/btree annotation on the receiving binding.
fn site_exempt(toks: &[Tok], site: usize) -> bool {
    // Forward window: until the 2nd `;` at relative depth 0 (the
    // collect-then-sort idiom spans two statements), capped.
    let mut semis = 0;
    let mut depth = 0i32;
    let mut saw_collect = false;
    for t in toks.iter().skip(site).take(200) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            ";" if depth == 0 => {
                semis += 1;
                if semis >= 2 {
                    break;
                }
            }
            _ => {}
        }
        if t.kind == TokKind::Ident {
            let name = t.text.as_str();
            if name.starts_with("sort") || REDUCTIONS.contains(&name) {
                return true;
            }
            if name == "collect" {
                saw_collect = true;
            }
            if saw_collect && ORDERED_COLLECTIONS.contains(&name) {
                return true;
            }
        }
    }
    if !saw_collect {
        return false;
    }
    // Backward window to the statement start: a set/btree annotation on
    // the binding (`let idx: HashSet<_> = map.keys().collect();`).
    let start = site.saturating_sub(32);
    for t in toks[start..site].iter().rev() {
        if t.is_punct(";") || t.is_punct("{") {
            break;
        }
        if t.kind == TokKind::Ident && ORDERED_COLLECTIONS.contains(&t.text.as_str()) {
            return true;
        }
    }
    false
}

/// Runs the determinism pass over the loaded file set.
pub fn analyze(files: &[SourceFile], directives: &mut DirectiveIndex) -> Vec<Finding> {
    let token_sets: Vec<Vec<Tok>> = files.iter().map(|f| code_only(&lex(&f.src))).collect();

    // Unordered type names, plus aliases of them (`type ResultSet =
    // HashMap<…>`).
    let mut unordered_types: BTreeSet<String> =
        UNORDERED_TYPES.iter().map(|s| s.to_string()).collect();
    for toks in &token_sets {
        for i in 0..toks.len() {
            if toks[i].is_ident("type")
                && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(i + 2).is_some_and(|t| t.is_punct("="))
            {
                for t in toks.iter().skip(i + 3).take(8) {
                    if t.is_punct(";") {
                        break;
                    }
                    if t.kind == TokKind::Ident && unordered_types.contains(&t.text) {
                        unordered_types.insert(toks[i + 1].text.clone());
                        break;
                    }
                }
            }
        }
    }
    // Per-file name sets: bindings and fields are file-scoped.
    let unordered_names: Vec<BTreeSet<String>> = token_sets
        .iter()
        .map(|toks| {
            let mut names = BTreeSet::new();
            collect_unordered_names(toks, &unordered_types, &mut names);
            names
        })
        .collect();

    // Function discovery and the name-based call graph.
    let mut fns: Vec<FnInfo> = Vec::new();
    for (fi, toks) in token_sets.iter().enumerate() {
        fns.extend(find_fns(toks, fi));
    }
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (idx, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(idx);
    }
    let callees = |idx: usize| -> Vec<usize> {
        let f = &fns[idx];
        let toks = &token_sets[f.file];
        let mut out = Vec::new();
        for i in f.body.0..=f.body.1.min(toks.len().saturating_sub(1)) {
            if toks[i].kind == TokKind::Ident
                && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
                && !AMBIGUOUS_CALLEES.contains(&toks[i].text.as_str())
            {
                if let Some(targets) = by_name.get(toks[i].text.as_str()) {
                    out.extend(targets.iter().copied());
                }
            }
        }
        out
    };
    let calls_sink = |idx: usize| -> Option<String> {
        let f = &fns[idx];
        let toks = &token_sets[f.file];
        for i in f.body.0..=f.body.1.min(toks.len().saturating_sub(1)) {
            if toks[i].kind == TokKind::Ident
                && is_sink_name(&toks[i].text)
                && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            {
                return Some(toks[i].text.clone());
            }
        }
        None
    };

    // Tier A (`sink_cone`): sinks and everything they transitively call —
    // the bytes-producing cone, where wall-clock reads are also banned.
    // Tier B (`tainted`): tier A plus direct callers of sinks and *their*
    // transitive callees — everything whose iteration order can reach an
    // artifact.
    let mut roots: Vec<(usize, String)> = Vec::new();
    for (idx, f) in fns.iter().enumerate() {
        if is_sink_name(&f.name) {
            roots.push((idx, f.name.clone()));
        }
    }
    let closure = |seed: &[(usize, String)]| -> BTreeMap<usize, String> {
        let mut via: BTreeMap<usize, String> = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for (idx, root) in seed {
            if via.insert(*idx, root.clone()).is_none() {
                queue.push(*idx);
            }
        }
        while let Some(idx) = queue.pop() {
            let root = via[&idx].clone();
            for c in callees(idx) {
                if let std::collections::btree_map::Entry::Vacant(e) = via.entry(c) {
                    e.insert(root.clone());
                    queue.push(c);
                }
            }
        }
        via
    };
    let sink_cone = closure(&roots);
    let mut tainted_seed = roots.clone();
    for (idx, f) in fns.iter().enumerate() {
        if f.name != "main" && !is_sink_name(&f.name) {
            if let Some(sink) = calls_sink(idx) {
                tainted_seed.push((idx, sink));
            }
        }
    }
    let tainted = closure(&tainted_seed);

    let mut findings = Vec::new();
    let mut seen_sites: BTreeSet<(usize, u32, &'static str)> = BTreeSet::new();
    for (&idx, root) in &tainted {
        let f = &fns[idx];
        let toks = &token_sets[f.file];
        let names = &unordered_names[f.file];
        let file = &files[f.file].label;
        let end = f.body.1.min(toks.len().saturating_sub(1));
        for i in f.body.0..=end {
            let t = &toks[i];
            // `name.iter()` / `name.keys()` / … on an unordered binding.
            let method_site = t.kind == TokKind::Ident
                && names.contains(&t.text)
                && toks.get(i + 1).is_some_and(|n| n.is_punct("."))
                && toks.get(i + 2).is_some_and(|n| {
                    n.kind == TokKind::Ident && ITER_METHODS.contains(&n.text.as_str())
                })
                && toks.get(i + 3).is_some_and(|n| n.is_punct("("));
            // `for … in [&mut] name {` — bare unordered binding in a
            // for-loop header.
            let for_site = t.kind == TokKind::Ident
                && names.contains(&t.text)
                && toks.get(i + 1).is_some_and(|n| n.is_punct("{"))
                && toks[..i].iter().rev().take(4).any(|p| p.is_ident("in"));
            if (method_site || for_site) && !site_exempt(toks, i) {
                let line = t.line;
                if seen_sites.insert((f.file, line, "iter"))
                    && !directives.allows(file, RULE_DETERMINISM, line)
                {
                    findings.push(Finding {
                        rule: RULE_DETERMINISM.to_string(),
                        file: file.clone(),
                        line,
                        message: format!(
                            "iteration over unordered `{}` on an artifact-export path (via \
                             `{root}`); iterate in sorted order, collect into a BTree \
                             collection, or add `// lint: allow(determinism)`",
                            t.text
                        ),
                    });
                }
            }
            // Wall-clock reads, banned in the sink cone only.
            if sink_cone.contains_key(&idx)
                && t.kind == TokKind::Ident
                && (t.text == "Instant" || t.text == "SystemTime")
                && seen_sites.insert((f.file, t.line, "clock"))
                && !directives.allows(file, RULE_DETERMINISM, t.line)
            {
                findings.push(Finding {
                    rule: RULE_DETERMINISM.to_string(),
                    file: file.clone(),
                    line: t.line,
                    message: format!(
                        "wall-clock `{}` on an artifact-export path (via `{root}`); \
                         artifacts must be byte-identical across runs — derive times from \
                         the simulated clock or add `// lint: allow(determinism)`",
                        t.text
                    ),
                });
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile {
            label: "crates/sim/src/t.rs".to_string(),
            src: src.to_string(),
        }];
        let mut directives = DirectiveIndex::collect(&files);
        analyze(&files, &mut directives)
    }

    #[test]
    fn unordered_iteration_in_a_sink_is_flagged() {
        let src = "use std::collections::HashMap;\n\
                   struct T { rows: HashMap<String, u64> }\n\
                   impl T { fn save_csv(&self) -> String {\n\
                   let mut out = String::new();\n\
                   for (k, v) in self.rows.iter() { out.push_str(k); }\n\
                   out } }";
        let found = run_on(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, RULE_DETERMINISM);
        assert_eq!(found[0].line, 5);
    }

    #[test]
    fn collect_then_sort_is_exempt() {
        let src = "use std::collections::HashMap;\n\
                   struct T { rows: HashMap<String, u64> }\n\
                   impl T { fn save_csv(&self) -> Vec<String> {\n\
                   let mut v: Vec<String> = self.rows.keys().cloned().collect();\n\
                   v.sort();\n\
                   v } }";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn order_insensitive_reduction_is_exempt() {
        let src = "use std::collections::HashMap;\n\
                   struct T { rows: HashMap<String, u64> }\n\
                   impl T { fn save_csv(&self) -> u64 { self.rows.values().sum() } }";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn untainted_functions_are_not_flagged() {
        let src = "use std::collections::HashMap;\n\
                   struct T { rows: HashMap<String, u64> }\n\
                   impl T { fn debug_dump(&self) {\n\
                   for (k, _) in self.rows.iter() { println!(\"{k}\"); } } }";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn wall_clock_in_sink_cone_is_flagged() {
        let src = "fn build_report() -> String { let t = Instant::now(); format!(\"{t:?}\") }";
        let found = run_on(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("wall-clock"));
    }

    #[test]
    fn allow_directive_suppresses() {
        let src = "use std::collections::HashMap;\n\
                   struct T { rows: HashMap<String, u64> }\n\
                   impl T { fn save_csv(&self) -> usize {\n\
                   // lint: allow(determinism)\n\
                   let mut n = 0; for (k, _) in self.rows.iter() { n += k.len(); } n } }";
        assert!(run_on(src).is_empty());
    }
}
