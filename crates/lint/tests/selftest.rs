//! End-to-end self-tests for `stashdir-lint`.
//!
//! Two directions: the lint must be **clean on this repository** (the CI
//! gate), and it must **fire on the seeded fixture tree** under
//! `tests/fixtures/seeded/`, which plants one violation per rule family:
//! an uncovered reachable transition, an uncovered fault-response
//! transition, a disallowed `unwrap()` / `expect()` / panicking index,
//! and an unregistered stat field.

use std::path::{Path, PathBuf};
use std::process::Command;

use stashdir_common::json::Value;
use stashdir_lint::{
    coverage, RULE_COVERAGE_PARSE, RULE_COVERAGE_UNCOVERED, RULE_EXPECT, RULE_INDEXING,
    RULE_STAT_UNREGISTERED, RULE_UNWRAP,
};
use stashdir_protocol::reachability::reachable_transitions;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/seeded")
}

fn render_findings(findings: &[stashdir_lint::Finding]) -> String {
    findings
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

/// The CI gate in test form: zero findings on the repository itself.
#[test]
fn repo_is_clean() {
    let report = stashdir_lint::run(&repo_root()).expect("repo sources readable");
    assert!(
        report.findings.is_empty(),
        "lint findings on the repo:\n{}",
        render_findings(&report.findings)
    );
}

/// Every seeded fixture violation fires, and nothing else does.
#[test]
fn seeded_fixture_fires_each_rule() {
    let report = stashdir_lint::run(&fixture_root()).expect("fixture sources readable");
    let has = |rule: &str, frag: &str| {
        report
            .findings
            .iter()
            .any(|f| f.rule == rule && (f.message.contains(frag) || f.file.contains(frag)))
    };
    assert!(
        has(RULE_COVERAGE_UNCOVERED, "(Modified, FwdGetS)"),
        "missing uncovered-transition finding:\n{}",
        render_findings(&report.findings)
    );
    assert!(
        has(RULE_COVERAGE_UNCOVERED, "(StuckTransient, Watchdog)"),
        "missing uncovered fault-response finding:\n{}",
        render_findings(&report.findings)
    );
    assert!(has(RULE_UNWRAP, "bad.rs"), "missing unwrap finding");
    assert!(has(RULE_EXPECT, "bad.rs"), "missing expect finding");
    assert!(has(RULE_INDEXING, "bad.rs"), "missing indexing finding");
    assert!(
        has(RULE_STAT_UNREGISTERED, "SimReport.lost_counter"),
        "missing stat-registration finding:\n{}",
        render_findings(&report.findings)
    );
    assert!(
        has(RULE_STAT_UNREGISTERED, "BackendStats.indirection_hops"),
        "missing backend-stats registration finding:\n{}",
        render_findings(&report.findings)
    );
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == RULE_COVERAGE_PARSE),
        "fixture must parse cleanly:\n{}",
        render_findings(&report.findings)
    );
    assert_eq!(
        report.findings.len(),
        7,
        "exactly the seven seeded violations:\n{}",
        render_findings(&report.findings)
    );
}

/// The repo's match arms cover exactly the model's reachable set plus the
/// documented race allowlist — no more, no less.
#[test]
fn repo_matrix_matches_model_reachable_set() {
    let src = coverage::CoverageSources::load(&repo_root()).expect("protocol sources readable");
    let reachable = coverage::ReachablePairs::from_model(&reachable_transitions());
    let (sections, findings) = coverage::analyze(&src, &reachable);
    assert!(
        findings.is_empty(),
        "coverage findings:\n{}",
        render_findings(&findings)
    );
    assert_eq!(
        sections.iter().map(|s| s.name).collect::<Vec<_>>(),
        ["private_probe", "local_access", "home", "fault_response"]
    );
    for s in &sections {
        for pair in &s.reachable {
            assert!(
                s.source.contains_key(pair),
                "[{}] reachable {pair:?} not in source",
                s.name
            );
        }
        for pair in s.source.keys() {
            assert!(
                s.reachable.contains(pair) || s.race_allowed.contains_key(pair),
                "[{}] source {pair:?} neither reachable nor race-allowed",
                s.name
            );
        }
        assert!(!s.rows.is_empty() && !s.cols.is_empty());
    }
}

/// The transition-matrix artifact parses back and records the seeded
/// coverage hole in the fixture's `uncovered` set.
#[test]
fn artifact_records_the_seeded_hole() {
    let report = stashdir_lint::run(&fixture_root()).expect("fixture sources readable");
    let parsed = Value::parse(&report.matrix.render()).expect("artifact renders valid JSON");
    assert_eq!(
        parsed.get("schema").and_then(Value::as_str),
        Some("stashdir-lint/transition-matrix/v1")
    );
    let sections = parsed
        .get("sections")
        .and_then(Value::as_array)
        .expect("sections array");
    let probe = sections
        .iter()
        .find(|s| s.get("name").and_then(Value::as_str) == Some("private_probe"))
        .expect("private_probe section");
    let uncovered = probe
        .get("uncovered")
        .and_then(Value::as_array)
        .expect("uncovered array");
    let as_pair = |v: &Value| -> Option<(String, String)> {
        let a = v.as_array()?;
        Some((
            a.first()?.as_str()?.to_string(),
            a.get(1)?.as_str()?.to_string(),
        ))
    };
    assert_eq!(
        uncovered.iter().filter_map(as_pair).collect::<Vec<_>>(),
        [("Modified".to_string(), "FwdGetS".to_string())]
    );
    assert!(!parsed
        .get("findings")
        .and_then(Value::as_array)
        .expect("findings array")
        .is_empty());
}

/// The `lint` binary's exit codes: 0 on the clean repo, 1 on the seeded
/// fixture.
#[test]
fn binary_exit_codes_gate_ci() {
    let clean = Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(["--root"])
        .arg(repo_root())
        .arg("--no-artifact")
        .arg("--quiet")
        .output()
        .expect("run lint binary");
    assert_eq!(
        clean.status.code(),
        Some(0),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&clean.stdout),
        String::from_utf8_lossy(&clean.stderr)
    );

    let artifact = std::env::temp_dir().join(format!(
        "stashdir_lint_selftest_{}.json",
        std::process::id()
    ));
    let seeded = Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(["--root"])
        .arg(fixture_root())
        .arg("--artifact")
        .arg(&artifact)
        .output()
        .expect("run lint binary");
    assert_eq!(seeded.status.code(), Some(1));
    let text = std::fs::read_to_string(&artifact).expect("artifact written");
    let _ = std::fs::remove_file(&artifact);
    assert!(Value::parse(&text).is_ok(), "artifact is valid JSON");
    let out = String::from_utf8_lossy(&seeded.stdout);
    assert!(out.contains("7 finding(s)"), "stdout:\n{out}");
}
