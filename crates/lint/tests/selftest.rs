//! End-to-end self-tests for `stashdir-lint`.
//!
//! Two directions: the lint must be **clean on this repository** (the CI
//! gate), and it must **fire on the seeded fixture tree** under
//! `tests/fixtures/seeded/`, which plants one violation per rule family:
//! two uncovered reachable probe transitions, an uncovered
//! fault-response transition, an unsatisfiable waits-for edge (the
//! `Nudge` probe no arm handles), a waits-for cycle (`Recall` with its
//! escape edge removed), a disallowed `unwrap()` / `expect()` /
//! panicking index, an unordered-map CSV export, a stale allow
//! directive, and an unregistered stat field — each caught at its exact
//! `file:line`.

use std::path::{Path, PathBuf};
use std::process::Command;

use stashdir_common::json::Value;
use stashdir_lint::{
    artifact, coverage, RULE_ALLOW_UNUSED, RULE_COVERAGE_PARSE, RULE_COVERAGE_UNCOVERED,
    RULE_DETERMINISM, RULE_EXPECT, RULE_INDEXING, RULE_STAT_UNREGISTERED, RULE_UNWRAP,
    RULE_WAITSFOR_CYCLE, RULE_WAITSFOR_UNSATISFIABLE,
};
use stashdir_protocol::reachability::reachable_transitions;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/seeded")
}

/// 1-based line of the first occurrence of `marker` in a fixture file.
fn marker_line(rel: &str, marker: &str) -> u32 {
    let path = fixture_root().join(rel);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    for (i, line) in src.lines().enumerate() {
        if line.contains(marker) {
            return (i + 1) as u32;
        }
    }
    panic!("marker `{marker}` not found in {rel}");
}

fn render_findings(findings: &[stashdir_lint::Finding]) -> String {
    findings
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

/// The CI gate in test form: zero findings on the repository itself.
#[test]
fn repo_is_clean() {
    let report = stashdir_lint::run(&repo_root()).expect("repo sources readable");
    assert!(
        report.findings.is_empty(),
        "lint findings on the repo:\n{}",
        render_findings(&report.findings)
    );
}

/// Every seeded fixture violation fires, and nothing else does.
#[test]
fn seeded_fixture_fires_each_rule() {
    let report = stashdir_lint::run(&fixture_root()).expect("fixture sources readable");
    let has = |rule: &str, frag: &str| {
        report
            .findings
            .iter()
            .any(|f| f.rule == rule && (f.message.contains(frag) || f.file.contains(frag)))
    };
    let has_at = |rule: &str, file: &str, line: u32| {
        report
            .findings
            .iter()
            .any(|f| f.rule == rule && f.file == file && f.line == line)
    };
    assert!(
        has(RULE_COVERAGE_UNCOVERED, "(Modified, FwdGetS)"),
        "missing uncovered-transition finding:\n{}",
        render_findings(&report.findings)
    );
    assert!(
        has(RULE_COVERAGE_UNCOVERED, "(Invalid, Recall)"),
        "missing second uncovered-transition finding:\n{}",
        render_findings(&report.findings)
    );
    assert!(
        has(RULE_COVERAGE_UNCOVERED, "(StuckTransient, Watchdog)"),
        "missing uncovered fault-response finding:\n{}",
        render_findings(&report.findings)
    );
    assert!(has(RULE_UNWRAP, "bad.rs"), "missing unwrap finding");
    assert!(has(RULE_EXPECT, "bad.rs"), "missing expect finding");
    assert!(has(RULE_INDEXING, "bad.rs"), "missing indexing finding");
    assert!(
        has(RULE_STAT_UNREGISTERED, "SimReport.lost_counter"),
        "missing stat-registration finding:\n{}",
        render_findings(&report.findings)
    );
    assert!(
        has(RULE_STAT_UNREGISTERED, "BackendStats.indirection_hops"),
        "missing backend-stats registration finding:\n{}",
        render_findings(&report.findings)
    );

    // The four new-pass seeds, each at its exact file:line.
    assert!(
        has_at(
            RULE_WAITSFOR_UNSATISFIABLE,
            "crates/protocol/src/home.rs",
            marker_line("crates/protocol/src/home.rs", "Probe::Nudge"),
        ),
        "missing waitsfor-unsatisfiable finding at the Nudge emit site:\n{}",
        render_findings(&report.findings)
    );
    assert!(
        has_at(
            RULE_WAITSFOR_CYCLE,
            "crates/protocol/src/home.rs",
            marker_line("crates/protocol/src/home.rs", "Probe::Recall"),
        ),
        "missing waitsfor-cycle finding at the Recall emit site:\n{}",
        render_findings(&report.findings)
    );
    assert!(
        has_at(
            RULE_DETERMINISM,
            "crates/harness/src/table.rs",
            marker_line("crates/harness/src/table.rs", "self.rows.iter()"),
        ),
        "missing determinism finding at the unordered export:\n{}",
        render_findings(&report.findings)
    );
    assert!(
        has_at(
            RULE_ALLOW_UNUSED,
            "crates/sim/src/bad.rs",
            marker_line("crates/sim/src/bad.rs", "// lint: allow(unwrap)"),
        ),
        "missing unused-directive finding:\n{}",
        render_findings(&report.findings)
    );

    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == RULE_COVERAGE_PARSE),
        "fixture must parse cleanly:\n{}",
        render_findings(&report.findings)
    );
    assert_eq!(
        report.findings.len(),
        12,
        "exactly the twelve seeded violations:\n{}",
        render_findings(&report.findings)
    );
}

/// The repo's match arms cover exactly the model's reachable set plus the
/// documented race allowlist — no more, no less.
#[test]
fn repo_matrix_matches_model_reachable_set() {
    let src = coverage::CoverageSources::load(&repo_root()).expect("protocol sources readable");
    let reachable = coverage::ReachablePairs::from_model(&reachable_transitions());
    let (sections, findings) = coverage::analyze(&src, &reachable);
    assert!(
        findings.is_empty(),
        "coverage findings:\n{}",
        render_findings(&findings)
    );
    assert_eq!(
        sections.iter().map(|s| s.name).collect::<Vec<_>>(),
        ["private_probe", "local_access", "home", "fault_response"]
    );
    for s in &sections {
        for pair in &s.reachable {
            assert!(
                s.source.contains_key(pair),
                "[{}] reachable {pair:?} not in source",
                s.name
            );
        }
        for pair in s.source.keys() {
            assert!(
                s.reachable.contains(pair) || s.race_allowed.contains_key(pair),
                "[{}] source {pair:?} neither reachable nor race-allowed",
                s.name
            );
        }
        assert!(!s.rows.is_empty() && !s.cols.is_empty());
    }
}

/// The repo's waits-for graph is live: every probe has an escape edge and
/// every blocking edge has a reachable satisfier.
#[test]
fn repo_waits_for_graph_is_live() {
    let src = coverage::CoverageSources::load(&repo_root()).expect("protocol sources readable");
    let model = reachable_transitions();
    let reachable = coverage::ReachablePairs::from_model(&model);
    let (waits, findings) = stashdir_lint::waitsfor::analyze(&src, &reachable, &model);
    assert!(
        findings.is_empty(),
        "waits-for findings:\n{}",
        render_findings(&findings)
    );
    assert!(
        waits.requesters.iter().any(|r| r.request.is_some()),
        "no miss arms extracted"
    );
    assert!(!waits.home.is_empty(), "no home arms extracted");
    for p in &waits.probes {
        assert!(
            p.escape,
            "probe {} has no escape edge in the real protocol",
            p.probe
        );
    }
    // The blocking structure the paper's protocol relies on: demand
    // requests to an Exclusive view forward to the owner, and write
    // requests to a Shared view invalidate the sharers.
    let emits_of = |req: &str, view: &str| -> Vec<String> {
        waits
            .home
            .iter()
            .find(|h| h.request == req && h.view == view)
            .map(|h| h.emits.iter().map(|(p, _)| p.clone()).collect())
            .unwrap_or_default()
    };
    assert!(emits_of("GetS", "Exclusive").contains(&"FwdGetS".to_string()));
    assert!(emits_of("GetM", "Exclusive").contains(&"FwdGetM".to_string()));
    assert!(emits_of("GetM", "Shared").contains(&"Inv".to_string()));
}

/// The transition-matrix artifact parses back and records the seeded
/// coverage holes in the fixture's `uncovered` set.
#[test]
fn artifact_records_the_seeded_holes() {
    let report = stashdir_lint::run(&fixture_root()).expect("fixture sources readable");
    let parsed = Value::parse(&report.matrix.render()).expect("artifact renders valid JSON");
    assert_eq!(
        parsed.get("schema").and_then(Value::as_str),
        Some("stashdir-lint/transition-matrix/v1")
    );
    let sections = parsed
        .get("sections")
        .and_then(Value::as_array)
        .expect("sections array");
    let probe = sections
        .iter()
        .find(|s| s.get("name").and_then(Value::as_str) == Some("private_probe"))
        .expect("private_probe section");
    let uncovered = probe
        .get("uncovered")
        .and_then(Value::as_array)
        .expect("uncovered array");
    let as_pair = |v: &Value| -> Option<(String, String)> {
        let a = v.as_array()?;
        Some((
            a.first()?.as_str()?.to_string(),
            a.get(1)?.as_str()?.to_string(),
        ))
    };
    assert_eq!(
        uncovered.iter().filter_map(as_pair).collect::<Vec<_>>(),
        [
            ("Invalid".to_string(), "Recall".to_string()),
            ("Modified".to_string(), "FwdGetS".to_string()),
        ]
    );
    assert!(!parsed
        .get("findings")
        .and_then(Value::as_array)
        .expect("findings array")
        .is_empty());
}

/// The v2 protocol-model artifact carries the waits-for graph, passes the
/// v1-compat reader, and the findings artifact is well-formed.
#[test]
fn v2_model_artifact_is_v1_readable() {
    let report = stashdir_lint::run(&repo_root()).expect("repo sources readable");
    let model = Value::parse(&report.model.render()).expect("model renders valid JSON");
    assert_eq!(
        model.get("schema").and_then(Value::as_str),
        Some("stashdir/protocol-model/v2")
    );
    artifact::verify_v1_compat(&model).expect("v2 model readable by the v1 reader");
    artifact::verify_v1_compat(&report.matrix).expect("v1 matrix readable by the v1 reader");

    let graph = model.get("model").expect("model object");
    for key in ["requesters", "home", "probes"] {
        assert!(
            graph
                .get(key)
                .and_then(Value::as_array)
                .is_some_and(|a| !a.is_empty()),
            "model.{key} missing or empty"
        );
    }
    // Every probe row of the real protocol records an escape edge.
    for row in graph.get("probes").and_then(Value::as_array).unwrap() {
        assert_eq!(row.get("escape").and_then(Value::as_bool), Some(true));
    }

    let fixture = stashdir_lint::run(&fixture_root()).expect("fixture sources readable");
    let findings = artifact::findings_json(&fixture.findings);
    assert_eq!(
        findings.get("schema").and_then(Value::as_str),
        Some("stashdir-lint/findings/v1")
    );
    let rows = findings
        .get("findings")
        .and_then(Value::as_array)
        .expect("findings array");
    assert_eq!(rows.len(), 12);
    for row in rows {
        let pass = row.get("pass").and_then(Value::as_str).expect("pass");
        assert_ne!(pass, "unknown");
        assert!(row.get("severity").and_then(Value::as_str).is_some());
        assert!(row.get("suppressible").and_then(Value::as_bool).is_some());
    }
    // A malformed artifact must fail the reader.
    let broken = Value::parse(r#"{"schema": "stashdir-lint/transition-matrix/v1"}"#).unwrap();
    assert!(artifact::verify_v1_compat(&broken).is_err());
}

/// The `lint` binary's exit codes and artifact plumbing: 0 on the clean
/// repo, 1 on the seeded fixture, `--verify-v1` accepts the v2 model.
#[test]
fn binary_exit_codes_gate_ci() {
    let clean = Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(["--root"])
        .arg(repo_root())
        .arg("--no-artifact")
        .arg("--quiet")
        .output()
        .expect("run lint binary");
    assert_eq!(
        clean.status.code(),
        Some(0),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&clean.stdout),
        String::from_utf8_lossy(&clean.stderr)
    );

    let tmp = std::env::temp_dir().join(format!("stashdir_lint_selftest_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create temp dir");
    let matrix = tmp.join("matrix.json");
    let model = tmp.join("model.json");
    let findings = tmp.join("findings.json");
    let seeded = Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(["--root"])
        .arg(fixture_root())
        .arg("--artifact")
        .arg(&matrix)
        .arg("--model")
        .arg(&model)
        .arg("--json")
        .arg(&findings)
        .output()
        .expect("run lint binary");
    assert_eq!(seeded.status.code(), Some(1));
    let out = String::from_utf8_lossy(&seeded.stdout);
    assert!(out.contains("12 finding(s)"), "stdout:\n{out}");
    assert!(out.contains("lint: passes:"), "stdout:\n{out}");
    for path in [&matrix, &model, &findings] {
        let text = std::fs::read_to_string(path).expect("artifact written");
        assert!(Value::parse(&text).is_ok(), "artifact is valid JSON");
    }

    let verify = Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(["--verify-v1"])
        .arg(&model)
        .output()
        .expect("run lint --verify-v1");
    assert_eq!(
        verify.status.code(),
        Some(0),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&verify.stdout),
        String::from_utf8_lossy(&verify.stderr)
    );
    let _ = std::fs::remove_dir_all(&tmp);
}
