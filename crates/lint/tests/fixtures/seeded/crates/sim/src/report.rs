//! Fixture report structs. `SimReport.lost_counter` is deliberately
//! missing from `report_to_json` in the fixture harness artifact module,
//! seeding a stat-registration violation.

pub struct SimReport {
    pub cycles: u64,
    pub lost_counter: u64,
}

pub struct TimelineSample {
    pub at: u64,
    pub l2_misses: u64,
}
