//! Fixture with seeded hot-path panic violations: one `unwrap()`, one
//! `expect()`, and one panicking index, none of them allowlisted.

pub fn bad(v: &[u32]) -> u32 {
    let x = v.first().unwrap();
    let y = v.iter().next().expect("seeded violation");
    v[0] + x + y
}

pub fn fine(v: &[u32]) -> u32 {
    // Seeded stale directive: `unwrap_or` is not `unwrap`, so this
    // suppresses nothing and must be flagged as unused.
    // lint: allow(unwrap)
    v.get(1).copied().unwrap_or(0)
}
