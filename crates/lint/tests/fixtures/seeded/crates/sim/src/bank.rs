//! Fixture backend-stats struct. `BackendStats.indirection_hops` is
//! deliberately missing from `BackendStats::merge`, seeding a
//! stat-registration violation (`export` mentions every field, so the
//! merge registry is the one that fires).

pub struct BackendStats {
    pub remote_llc_accesses: u64,
    pub indirection_hops: u64,
}

impl BackendStats {
    pub fn export(&self, sink: &mut Vec<(String, u64)>) {
        sink.push(("backend.remote".into(), self.remote_llc_accesses));
        sink.push(("backend.hops".into(), self.indirection_hops));
    }

    pub fn merge(&mut self, other: &BackendStats) {
        self.remote_llc_accesses += other.remote_llc_accesses;
    }
}
