//! Fixture fault taxonomy. `expected_detector` omits the
//! `StuckTransient` arm, seeding an uncovered fault-response transition
//! against the compiled taxonomy. `FaultSummary` is fully registered in
//! the fixture artifact module.

pub enum FaultClass {
    NocDelay,
    NocDuplicate,
    SharerFlip,
    StashClear,
    StashSpurious,
    DropGrant,
    StuckTransient,
}

pub enum Detector {
    Invariant,
    Watchdog,
}

pub fn expected_detector(class: FaultClass) -> Detector {
    match class {
        FaultClass::NocDelay => Detector::Watchdog,
        FaultClass::NocDuplicate => Detector::Invariant,
        FaultClass::SharerFlip => Detector::Invariant,
        FaultClass::StashClear => Detector::Invariant,
        FaultClass::StashSpurious => Detector::Invariant,
        FaultClass::DropGrant => Detector::Invariant,
    }
}

pub struct FaultSummary {
    pub injected: u64,
    pub detected: u64,
}
