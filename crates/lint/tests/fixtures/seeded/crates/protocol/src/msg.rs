//! Fixture mirror of the protocol message enums. The axis labels must
//! match the real crate's, since the fixture is diffed against the real
//! model's reachable set.

pub enum Request {
    GetS,
    GetM,
    Upgrade,
    PutS,
    PutE,
    PutM,
}

pub enum Probe {
    FwdGetS,
    FwdGetM,
    Inv,
    Recall,
    Discovery(DiscoveryIntent),
    /// Seeded: emitted by the fixture home but handled by no probe arm,
    /// so any wait on its reply is unsatisfiable.
    Nudge,
}

pub enum DiscoveryIntent {
    Share,
    Invalidate,
}
