//! Fixture with seeded coverage holes: the `(Modified, FwdGetS)` and
//! `(Invalid, Recall)` probe transitions are reachable in the model but
//! have no handling arm here. The missing `(Invalid, Recall)` arm also
//! removes `Recall`'s escape edge, which turns the home's seeded
//! `Recall` emission into a waits-for cycle. The probe arms are explicit
//! (no wildcards) so the seeded `Nudge` probe is handled nowhere.

pub enum PrivState {
    Modified,
    Exclusive,
    Shared,
    Invalid,
}

pub fn probe(state: PrivState, probe: Probe) -> ProbeEffect {
    match (state, probe) {
        (PrivState::Modified, Probe::FwdGetM | Probe::Inv | Probe::Recall | Probe::Discovery(_)) => {
            effect()
        }
        (
            PrivState::Exclusive | PrivState::Shared,
            Probe::FwdGetS | Probe::FwdGetM | Probe::Inv | Probe::Recall | Probe::Discovery(_),
        ) => effect(),
        (PrivState::Invalid, Probe::FwdGetS | Probe::FwdGetM | Probe::Inv | Probe::Discovery(_)) => {
            effect()
        }
    }
}

pub fn local_access(state: PrivState, op: MemOpKind) -> AccessOutcome {
    match (state, op) {
        (PrivState::Modified, _) => Hit(PrivState::Modified),
        (PrivState::Exclusive, MemOpKind::Read) => Hit(PrivState::Exclusive),
        (PrivState::Exclusive, MemOpKind::Write) => Hit(PrivState::Modified),
        (PrivState::Shared, MemOpKind::Read) => Hit(PrivState::Shared),
        (PrivState::Shared, MemOpKind::Write) => Miss(Request::Upgrade),
        (PrivState::Invalid, MemOpKind::Read) => Miss(Request::GetS),
        (PrivState::Invalid, MemOpKind::Write) => Miss(Request::GetM),
    }
}
