//! Fixture with a seeded coverage hole: the `(Modified, FwdGetS)` probe
//! transition is reachable in the model but has no handling arm here.

pub enum PrivState {
    Modified,
    Exclusive,
    Shared,
    Invalid,
}

pub fn probe(state: PrivState, probe: Probe) -> ProbeEffect {
    match (state, probe) {
        (PrivState::Modified, Probe::FwdGetM | Probe::Inv | Probe::Recall | Probe::Discovery(_)) => {
            effect()
        }
        (PrivState::Exclusive | PrivState::Shared | PrivState::Invalid, _) => effect(),
    }
}

pub fn local_access(state: PrivState, op: MemOpKind) -> AccessOutcome {
    match (state, op) {
        (_, _) => outcome(),
    }
}
