//! Fixture home-side decision functions with full view coverage, so the
//! only seeded coverage violation lives in `private.rs`.

pub enum DirView {
    Untracked,
    Exclusive(CoreId),
    Shared(SharerSet),
}

pub fn decide(req: Request, view: &DirView) -> Decision {
    match req {
        Request::GetS => decide_gets(view),
        Request::GetM | Request::Upgrade => decide_getm(view),
        Request::PutS | Request::PutE | Request::PutM => {
            unreachable!("puts go through decide_put")
        }
    }
}

fn decide_gets(view: &DirView) -> Decision {
    match view {
        DirView::Untracked => decision(),
        DirView::Exclusive(_) => decision(),
        DirView::Shared(_) => decision(),
    }
}

fn decide_getm(view: &DirView) -> Decision {
    match view {
        DirView::Untracked => decision(),
        DirView::Exclusive(_) => decision(),
        DirView::Shared(_) => decision(),
    }
}

pub fn decide_put(req: Request, from: CoreId, view: &DirView) -> PutOutcome {
    match req {
        Request::PutS | Request::PutE | Request::PutM => match view {
            DirView::Untracked => put(),
            DirView::Exclusive(_) => put(),
            DirView::Shared(_) => put(),
        },
        _ => unreachable!("demand requests go through decide"),
    }
}
