//! Fixture home-side decision functions with full view coverage and the
//! model's probe emissions, plus two seeded waits-for violations: the
//! `GetS`/`Exclusive` arm emits the unhandled `Nudge` probe
//! (unsatisfiable wait), and the `GetM`/`Exclusive` arm emits `Recall`,
//! whose `(Invalid, Recall)` escape edge `private.rs` deliberately
//! lacks (waits-for cycle).

pub enum DirView {
    Untracked,
    Exclusive(CoreId),
    Shared(SharerSet),
}

pub fn decide(req: Request, view: &DirView) -> Decision {
    match req {
        Request::GetS => decide_gets(view),
        Request::GetM | Request::Upgrade => decide_getm(view),
        Request::PutS | Request::PutE | Request::PutM => {
            unreachable!("puts go through decide_put")
        }
    }
}

fn decide_gets(view: &DirView) -> Decision {
    match view {
        DirView::Untracked => decision(),
        DirView::Exclusive(_) => probe_then(&[
            Probe::FwdGetS,
            Probe::Nudge,
        ]),
        DirView::Shared(_) => decision(),
    }
}

fn decide_getm(view: &DirView) -> Decision {
    match view {
        DirView::Untracked => decision(),
        DirView::Exclusive(_) => probe_then(&[
            Probe::FwdGetM,
            Probe::Recall,
        ]),
        DirView::Shared(_) => probe_then(&[
            Probe::Inv,
        ]),
    }
}

pub fn decide_put(req: Request, from: CoreId, view: &DirView) -> PutOutcome {
    match req {
        Request::PutS | Request::PutE | Request::PutM => match view {
            DirView::Untracked => put(),
            DirView::Exclusive(_) => put(),
            DirView::Shared(_) => put(),
        },
        _ => unreachable!("demand requests go through decide"),
    }
}
