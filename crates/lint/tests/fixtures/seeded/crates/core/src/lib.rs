//! Fixture hot crate with nothing to flag.

pub fn nothing() {}
