//! Fixture mirror of the memory-operation kinds.

pub enum MemOpKind {
    Read,
    Write,
}
