//! Fixture stats structs whose fields are all properly registered in
//! their merge paths — this file stays clean.

pub struct Histogram {
    pub counts: Vec<u64>,
}

impl Histogram {
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
    }
}

pub struct StatSink {
    pub names: Vec<String>,
    pub values: Vec<f64>,
    pub index: Vec<(String, u32)>,
}

impl StatSink {
    pub fn merge(&mut self, other: &StatSink) {
        for (name, &(_, oid)) in other.names.iter().zip(&other.index) {
            self.names.push(name.clone());
            self.index.push((name.clone(), oid));
            self.values.push(other.values[oid as usize]);
        }
    }
}
