//! Fixture stats structs whose fields are all properly registered in
//! their merge paths — this file stays clean.

pub struct Histogram {
    pub counts: Vec<u64>,
}

impl Histogram {
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
    }
}

pub struct StatSink {
    pub counters: Vec<(String, u64)>,
}

impl StatSink {
    pub fn merge_add(&mut self, other: &StatSink) {
        self.counters.extend(other.counters.iter().cloned());
    }
}
