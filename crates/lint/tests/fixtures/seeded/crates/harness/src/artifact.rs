//! Fixture serialization paths. `report_to_json` drops
//! `SimReport.lost_counter` — the seeded stat-registration violation.
//! `report_from_json` and the sample paths mention every field.

pub fn report_to_json(r: &SimReport) -> Value {
    obj(&[("cycles", r.cycles)])
}

pub fn report_from_json(v: &Value) -> SimReport {
    SimReport {
        cycles: num(v, "cycles"),
        lost_counter: 0,
    }
}

pub fn fault_to_json(f: &FaultSummary) -> Value {
    obj(&[("injected", f.injected), ("detected", f.detected)])
}

pub fn fault_from_json(v: &Value) -> FaultSummary {
    FaultSummary {
        injected: num(v, "injected"),
        detected: num(v, "detected"),
    }
}

pub fn sample_to_json(s: &TimelineSample) -> Value {
    obj(&[("at", s.at), ("l2_misses", s.l2_misses)])
}

pub fn sample_from_json(v: &Value) -> TimelineSample {
    TimelineSample {
        at: num(v, "at"),
        l2_misses: num(v, "l2_misses"),
    }
}
