//! Fixture with a seeded determinism violation: `save_csv` iterates an
//! `FxHashMap` without imposing an order, so the CSV bytes differ from
//! run to run.

pub struct Table {
    rows: FxHashMap<String, u64>,
}

impl Table {
    pub fn save_csv(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.rows.iter() {
            out.push_str(name);
            out.push(',');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }
}
