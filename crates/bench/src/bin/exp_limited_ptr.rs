//! E15 (Figure L, extension): limited-pointer sharer formats composed
//! with the stash directory. Replacing the full-map vector with `k`
//! pointers shrinks entries further (e.g. 16 cores: 16 bits → 4k+1 bits)
//! but wide sharing overflows to broadcast invalidation. Where the stash
//! premise holds — private blocks dominate — small `k` costs almost
//! nothing, compounding the paper's storage saving.

use stashdir::{CostParams, CoverageRatio, DirSpec, Machine, SharerFormat, SystemConfig, Workload};
use stashdir_bench::{f2, f3, Params, Table};

fn main() {
    let params = Params::default();
    let coverage = CoverageRatio::new(1, 8);
    let formats = [
        ("fullmap-vec", SharerFormat::FullMap),
        ("ptr4", SharerFormat::LimitedPtr { k: 4 }),
        ("ptr2", SharerFormat::LimitedPtr { k: 2 }),
        ("ptr1", SharerFormat::LimitedPtr { k: 1 }),
    ];
    let workloads = [
        Workload::DataParallel,
        Workload::Lu,
        Workload::ReadMostly,
        Workload::Stencil,
    ];

    let mut table = Table::new(
        "E15 / Fig L — limited-pointer formats on the stash directory at 1/8 coverage",
        &[
            "workload",
            "format",
            "norm_time",
            "inv_probes",
            "entry_bits",
            "slice_KiB",
        ],
    );
    for workload in workloads {
        let ideal = {
            let cfg = SystemConfig::default().with_dir(DirSpec::FullMap);
            let traces = workload.generate(cfg.cores, params.ops, params.seed);
            let r = Machine::new(cfg).run(traces);
            r.assert_clean();
            r.cycles as f64
        };
        for (name, format) in formats {
            let mut cfg = SystemConfig::default().with_dir(DirSpec::stash(coverage));
            cfg.sharer_format = format;
            let cost: CostParams = cfg.cost_params();
            let slice_params = CostParams {
                llc_lines: cost.llc_lines / cfg.cores as u64,
                ..cost
            };
            let slice_bits = cfg.dir_slice().build(0).storage_bits(&slice_params);
            let traces = workload.generate(cfg.cores, params.ops, params.seed);
            let r = Machine::new(cfg).run(traces);
            r.assert_clean();
            table.row(vec![
                workload.name().to_string(),
                name.to_string(),
                f3(r.cycles as f64 / ideal),
                f2(r.stat("noc.messages.inv")),
                format.entry_bits(&slice_params).to_string(),
                f2(slice_bits as f64 / 8.0 / 1024.0),
            ]);
        }
        eprintln!("[{workload} done]");
    }
    table.print();
    table.save_csv("e15_limited_ptr");
}
