//! E15 (Figure L, extension): limited-pointer sharer formats composed
//! with the stash directory. Replacing the full-map vector with `k`
//! pointers shrinks entries further (e.g. 16 cores: 16 bits → 4k+1 bits)
//! but wide sharing overflows to broadcast invalidation. Where the stash
//! premise holds — private blocks dominate — small `k` costs almost
//! nothing, compounding the paper's storage saving.
//!
//! The experiment itself lives in the registry
//! ([`stashdir_harness::experiments`], key `limited_ptr`) and runs under
//! the parallel sweep; this binary is a thin wrapper kept for its
//! original CLI, producing the same table and CSV.

use stashdir_bench::Params;
use stashdir_harness::experiments::{self, ResultSet};
use stashdir_harness::{run_cases, RunOptions};

fn main() {
    let params = Params::default();
    let exp = experiments::find("limited_ptr").expect("limited_ptr is registered");
    let options = RunOptions {
        progress: false,
        ..RunOptions::default()
    };
    let results: ResultSet = run_cases(&exp.cases(params), &options)
        .into_iter()
        .filter_map(|o| o.report.map(|r| (o.spec.id(), r)))
        .collect();
    let assembled = exp.assemble(params, &results);
    assembled.table.print();
    assembled.table.save_csv(exp.csv);
}
