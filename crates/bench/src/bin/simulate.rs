//! A command-line front end for one-off simulations.
//!
//! ```sh
//! cargo run --release -p stashdir-bench --bin simulate -- \
//!     --workload canneal --dir stash --coverage 1/8 --cores 16 \
//!     --ops 20000 --seed 7 --format ptr2 --full-stats
//! ```
//!
//! Prints the headline numbers (cycles, miss latency, eviction and
//! discovery counts) and, with `--full-stats`, the entire statistics
//! sink as CSV.

use stashdir::{CoverageRatio, DirSpec, Machine, SharerFormat, SystemConfig, Workload};
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    workload: Workload,
    dir: String,
    coverage: CoverageRatio,
    cores: u16,
    ops: usize,
    seed: u64,
    format: SharerFormat,
    notify: bool,
    full_stats: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workload: Workload::DataParallel,
            dir: "stash".into(),
            coverage: CoverageRatio::new(1, 8),
            cores: 16,
            ops: 10_000,
            seed: 7,
            format: SharerFormat::FullMap,
            notify: true,
            full_stats: false,
        }
    }
}

fn usage() -> String {
    let names: Vec<&str> = Workload::suite().iter().map(|w| w.name()).collect();
    format!(
        "usage: simulate [options]\n\
         \x20 --workload <name>    one of: {}\n\
         \x20 --dir <org>          a registry name (fullmap | sparse | stash | cuckoo,\n\
         \x20                      paired with --coverage) or a full spec such as\n\
         \x20                      dls, opaque@1/8, limited-ptr2@1/8x8w, stash@1/4x4w\n\
         \x20                      (default stash)\n\
         \x20 --coverage <n/d>     directory coverage ratio (default 1/8)\n\
         \x20 --cores <n>          power-of-two core count (default 16)\n\
         \x20 --ops <n>            operations per core (default 10000)\n\
         \x20 --seed <n>           workload seed (default 7)\n\
         \x20 --format <f>         fullmap | ptr<k> sharer encoding (default fullmap)\n\
         \x20 --no-notify          silent clean evictions (ablation)\n\
         \x20 --full-stats         dump every counter as CSV",
        names.join(" | ")
    )
}

fn parse_coverage(s: &str) -> Option<CoverageRatio> {
    match s.split_once('/') {
        Some((n, d)) => Some(CoverageRatio::new(n.parse().ok()?, d.parse().ok()?)),
        None => Some(CoverageRatio::new(s.parse().ok()?, 1)),
    }
}

fn parse_format(s: &str) -> Option<SharerFormat> {
    if s == "fullmap" {
        Some(SharerFormat::FullMap)
    } else {
        let k = s.strip_prefix("ptr")?.parse().ok()?;
        Some(SharerFormat::LimitedPtr { k })
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--workload" => {
                let v = value("--workload")?;
                args.workload =
                    Workload::from_name(&v).ok_or_else(|| format!("unknown workload {v}"))?;
            }
            "--dir" => args.dir = value("--dir")?,
            "--coverage" => {
                let v = value("--coverage")?;
                args.coverage = parse_coverage(&v).ok_or_else(|| format!("bad coverage {v}"))?;
            }
            "--cores" => {
                args.cores = value("--cores")?
                    .parse()
                    .map_err(|e| format!("bad core count: {e}"))?;
            }
            "--ops" => {
                args.ops = value("--ops")?
                    .parse()
                    .map_err(|e| format!("bad op count: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--format" => {
                let v = value("--format")?;
                args.format = parse_format(&v).ok_or_else(|| format!("bad format {v}"))?;
            }
            "--no-notify" => args.notify = false,
            "--full-stats" => args.full_stats = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let dir = match args.dir.as_str() {
        "fullmap" => DirSpec::FullMap,
        "sparse" => DirSpec::sparse(args.coverage),
        "stash" => DirSpec::stash(args.coverage),
        "cuckoo" => DirSpec::Cuckoo {
            coverage: args.coverage,
        },
        // Anything else is a full `DirSpec` (dls, opaque@1/8,
        // limited-ptr2@1/8x8w, …), which carries its own coverage.
        spec => match spec.parse::<DirSpec>() {
            Ok(d) => d,
            Err(msg) => {
                eprintln!("bad --dir: {msg}\n{}", usage());
                return ExitCode::FAILURE;
            }
        },
    };
    let mut config = SystemConfig::default().with_cores(args.cores).with_dir(dir);
    config.sharer_format = args.format;
    config.notify_clean_evictions = args.notify;

    eprintln!(
        "simulating {} on {} cores, {} ({} ops/core, seed {}) ...",
        args.workload, args.cores, config.dir, args.ops, args.seed
    );
    let traces = args.workload.generate(args.cores, args.ops, args.seed);
    let report = Machine::new(config).run(traces);
    if !report.violations.is_empty() {
        eprintln!("COHERENCE VIOLATIONS:");
        for v in report.violations.iter().take(10) {
            eprintln!("  {v}");
        }
        return ExitCode::FAILURE;
    }

    println!("cycles                 {}", report.cycles);
    println!("ops retired            {}", report.completed_ops);
    println!(
        "mean miss latency      {:.1} cyc over {} misses",
        report.stat("core.mean_miss_latency"),
        report.stat("core.misses"),
    );
    println!(
        "dir evictions          {} silent / {} invalidating ({} copies lost)",
        report.stat("dir.silent_evictions"),
        report.stat("dir.invalidating_evictions"),
        report.stat("dir.copies_invalidated"),
    );
    println!(
        "discoveries            {} demand ({} found, {} stale) + {} for LLC evictions",
        report.stat("bank.discoveries"),
        report.stat("bank.discoveries_found"),
        report.stat("bank.discoveries_stale"),
        report.stat("bank.evict_discoveries"),
    );
    println!("noc flit-hops          {}", report.stat("noc.flit_hops"));
    println!("dram accesses          {}", report.stat("dram.accesses"));
    if args.full_stats {
        println!("\n{}", report.sink.to_csv());
    }
    ExitCode::SUCCESS
}
