//! E6 (Figure D): the cost side of the stash mechanism — discovery
//! broadcasts. Rate per 1k ops, how many found a live hidden copy vs
//! found nobody (stale stash bits), discoveries forced by LLC evictions,
//! and the mean latency of a discovery round.
//!
//! Runs on the parallel harness; pass `--help` for the shared flags
//! (`--jobs`, `--ops`, `--seed`, `--resume`, ...).

use std::process::ExitCode;

fn main() -> ExitCode {
    stashdir_harness::run_single_experiment_cli("discovery")
}
