//! E6 (Figure D): the cost side of the stash mechanism — discovery
//! broadcasts. Rate per 1k ops, how many found a live hidden copy vs
//! found nobody (stale stash bits), discoveries forced by LLC evictions,
//! and the mean latency of a discovery round.

use stashdir::{CoverageRatio, DirSpec, Workload};
use stashdir_bench::{f2, machine_with, n0, run_case, Params, Table};

fn main() {
    let params = Params::default();
    let mut table = Table::new(
        "E6 / Fig D — discovery behavior of the stash directory at 1/8 coverage",
        &[
            "workload",
            "disc/kop",
            "demand_disc",
            "found",
            "stale",
            "llc_evict_disc",
            "mean_disc_lat",
            "hidden_wb",
        ],
    );
    for workload in Workload::suite() {
        let r = run_case(
            machine_with(DirSpec::stash(CoverageRatio::new(1, 8))),
            workload,
            params,
        );
        table.row(vec![
            workload.name().to_string(),
            f2(r.discoveries_per_kop()),
            n0(r.stat("bank.discoveries")),
            n0(r.stat("bank.discoveries_found")),
            n0(r.stat("bank.discoveries_stale")),
            n0(r.stat("bank.evict_discoveries")),
            f2(r.stat("bank.mean_discovery_latency")),
            n0(r.stat("bank.hidden_writebacks")),
        ]);
        eprintln!("[{workload} done]");
    }
    table.print();
    table.save_csv("e6_discovery");
}
