//! E4 (Figure B): directory-induced invalidations per 1000 retired
//! operations vs coverage. The cost the stash directory removes: sparse
//! explodes as coverage shrinks, stash stays near zero (only shared
//! victims still invalidate).
//!
//! Runs on the parallel harness; pass `--help` for the shared flags
//! (`--jobs`, `--ops`, `--seed`, `--resume`, ...).

use std::process::ExitCode;

fn main() -> ExitCode {
    stashdir_harness::run_single_experiment_cli("invalidations")
}
