//! E4 (Figure B): directory-induced invalidations per 1000 retired
//! operations vs coverage. The cost the stash directory removes: sparse
//! explodes as coverage shrinks, stash stays near zero (only shared
//! victims still invalidate).

use stashdir::{CoverageRatio, DirSpec, Workload};
use stashdir_bench::{f2, machine_with, run_case, Params, Table};

fn main() {
    let params = Params::default();
    let sweep = CoverageRatio::sweep();
    let mut headers: Vec<String> = vec!["workload".into()];
    for c in &sweep {
        headers.push(format!("sparse@{c}"));
    }
    for c in &sweep {
        headers.push(format!("stash@{c}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "E4 / Fig B — directory-induced invalidations per 1k ops vs coverage",
        &header_refs,
    );
    for workload in Workload::suite() {
        let mut row = vec![workload.name().to_string()];
        for &coverage in &sweep {
            let r = run_case(machine_with(DirSpec::sparse(coverage)), workload, params);
            row.push(f2(r.invalidations_per_kop()));
        }
        for &coverage in &sweep {
            let r = run_case(machine_with(DirSpec::stash(coverage)), workload, params);
            row.push(f2(r.invalidations_per_kop()));
        }
        table.row(row);
        eprintln!("[{workload} done]");
    }
    table.print();
    table.save_csv("e4_invalidations");
}
