//! E7 (Figure E): NoC traffic (flit-hops) at 1/8 coverage, normalized to
//! full-map, with the message-class breakdown that shows where each
//! organization spends its links: sparse on invalidations + refetches,
//! stash on (rare) discovery broadcasts.
//!
//! Runs on the parallel harness; pass `--help` for the shared flags
//! (`--jobs`, `--ops`, `--seed`, `--resume`, ...).

use std::process::ExitCode;

fn main() -> ExitCode {
    stashdir_harness::run_single_experiment_cli("traffic")
}
