//! E7 (Figure E): NoC traffic (flit-hops) at 1/8 coverage, normalized to
//! full-map, with the message-class breakdown that shows where each
//! organization spends its links: sparse on invalidations + refetches,
//! stash on (rare) discovery broadcasts.

use stashdir::{CoverageRatio, DirSpec, SimReport, Workload};
use stashdir_bench::{f3, machine_with, n0, run_case, Params, Table};

fn class_flits(r: &SimReport, class: &str) -> f64 {
    r.stat(&format!("noc.flits.{class}"))
}

fn main() {
    let params = Params::default();
    let coverage = CoverageRatio::new(1, 8);
    let mut table = Table::new(
        "E7 / Fig E — NoC traffic at 1/8 coverage (flit-hops normalized to full-map; flits by class)",
        &[
            "workload",
            "sparse_norm",
            "stash_norm",
            "sparse_inv_flits",
            "stash_inv_flits",
            "stash_disc_flits",
            "sparse_data_flits",
            "stash_data_flits",
        ],
    );
    for workload in Workload::suite() {
        let ideal = run_case(machine_with(DirSpec::FullMap), workload, params);
        let sparse = run_case(machine_with(DirSpec::sparse(coverage)), workload, params);
        let stash = run_case(machine_with(DirSpec::stash(coverage)), workload, params);
        table.row(vec![
            workload.name().to_string(),
            f3(sparse.flit_hops() / ideal.flit_hops()),
            f3(stash.flit_hops() / ideal.flit_hops()),
            n0(class_flits(&sparse, "inv")),
            n0(class_flits(&stash, "inv")),
            n0(class_flits(&stash, "discovery")),
            n0(class_flits(&sparse, "data")),
            n0(class_flits(&stash, "data")),
        ]);
        eprintln!("[{workload} done]");
    }
    table.print();
    table.save_csv("e7_traffic");
}
