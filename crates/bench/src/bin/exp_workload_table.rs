//! E2 (Table 2): workload characterization — the sharing properties that
//! drive directory behavior, led by the private-block fraction the stash
//! mechanism exploits.

use stashdir::{Characterization, Workload};
use stashdir_bench::{Params, Table};

fn main() {
    let params = Params::default();
    let mut headers = vec!["workload"];
    headers.extend(Characterization::headers());
    let mut table = Table::new(
        format!(
            "E2 / Table 2 — workload characterization (16 cores x {} ops)",
            params.ops
        ),
        &headers,
    );
    for workload in Workload::suite() {
        let traces = workload.generate(16, params.ops, params.seed);
        let c = Characterization::of(&traces);
        let mut row = vec![workload.name().to_string()];
        row.extend(c.row());
        table.row(row);
    }
    table.print();
    table.save_csv("e2_workloads");
    println!(
        "Reading the table: high private_frac + low sharing_degree is the \
         regime where silent eviction pays off."
    );
}
