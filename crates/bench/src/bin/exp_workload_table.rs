//! E2 (Table 2): workload characterization — the sharing properties that
//! drive directory behavior, led by the private-block fraction the stash
//! mechanism exploits.
//!
//! Runs on the parallel harness; pass `--help` for the shared flags
//! (`--jobs`, `--ops`, `--seed`, `--resume`, ...).

use std::process::ExitCode;

fn main() -> ExitCode {
    stashdir_harness::run_single_experiment_cli("workload_table")
}
