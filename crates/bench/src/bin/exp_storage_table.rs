//! E10 (Table 3): directory storage cost. The abstract's claim: the stash
//! directory reduces space requirements to **1/8 of a conventional sparse
//! directory without compromising performance** — this table does the bit
//! accounting, including the stash bits the mechanism adds to every LLC
//! line.

use stashdir::{CostParams, CoverageRatio, DirSpec, SystemConfig};
use stashdir_bench::{f2, Table};

fn main() {
    let config = SystemConfig::default();
    let tracked = config.tracked_blocks_per_slice();
    let params = config.cost_params();
    let per_slice = CostParams {
        llc_lines: params.llc_lines / config.cores as u64,
        ..params
    };

    let mut table = Table::new(
        "E10 / Table 3 — directory storage per slice (16-core model, 48-bit PA)",
        &[
            "organization",
            "entries",
            "entry_bits",
            "extra_bits",
            "total_KiB",
            "vs sparse@1",
        ],
    );

    let sparse_full = DirSpec::sparse(CoverageRatio::FULL)
        .slice_config(tracked)
        .build(0);
    let baseline_bits = sparse_full.storage_bits(&per_slice) as f64;

    let cases: Vec<(String, DirSpec)> =
        std::iter::once(("sparse@1".to_string(), DirSpec::sparse(CoverageRatio::FULL)))
            .chain(CoverageRatio::sweep().into_iter().flat_map(|c| {
                [
                    (format!("sparse@{c}"), DirSpec::sparse(c)),
                    (format!("stash@{c}"), DirSpec::stash(c)),
                ]
            }))
            .collect();

    let mut seen = std::collections::HashSet::new();
    for (label, spec) in cases {
        if !seen.insert(label.clone()) {
            continue;
        }
        let dir = spec.slice_config(tracked).build(0);
        let total = dir.storage_bits(&per_slice);
        let entry_bits = per_slice.bits_per_entry() * dir.capacity() as u64;
        table.row(vec![
            label,
            dir.capacity().to_string(),
            entry_bits.to_string(),
            (total - entry_bits).to_string(),
            f2(total as f64 / 8.0 / 1024.0),
            f2(total as f64 / baseline_bits),
        ]);
    }
    table.print();
    table.save_csv("e10_storage");
    println!(
        "stash@1/8 costs ~{:.0}% of the conventional sparse@1 directory it \
         replaces (per E3, at equal performance).",
        100.0
            * DirSpec::stash(CoverageRatio::new(1, 8))
                .slice_config(tracked)
                .build(0)
                .storage_bits(&per_slice) as f64
            / baseline_bits
    );
}
