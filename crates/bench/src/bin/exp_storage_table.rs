//! E10 (Table 3): directory storage cost. The abstract's claim: the stash
//! directory reduces space requirements to **1/8 of a conventional sparse
//! directory without compromising performance** — this table does the bit
//! accounting, including the stash bits the mechanism adds to every LLC
//! line.
//!
//! Runs on the parallel harness; pass `--help` for the shared flags
//! (`--jobs`, `--ops`, `--seed`, `--resume`, ...).

use std::process::ExitCode;

fn main() -> ExitCode {
    stashdir_harness::run_single_experiment_cli("storage_table")
}
