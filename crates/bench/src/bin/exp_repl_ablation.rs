//! E11 (Figure H, ablation): how much of the stash directory's win comes
//! from *victim selection* (private-first LRU) versus the silent-drop
//! rule itself. Plain LRU and random selection still drop private
//! victims silently when they happen to be chosen — but they also pick
//! shared victims that must invalidate.
//!
//! Runs on the parallel harness; pass `--help` for the shared flags
//! (`--jobs`, `--ops`, `--seed`, `--resume`, ...).

use std::process::ExitCode;

fn main() -> ExitCode {
    stashdir_harness::run_single_experiment_cli("repl_ablation")
}
