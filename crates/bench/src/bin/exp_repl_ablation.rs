//! E11 (Figure H, ablation): how much of the stash directory's win comes
//! from *victim selection* (private-first LRU) versus the silent-drop
//! rule itself. Plain LRU and random selection still drop private
//! victims silently when they happen to be chosen — but they also pick
//! shared victims that must invalidate.

use stashdir::{CoverageRatio, DirReplPolicy, DirSpec, Workload};
use stashdir_bench::{f2, f3, machine_with, run_case, Params, Table};

fn main() {
    let params = Params::default();
    let coverage = CoverageRatio::new(1, 8);
    let policies = [
        ("private-first-lru", DirReplPolicy::PrivateFirstLru),
        ("plain-lru", DirReplPolicy::Lru),
        ("random", DirReplPolicy::Random),
    ];
    let workloads = [
        Workload::Lu,
        Workload::ReadMostly,
        Workload::Stencil,
        Workload::ProducerConsumer,
    ];

    let mut table = Table::new(
        "E11 / Fig H — stash victim-selection ablation at 1/8 coverage",
        &[
            "workload",
            "policy",
            "norm_time",
            "silent_frac",
            "copies_lost",
        ],
    );
    for workload in workloads {
        let ideal = run_case(machine_with(DirSpec::FullMap), workload, params).cycles as f64;
        for (name, repl) in policies {
            let dir = DirSpec::Stash {
                coverage,
                assoc: 8,
                repl,
            };
            let r = run_case(machine_with(dir), workload, params);
            table.row(vec![
                workload.name().to_string(),
                name.to_string(),
                f3(r.cycles as f64 / ideal),
                f2(r.silent_eviction_fraction()),
                f2(r.stat("dir.copies_invalidated")),
            ]);
        }
        eprintln!("[{workload} done]");
    }
    table.print();
    table.save_csv("e11_repl_ablation");
}
