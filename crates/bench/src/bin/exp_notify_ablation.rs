//! E14 (Figure K, extension): the eviction-notification ablation. With
//! `PutS`/`PutE` hints the home clears stale stash bits eagerly, so
//! discovery rounds almost always find a live hidden copy. With silent
//! clean drops, stale stash bits linger and demand misses burn
//! all-core broadcasts that find nobody. This quantifies why the design
//! wants replacement hints.

use stashdir::{CoverageRatio, DirSpec, Machine, SystemConfig, Workload};
use stashdir_bench::{f2, f3, n0, Params, Table};

fn main() {
    let params = Params::default();
    let coverage = CoverageRatio::new(1, 8);
    let workloads = [
        Workload::DataParallel,
        Workload::Canneal,
        Workload::Fft,
        Workload::ReadMostly,
    ];
    let mut table = Table::new(
        "E14 / Fig K — clean-eviction notification ablation (stash at 1/8)",
        &[
            "workload",
            "notify",
            "norm_time",
            "discoveries",
            "found",
            "stale",
            "stale_frac",
        ],
    );
    for workload in workloads {
        let ideal = {
            let cfg = SystemConfig::default().with_dir(DirSpec::FullMap);
            let traces = workload.generate(cfg.cores, params.ops, params.seed);
            let r = Machine::new(cfg).run(traces);
            r.assert_clean();
            r.cycles as f64
        };
        for notify in [true, false] {
            let mut cfg = SystemConfig::default().with_dir(DirSpec::stash(coverage));
            cfg.notify_clean_evictions = notify;
            let traces = workload.generate(cfg.cores, params.ops, params.seed);
            let r = Machine::new(cfg).run(traces);
            r.assert_clean();
            let found = r.stat("bank.discoveries_found");
            let stale = r.stat("bank.discoveries_stale");
            let total = found + stale;
            table.row(vec![
                workload.name().to_string(),
                notify.to_string(),
                f3(r.cycles as f64 / ideal),
                n0(total),
                n0(found),
                n0(stale),
                f2(if total == 0.0 { 0.0 } else { stale / total }),
            ]);
        }
        eprintln!("[{workload} done]");
    }
    table.print();
    table.save_csv("e14_notify");
}
