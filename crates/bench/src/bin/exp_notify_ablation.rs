//! E14 (Figure K, extension): the eviction-notification ablation. With
//! `PutS`/`PutE` hints the home clears stale stash bits eagerly, so
//! discovery rounds almost always find a live hidden copy. With silent
//! clean drops, stale stash bits linger and demand misses burn
//! all-core broadcasts that find nobody. This quantifies why the design
//! wants replacement hints.
//!
//! Runs on the parallel harness; pass `--help` for the shared flags
//! (`--jobs`, `--ops`, `--seed`, `--resume`, ...).

use std::process::ExitCode;

fn main() -> ExitCode {
    stashdir_harness::run_single_experiment_cli("notify_ablation")
}
