//! E3 (Figure A) — the headline: execution time vs directory coverage for
//! the conventional sparse directory and the stash directory, normalized
//! to the unbounded full-map ideal, across the whole workload suite.
//!
//! Expected shape (the paper's claim): sparse degrades steeply once
//! coverage drops below the working set; stash stays within a few percent
//! of ideal down to 1/8 coverage and below.

use stashdir::{CoverageRatio, DirSpec, Workload};
use stashdir_bench::{f3, geomean, machine_with, run_case, Params, Table};

fn main() {
    let params = Params::default();
    let sweep = CoverageRatio::sweep();

    let mut headers: Vec<String> = vec!["workload".into()];
    for c in &sweep {
        headers.push(format!("sparse@{c}"));
    }
    for c in &sweep {
        headers.push(format!("stash@{c}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!(
            "E3 / Fig A — normalized execution time vs coverage (16 cores x {} ops, 1.0 = full-map)",
            params.ops
        ),
        &header_refs,
    );

    let mut sparse_cols: Vec<Vec<f64>> = vec![Vec::new(); sweep.len()];
    let mut stash_cols: Vec<Vec<f64>> = vec![Vec::new(); sweep.len()];
    for workload in Workload::suite() {
        let ideal = run_case(machine_with(DirSpec::FullMap), workload, params).cycles as f64;
        let mut row = vec![workload.name().to_string()];
        for (i, &coverage) in sweep.iter().enumerate() {
            let r = run_case(machine_with(DirSpec::sparse(coverage)), workload, params);
            let norm = r.cycles as f64 / ideal;
            sparse_cols[i].push(norm);
            row.push(f3(norm));
        }
        for (i, &coverage) in sweep.iter().enumerate() {
            let r = run_case(machine_with(DirSpec::stash(coverage)), workload, params);
            let norm = r.cycles as f64 / ideal;
            stash_cols[i].push(norm);
            row.push(f3(norm));
        }
        table.row(row);
        eprintln!("[{workload} done]");
    }
    let mut gm = vec!["geomean".to_string()];
    gm.extend(sparse_cols.iter().map(|c| f3(geomean(c))));
    gm.extend(stash_cols.iter().map(|c| f3(geomean(c))));
    table.row(gm);

    table.print();
    table.save_csv("e3_perf_vs_coverage");
}
