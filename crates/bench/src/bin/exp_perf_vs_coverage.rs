//! E3 (Figure A) — the headline: execution time vs directory coverage for
//! the conventional sparse directory and the stash directory, normalized
//! to the unbounded full-map ideal, across the whole workload suite.
//!
//! Expected shape (the paper's claim): sparse degrades steeply once
//! coverage drops below the working set; stash stays within a few percent
//! of ideal down to 1/8 coverage and below.
//!
//! Runs on the parallel harness; pass `--help` for the shared flags
//! (`--jobs`, `--ops`, `--seed`, `--resume`, ...).

use std::process::ExitCode;

fn main() -> ExitCode {
    stashdir_harness::run_single_experiment_cli("perf_vs_coverage")
}
