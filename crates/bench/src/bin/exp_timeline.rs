//! E16 (Figure M, extension): the stash directory *over time* — how fast
//! occupancy saturates, when hiding kicks in, and how the discovery rate
//! settles. Rendered as a table plus terminal sparklines.

use stashdir::{CoverageRatio, DirSpec, Machine, SystemConfig, Workload};
use stashdir_bench::{n0, Params, Table};

/// Renders a unicode sparkline of `values` scaled to their max.
fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    values
        .iter()
        .map(|&v| BARS[((v * 7) / max) as usize])
        .collect()
}

fn main() {
    let params = Params::default();
    let workload = std::env::args()
        .nth(1)
        .and_then(|n| Workload::from_name(&n))
        .unwrap_or(Workload::Canneal);
    let cfg = SystemConfig::default()
        .with_dir(DirSpec::stash(CoverageRatio::new(1, 8)))
        .with_timeline(50_000);
    let capacity = cfg.dir_slice().entries() * cfg.cores as usize;
    let traces = workload.generate(cfg.cores, params.ops, params.seed);
    let report = Machine::new(cfg).run(traces);
    report.assert_clean();

    let mut table = Table::new(
        format!("E16 / Fig M — stash@1/8 time series on {workload} (sampled every 50k cycles)"),
        &[
            "cycle",
            "dir_occ",
            "occ_%",
            "ops",
            "silent_cum",
            "inval_cum",
            "disc_cum",
        ],
    );
    for s in &report.timeline {
        table.row(vec![
            s.cycle.to_string(),
            s.dir_occupancy.to_string(),
            format!("{:.0}%", 100.0 * s.dir_occupancy as f64 / capacity as f64),
            s.ops.to_string(),
            n0(s.silent_evictions as f64),
            n0(s.invalidating_evictions as f64),
            n0(s.discoveries as f64),
        ]);
    }
    table.print();
    table.save_csv("e16_timeline");

    // Per-interval rates as sparklines.
    let deltas = |f: fn(&stashdir::sim::report::TimelineSample) -> u64| -> Vec<u64> {
        report
            .timeline
            .windows(2)
            .map(|w| f(&w[1]).saturating_sub(f(&w[0])))
            .collect()
    };
    println!(
        "occupancy  {}",
        sparkline(
            &report
                .timeline
                .iter()
                .map(|s| s.dir_occupancy)
                .collect::<Vec<_>>()
        )
    );
    println!("hides/int  {}", sparkline(&deltas(|s| s.silent_evictions)));
    println!("disc/int   {}", sparkline(&deltas(|s| s.discoveries)));
    println!(
        "\n{} samples over {} cycles; directory capacity {capacity} entries.",
        report.timeline.len(),
        report.cycles
    );
}
