//! E5 (Figure C): what the stash directory does with its evictions at 1/8
//! coverage — how many are silent (private victims, the stash mechanism)
//! vs invalidating (shared victims), and how many invalidations the
//! private-first policy saved relative to conventional sparse.
//!
//! Runs on the parallel harness; pass `--help` for the shared flags
//! (`--jobs`, `--ops`, `--seed`, `--resume`, ...).

use std::process::ExitCode;

fn main() -> ExitCode {
    stashdir_harness::run_single_experiment_cli("eviction_breakdown")
}
