//! E5 (Figure C): what the stash directory does with its evictions at 1/8
//! coverage — how many are silent (private victims, the stash mechanism)
//! vs invalidating (shared victims), and how many invalidations the
//! private-first policy saved relative to conventional sparse.

use stashdir::{CoverageRatio, DirSpec, Workload};
use stashdir_bench::{f2, machine_with, n0, run_case, Params, Table};

fn main() {
    let params = Params::default();
    let coverage = CoverageRatio::new(1, 8);
    let mut table = Table::new(
        "E5 / Fig C — stash eviction breakdown at 1/8 coverage",
        &[
            "workload",
            "evictions",
            "silent",
            "invalidating",
            "silent_frac",
            "sparse_copies_lost",
            "stash_copies_lost",
        ],
    );
    for workload in Workload::suite() {
        let stash = run_case(machine_with(DirSpec::stash(coverage)), workload, params);
        let sparse = run_case(machine_with(DirSpec::sparse(coverage)), workload, params);
        let silent = stash.stat("dir.silent_evictions");
        let inval = stash.stat("dir.invalidating_evictions");
        table.row(vec![
            workload.name().to_string(),
            n0(silent + inval),
            n0(silent),
            n0(inval),
            f2(stash.silent_eviction_fraction()),
            n0(sparse.stat("dir.copies_invalidated")),
            n0(stash.stat("dir.copies_invalidated")),
        ]);
        eprintln!("[{workload} done]");
    }
    table.print();
    table.save_csv("e5_eviction_breakdown");
}
