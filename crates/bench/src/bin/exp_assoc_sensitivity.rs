//! E8 (Figure F): sensitivity to directory associativity at 1/8 coverage.
//! Conventional sparse leans on associativity to dodge conflicts; the
//! stash directory barely cares because conflicts on private entries are
//! free.

use stashdir::{CoverageRatio, DirReplPolicy, DirSpec, Workload};
use stashdir_bench::{f3, machine_with, run_case, Params, Table};

fn main() {
    let params = Params::default();
    let coverage = CoverageRatio::new(1, 8);
    let assocs = [2usize, 4, 8, 16];
    let workloads = [
        Workload::DataParallel,
        Workload::Fft,
        Workload::Lu,
        Workload::ReadMostly,
    ];

    let mut headers: Vec<String> = vec!["workload".into()];
    for a in assocs {
        headers.push(format!("sparse_{a}w"));
    }
    for a in assocs {
        headers.push(format!("stash_{a}w"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "E8 / Fig F — sensitivity to directory associativity at 1/8 coverage (normalized to full-map)",
        &header_refs,
    );

    for workload in workloads {
        let ideal = run_case(machine_with(DirSpec::FullMap), workload, params).cycles as f64;
        let mut row = vec![workload.name().to_string()];
        for &assoc in &assocs {
            let dir = DirSpec::Sparse {
                coverage,
                assoc,
                repl: DirReplPolicy::Lru,
            };
            let r = run_case(machine_with(dir), workload, params);
            row.push(f3(r.cycles as f64 / ideal));
        }
        for &assoc in &assocs {
            let dir = DirSpec::Stash {
                coverage,
                assoc,
                repl: DirReplPolicy::PrivateFirstLru,
            };
            let r = run_case(machine_with(dir), workload, params);
            row.push(f3(r.cycles as f64 / ideal));
        }
        table.row(row);
        eprintln!("[{workload} done]");
    }
    table.print();
    table.save_csv("e8_assoc_sensitivity");
}
