//! E8 (Figure F): sensitivity to directory associativity at 1/8 coverage.
//! Conventional sparse leans on associativity to dodge conflicts; the
//! stash directory barely cares because conflicts on private entries are
//! free.
//!
//! Runs on the parallel harness; pass `--help` for the shared flags
//! (`--jobs`, `--ops`, `--seed`, `--resume`, ...).

use std::process::ExitCode;

fn main() -> ExitCode {
    stashdir_harness::run_single_experiment_cli("assoc_sensitivity")
}
