//! E13 (Figure J, extension): first-order dynamic-energy comparison at
//! 1/8 coverage. The abstract claims sparse directories are pursued for
//! energy efficiency and that stash preserves it at a fraction of the
//! storage; this experiment weights the run's event counts with a
//! CACTI-class energy table ([`stashdir::EnergyModel`]).

use stashdir::{CoverageRatio, DirSpec, EnergyCounts, EnergyModel, SimReport, Workload};
use stashdir_bench::{f3, machine_with, run_case, Params, Table};

fn counts_of(r: &SimReport) -> EnergyCounts {
    EnergyCounts {
        dir_accesses: r.stat("dir.lookups") as u64,
        llc_accesses: (r.stat("llc.hits") + r.stat("llc.misses") + r.stat("llc.writebacks")) as u64,
        dram_accesses: r.stat("dram.accesses") as u64,
        flit_hops: r.stat("noc.flit_hops") as u64,
        probes: (r.stat("noc.messages.inv")
            + r.stat("noc.messages.fwd")
            + r.stat("noc.messages.discovery")) as u64,
    }
}

fn main() {
    let params = Params::default();
    let model = EnergyModel::default();
    let coverage = CoverageRatio::new(1, 8);
    let mut table = Table::new(
        "E13 / Fig J — dynamic energy at 1/8 coverage (normalized to full-map)",
        &[
            "workload",
            "sparse",
            "stash",
            "stash_dir_uJ",
            "stash_noc_uJ",
        ],
    );
    for workload in Workload::suite() {
        let ideal = run_case(machine_with(DirSpec::FullMap), workload, params);
        let sparse = run_case(machine_with(DirSpec::sparse(coverage)), workload, params);
        let stash = run_case(machine_with(DirSpec::stash(coverage)), workload, params);
        let base = model.dynamic_pj(&counts_of(&ideal));
        let stash_counts = counts_of(&stash);
        table.row(vec![
            workload.name().to_string(),
            f3(model.dynamic_pj(&counts_of(&sparse)) / base),
            f3(model.dynamic_pj(&stash_counts) / base),
            f3(stash_counts.dir_accesses as f64 * model.dir_access_pj / 1e6),
            f3(stash_counts.flit_hops as f64 * model.flit_hop_pj / 1e6),
        ]);
        eprintln!("[{workload} done]");
    }
    table.print();
    table.save_csv("e13_energy");
}
