//! E13 (Figure J, extension): first-order dynamic-energy comparison at
//! 1/8 coverage. The abstract claims sparse directories are pursued for
//! energy efficiency and that stash preserves it at a fraction of the
//! storage; this experiment weights the run's event counts with a
//! CACTI-class energy table ([`stashdir::EnergyModel`]).
//!
//! Runs on the parallel harness; pass `--help` for the shared flags
//! (`--jobs`, `--ops`, `--seed`, `--resume`, ...).

use std::process::ExitCode;

fn main() -> ExitCode {
    stashdir_harness::run_single_experiment_cli("energy")
}
