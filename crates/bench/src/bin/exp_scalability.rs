//! E9 (Figure G): scalability — the stash directory's advantage at fixed
//! 1/8 coverage as the core count grows (16 → 32 → 64). Discovery is a
//! broadcast, so this is also the stress test of the paper's claim that
//! broadcast overhead stays insignificant at scale.

use stashdir::{CoverageRatio, DirSpec, SystemConfig, Workload};
use stashdir_bench::{f2, f3, run_case, Params, Table};

fn main() {
    let params = Params::default();
    let coverage = CoverageRatio::new(1, 8);
    let core_counts = [16u16, 32, 64];
    let workloads = [
        Workload::DataParallel,
        Workload::Stencil,
        Workload::Migratory,
    ];

    let mut table = Table::new(
        "E9 / Fig G — scalability at 1/8 coverage (normalized to full-map at each core count)",
        &[
            "workload",
            "cores",
            "sparse_norm",
            "stash_norm",
            "stash_disc/kop",
        ],
    );
    for workload in workloads {
        for &cores in &core_counts {
            let base = SystemConfig::default().with_cores(cores);
            let ideal = run_case(base.clone().with_dir(DirSpec::FullMap), workload, params);
            let sparse = run_case(
                base.clone().with_dir(DirSpec::sparse(coverage)),
                workload,
                params,
            );
            let stash = run_case(
                base.clone().with_dir(DirSpec::stash(coverage)),
                workload,
                params,
            );
            table.row(vec![
                workload.name().to_string(),
                cores.to_string(),
                f3(sparse.cycles as f64 / ideal.cycles as f64),
                f3(stash.cycles as f64 / ideal.cycles as f64),
                f2(stash.discoveries_per_kop()),
            ]);
            eprintln!("[{workload} @ {cores} cores done]");
        }
    }
    table.print();
    table.save_csv("e9_scalability");
}
