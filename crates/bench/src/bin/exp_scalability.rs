//! E9 (Figure G): scalability — the stash directory's advantage at fixed
//! 1/8 coverage as the core count grows (16 → 32 → 64). Discovery is a
//! broadcast, so this is also the stress test of the paper's claim that
//! broadcast overhead stays insignificant at scale.
//!
//! Runs on the parallel harness; pass `--help` for the shared flags
//! (`--jobs`, `--ops`, `--seed`, `--resume`, ...).

use std::process::ExitCode;

fn main() -> ExitCode {
    stashdir_harness::run_single_experiment_cli("scalability")
}
