//! E12 (Figure I, extension): the related-work comparison — a cuckoo
//! directory (Ferdman et al., HPCA 2011) at matched storage. Cuckoo
//! dodges *conflicts* by relocation but still invalidates on every true
//! capacity eviction; stash dodges the *invalidations* themselves.

use stashdir::{CoverageRatio, DirSpec, Workload};
use stashdir_bench::{f3, machine_with, n0, run_case, Params, Table};

fn main() {
    let params = Params::default();
    let coverages = [CoverageRatio::new(1, 4), CoverageRatio::new(1, 8)];
    let workloads = [
        Workload::DataParallel,
        Workload::Fft,
        Workload::Canneal,
        Workload::Migratory,
    ];

    let mut table = Table::new(
        "E12 / Fig I — stash vs cuckoo vs sparse at matched entry counts (normalized to full-map)",
        &[
            "workload",
            "coverage",
            "sparse",
            "cuckoo",
            "stash",
            "cuckoo_relocs",
            "cuckoo_copies_lost",
            "stash_copies_lost",
        ],
    );
    for workload in workloads {
        let ideal = run_case(machine_with(DirSpec::FullMap), workload, params).cycles as f64;
        for &coverage in &coverages {
            let sparse = run_case(machine_with(DirSpec::sparse(coverage)), workload, params);
            let cuckoo = run_case(machine_with(DirSpec::Cuckoo { coverage }), workload, params);
            let stash = run_case(machine_with(DirSpec::stash(coverage)), workload, params);
            table.row(vec![
                workload.name().to_string(),
                coverage.to_string(),
                f3(sparse.cycles as f64 / ideal),
                f3(cuckoo.cycles as f64 / ideal),
                f3(stash.cycles as f64 / ideal),
                n0(cuckoo.stat("dir.relocations")),
                n0(cuckoo.stat("dir.copies_invalidated")),
                n0(stash.stat("dir.copies_invalidated")),
            ]);
        }
        eprintln!("[{workload} done]");
    }
    table.print();
    table.save_csv("e12_cuckoo");
}
