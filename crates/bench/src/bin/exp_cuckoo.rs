//! E12 (Figure I, extension): the related-work comparison — a cuckoo
//! directory (Ferdman et al., HPCA 2011) at matched storage. Cuckoo
//! dodges *conflicts* by relocation but still invalidates on every true
//! capacity eviction; stash dodges the *invalidations* themselves.
//!
//! Runs on the parallel harness; pass `--help` for the shared flags
//! (`--jobs`, `--ops`, `--seed`, `--resume`, ...).

use std::process::ExitCode;

fn main() -> ExitCode {
    stashdir_harness::run_single_experiment_cli("cuckoo")
}
