//! E1 (Table 1): the simulated system configuration.

use stashdir::{CoverageRatio, DirSpec, SystemConfig};
use stashdir_bench::Table;

fn main() {
    let config = SystemConfig::default().with_dir(DirSpec::stash(CoverageRatio::new(1, 8)));
    let mut table = Table::new(
        "E1 / Table 1 — system configuration (16-core CMP model)",
        &["parameter", "value"],
    );
    for (k, v) in config.table() {
        table.row(vec![k, v]);
    }
    table.print();
    table.save_csv("e1_config");
}
