//! E1 (Table 1): the simulated system configuration.
//!
//! Runs on the parallel harness; pass `--help` for the shared flags
//! (`--jobs`, `--ops`, `--seed`, `--resume`, ...).

use std::process::ExitCode;

fn main() -> ExitCode {
    stashdir_harness::run_single_experiment_cli("config_table")
}
