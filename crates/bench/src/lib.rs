//! The experiment harness for the Stash Directory reproduction.
//!
//! One binary per experiment (`src/bin/exp_*.rs`), each regenerating one
//! table or figure from `DESIGN.md`'s per-experiment index. Binaries
//! print a human-readable table to stdout and write machine-readable CSV
//! under `results/`.
//!
//! Run everything with:
//!
//! ```sh
//! for exp in exp_config_table exp_workload_table exp_perf_vs_coverage \
//!            exp_invalidations exp_eviction_breakdown exp_discovery \
//!            exp_traffic exp_assoc_sensitivity exp_scalability \
//!            exp_storage_table exp_repl_ablation exp_cuckoo; do
//!     cargo run --release -p stashdir-bench --bin $exp
//! done
//! ```
//!
//! Environment knobs: `STASHDIR_OPS` (operations per core, default
//! 10000), `STASHDIR_SEED` (default 7).

use stashdir::{DirSpec, Machine, SimReport, SystemConfig, Workload};
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Shared run parameters, overridable from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Operations per core per run.
    pub ops: usize,
    /// Workload generator seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            ops: env_usize("STASHDIR_OPS", 10_000),
            seed: env_usize("STASHDIR_SEED", 7) as u64,
        }
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs one configuration over one workload and asserts the run was
/// coherent.
pub fn run_case(config: SystemConfig, workload: Workload, params: Params) -> SimReport {
    let traces = workload.generate(config.cores, params.ops, params.seed);
    let report = Machine::new(config).run(traces);
    report.assert_clean();
    report
}

/// Convenience: the default 16-core machine with `dir`.
pub fn machine_with(dir: DirSpec) -> SystemConfig {
    SystemConfig::default().with_dir(dir)
}

/// Geometric mean of positive values (how the paper aggregates
/// normalized execution times).
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// A printable/saveable result table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the table as CSV under `results/<name>.csv`, returning the
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if the `results/` directory cannot be created or written.
    pub fn save_csv(&self, name: &str) -> PathBuf {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir).expect("create results/");
        let path = dir.join(format!("{name}.csv"));
        let mut csv = self.headers.join(",") + "\n";
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        fs::write(&path, csv).expect("write csv");
        println!("[saved {}]", path.display());
        path
    }
}

/// Formats a float with 3 decimals for table cells.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 2 decimals for table cells.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a count (integer-valued f64) for table cells.
pub fn n0(v: f64) -> String {
    format!("{}", v.round() as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_uniform_is_identity() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_is_between_min_and_max() {
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("long_header"));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(n0(41.7), "42");
    }
}
