//! The experiment front end for the Stash Directory reproduction.
//!
//! One binary per experiment (`src/bin/exp_*.rs`), each regenerating one
//! table or figure from `DESIGN.md`'s per-experiment index. Binaries
//! print a human-readable table to stdout and write machine-readable CSV
//! under `results/`.
//!
//! The grid expansion, parallel execution, manifests and table assembly
//! all live in [`stashdir_harness`]; the E1–E14 binaries here are thin
//! wrappers over [`stashdir_harness::run_single_experiment_cli`], and
//! the whole suite runs in one parallel invocation via:
//!
//! ```sh
//! cargo run --release -p stashdir-harness --bin sweep -- --all
//! ```
//!
//! Environment knobs: `STASHDIR_OPS` (operations per core, default
//! 10000), `STASHDIR_SEED` (default 7), `STASHDIR_JOBS` (worker threads,
//! default all cores).
//!
//! This crate re-exports the harness's shared helpers so the standalone
//! binaries (`exp_limited_ptr`, `exp_timeline`, `simulate`) and any
//! external users of `stashdir_bench` keep their original API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use stashdir_harness::{f2, f3, geomean, machine_with, n0, run_case, Params, Table};
