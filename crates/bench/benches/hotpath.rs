//! The hot-path benchmark gate: microbenches of the inner-loop
//! structures this repo optimized — event diagnostics, message
//! arena allocation, batched bank stepping, directory lookup keys, and
//! stat bumping — plus scaled-down E9 macro points (64 and 256 cores),
//! with a JSON baseline (`BENCH_sim_hotpath.json` at the repo root)
//! and a `--check` mode that fails on regression.
//!
//! Each optimized structure is benchmarked **next to its legacy
//! implementation** (the pre-overhaul string ring, SipHash map, and
//! string-keyed `BTreeMap` bump), so the committed JSON carries
//! baseline *and* post-change medians and the claimed improvement can
//! be re-verified on any host from one file.
//!
//! ```sh
//! # Run and print:
//! cargo bench -p stashdir-bench --bench hotpath
//! # Refresh the committed baseline:
//! cargo bench -p stashdir-bench --bench hotpath -- --record
//! # The CI gate (fails on >10% regression vs the committed file):
//! cargo bench -p stashdir-bench --bench hotpath -- --check
//! ```

use criterion::{BenchResult, Criterion};
use stashdir::common::json::Value;
use stashdir::common::{BlockAddr, Cycle, DetRng, FxHashMap, StatSink};
use stashdir::sim::arena::Arena;
use stashdir::sim::event::EventQueue;
use stashdir::{CoverageRatio, DirConfig, DirSpec, SystemConfig, Workload};
use stashdir_harness::{run_case, Params};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hint::black_box;
use std::process::ExitCode;

/// Committed baseline location (repo root).
fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sim_hotpath.json")
}

/// Allowed regression of any median before `--check` fails.
const REGRESSION_TOLERANCE: f64 = 0.10;

/// Required speedup of the new implementation over its legacy twin on
/// at least one of the event-dispatch / stat-bump microbenches.
const REQUIRED_IMPROVEMENT: f64 = 0.20;

/// A stand-in for the simulator's `Event` payload (same shape/size as
/// `machine::Event`'s larger variant).
#[derive(Debug, Clone, Copy)]
#[allow(dead_code)]
enum BenchEvent {
    Issue(u16),
    Msg { from: u16, block: u64, version: u64 },
}

const RING_DEPTH: usize = 32;

fn bench_event_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_dispatch");
    // Legacy: every noted event renders a Debug string into a VecDeque
    // (the pre-overhaul `recent_events` trail).
    group.bench_function("legacy_string_ring", |b| {
        let mut ring: VecDeque<String> = VecDeque::new();
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 1;
            let event = BenchEvent::Msg {
                from: (cycle % 64) as u16,
                block: cycle * 7,
                version: cycle,
            };
            if ring.len() == RING_DEPTH {
                ring.pop_front();
            }
            ring.push_back(format!("{cycle}: {event:?}"));
            black_box(ring.len())
        });
    });
    // Post: store the `(cycle, event)` value in a fixed ring; format
    // only at quiesce (outside the loop).
    group.bench_function("value_ring", |b| {
        let mut ring: Vec<(u64, BenchEvent)> = Vec::with_capacity(RING_DEPTH);
        let mut head = 0usize;
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 1;
            let event = BenchEvent::Msg {
                from: (cycle % 64) as u16,
                block: cycle * 7,
                version: cycle,
            };
            if ring.len() < RING_DEPTH {
                ring.push((cycle, event));
            } else {
                ring[head] = (cycle, event);
                head = (head + 1) % RING_DEPTH;
            }
            black_box(ring.len())
        });
    });
    group.finish();
}

/// Stand-in for `machine::BankMsg` (same shape/size as the simulator's
/// in-flight message payload).
#[derive(Debug, Clone, Copy)]
#[allow(dead_code)]
struct BenchMsg {
    from: u16,
    block: u64,
    version: u64,
}

/// Same-cycle events per wave — a whole machine's banks firing at once,
/// the shape the SoA overhaul batches (one wave ≈ one cycle at 64
/// cores).
const WAVE: usize = 64;

fn wave_msg(cycle: u64, i: usize) -> BenchMsg {
    BenchMsg {
        from: (i % WAVE) as u16,
        block: cycle.wrapping_mul(7).wrapping_add(i as u64),
        version: cycle,
    }
}

fn bench_msg_arena(c: &mut Criterion) {
    let mut group = c.benchmark_group("msg_arena");
    // Legacy: one heap allocation per in-flight message, freed at pop,
    // with the pointer carried through every heap sift.
    group.bench_function("boxed", |b| {
        let mut queue: EventQueue<Box<BenchMsg>> = EventQueue::new();
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 1;
            for i in 0..WAVE {
                queue.push(Cycle::new(cycle), Box::new(wave_msg(cycle, i)));
            }
            let mut sum = 0u64;
            while let Some((_, msg)) = queue.pop() {
                sum = sum.wrapping_add(msg.version);
            }
            black_box(sum)
        });
    });
    // Post: payloads live in a generation-checked slab; the queue holds
    // 8-byte handles, and freed slots recycle through the freelist so
    // steady state allocates nothing.
    group.bench_function("slab_handles", |b| {
        let mut queue: EventQueue<stashdir::sim::arena::SlabRef> = EventQueue::new();
        let mut arena: Arena<BenchMsg> = Arena::new();
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 1;
            for i in 0..WAVE {
                let slot = arena.alloc(wave_msg(cycle, i));
                queue.push(Cycle::new(cycle), slot);
            }
            let mut sum = 0u64;
            while let Some((_, slot)) = queue.pop() {
                if let Some(msg) = arena.take(slot) {
                    sum = sum.wrapping_add(msg.version);
                }
            }
            black_box(sum)
        });
    });
    group.finish();
}

fn bench_bank_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("bank_step");
    // Legacy: one heap pop (full sift) per event, even when a whole
    // wave of bank messages lands on the same cycle.
    group.bench_function("pop_per_event", |b| {
        let mut queue: EventQueue<u32> = EventQueue::new();
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 1;
            for i in 0..WAVE as u32 {
                queue.push(Cycle::new(cycle), i);
            }
            let mut sum = 0u32;
            while let Some((_, e)) = queue.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        });
    });
    // Post: drain the whole cycle into a reused contiguous buffer and
    // walk it linearly (`pop_batch`), amortizing the heap churn.
    group.bench_function("pop_batch", |b| {
        let mut queue: EventQueue<u32> = EventQueue::new();
        let mut buf: Vec<u32> = Vec::new();
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 1;
            for i in 0..WAVE as u32 {
                queue.push(Cycle::new(cycle), i);
            }
            let mut sum = 0u32;
            while queue.pop_batch(&mut buf).is_some() {
                for &e in &buf {
                    sum = sum.wrapping_add(e);
                }
            }
            black_box(sum)
        });
    });
    group.finish();
}

fn bench_dir_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("dir_lookup");
    group.bench_function("stash8_install_lookup", |b| {
        let dir = DirConfig::stash(64, 8).build(1);
        let mut rng = DetRng::seed_from(2);
        b.iter(|| {
            let block = BlockAddr::new(rng.below(4096));
            black_box(dir.lookup(block));
        });
    });
    // The key-hashing swap, isolated: the same block-keyed map traffic
    // through std's SipHash vs the hand-rolled FxHash.
    group.bench_function("block_map_siphash", |b| {
        let mut map: HashMap<BlockAddr, u64> = HashMap::new();
        for i in 0..4096u64 {
            map.insert(BlockAddr::new(i), i);
        }
        let mut rng = DetRng::seed_from(3);
        b.iter(|| black_box(map.get(&BlockAddr::new(rng.below(8192)))));
    });
    group.bench_function("block_map_fxhash", |b| {
        let mut map: FxHashMap<BlockAddr, u64> = FxHashMap::default();
        for i in 0..4096u64 {
            map.insert(BlockAddr::new(i), i);
        }
        let mut rng = DetRng::seed_from(3);
        b.iter(|| black_box(map.get(&BlockAddr::new(rng.below(8192)))));
    });
    group.finish();
}

const STAT_KEYS: [&str; 8] = [
    "l1.hits",
    "l1.misses",
    "l2.hits",
    "l2.misses",
    "llc.hits",
    "dir.lookups",
    "noc.flit_hops",
    "dram.accesses",
];

fn bench_stat_bump(c: &mut Criterion) {
    let mut group = c.benchmark_group("stat_bump");
    // Legacy: every bump walks a string-keyed BTreeMap (the
    // pre-overhaul `StatSink` representation).
    group.bench_function("string_btreemap", |b| {
        let mut sink: BTreeMap<String, f64> = BTreeMap::new();
        let mut i = 0usize;
        b.iter(|| {
            let key = STAT_KEYS[i % STAT_KEYS.len()];
            i += 1;
            *sink.entry(key.to_string()).or_insert(0.0) += 1.0;
            black_box(sink.len())
        });
    });
    // Post: one-time interning, then a dense-vector add per bump.
    group.bench_function("interned", |b| {
        let mut sink = StatSink::new();
        let ids: Vec<_> = STAT_KEYS.iter().map(|k| sink.register(*k)).collect();
        let mut i = 0usize;
        b.iter(|| {
            let id = ids[i % ids.len()];
            i += 1;
            sink.bump(id, 1.0);
            black_box(sink.len())
        });
    });
    group.finish();
}

fn bench_macro_e9(c: &mut Criterion) {
    let mut group = c.benchmark_group("macro");
    // A scaled-down E9 point: the 64-core stash@1/8 Stencil case with a
    // tiny op budget — the full simulator stack (caches, directory,
    // NoC, DRAM, checker) end to end.
    group.bench_function("e9_64c_stash8_scaled", |b| {
        let config = SystemConfig::default()
            .with_cores(64)
            .with_dir(DirSpec::stash(CoverageRatio::new(1, 8)));
        b.iter(|| {
            let report = run_case(
                config.clone(),
                Workload::Stencil,
                Params { ops: 25, seed: 7 },
            );
            black_box(report.cycles)
        });
    });
    // The XL point the SoA overhaul unlocked: 256 cores through the
    // same stack (E20's second grid column), op budget scaled down to
    // keep the gate quick.
    group.bench_function("e9_256c_stash8_scaled", |b| {
        let config = SystemConfig::default()
            .with_cores(256)
            .with_dir(DirSpec::stash(CoverageRatio::new(1, 8)));
        b.iter(|| {
            let report = run_case(
                config.clone(),
                Workload::DataParallel,
                Params { ops: 10, seed: 7 },
            );
            black_box(report.cycles)
        });
    });
    group.finish();
}

fn results_to_json(results: &[BenchResult]) -> Value {
    let benches = results
        .iter()
        .map(|r| {
            (
                r.label(),
                Value::object(vec![
                    ("median_ns".into(), r.median_ns.into()),
                    ("mean_ns".into(), r.mean_ns.into()),
                    ("iters".into(), r.iters.into()),
                ]),
            )
        })
        .collect();
    Value::object(vec![
        ("schema".into(), "stashdir/bench-hotpath/v1".into()),
        ("benches".into(), Value::object(benches)),
    ])
}

fn median_of(results: &[BenchResult], label: &str) -> Option<f64> {
    results
        .iter()
        .find(|r| r.label() == label)
        .map(|r| r.median_ns)
}

/// The measured-improvement assertion: the overhauled implementation
/// must beat its legacy twin by ≥20% on event dispatch or stat bumping.
fn check_improvement(results: &[BenchResult]) -> Result<(), String> {
    let pairs = [
        (
            "event_dispatch",
            "event_dispatch/legacy_string_ring",
            "event_dispatch/value_ring",
        ),
        (
            "stat_bump",
            "stat_bump/string_btreemap",
            "stat_bump/interned",
        ),
        ("msg_arena", "msg_arena/boxed", "msg_arena/slab_handles"),
        (
            "bank_step",
            "bank_step/pop_per_event",
            "bank_step/pop_batch",
        ),
    ];
    let mut best = f64::MIN;
    for (name, legacy, new) in pairs {
        let (Some(old), Some(new_ns)) = (median_of(results, legacy), median_of(results, new))
        else {
            return Err(format!("missing {name} results"));
        };
        let improvement = 1.0 - new_ns / old;
        println!(
            "gate: {name}: legacy {old:.1} ns -> new {new_ns:.1} ns ({:+.1}%)",
            -improvement * 100.0
        );
        best = best.max(improvement);
    }
    if best >= REQUIRED_IMPROVEMENT {
        Ok(())
    } else {
        Err(format!(
            "no hot-path microbench improved by ≥{:.0}% (best {:.1}%)",
            REQUIRED_IMPROVEMENT * 100.0,
            best * 100.0
        ))
    }
}

fn check_against_baseline(results: &[BenchResult]) -> Result<(), String> {
    let path = baseline_path();
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("reading {}: {e} (run with --record first)", path.display()))?;
    let value = Value::parse(&text).map_err(|e| format!("parsing baseline: {e:?}"))?;
    let benches = value
        .get("benches")
        .and_then(|b| b.as_object())
        .ok_or("baseline has no benches section")?;
    let mut failures = Vec::new();
    for (label, entry) in benches {
        let Some(baseline_median) = entry.get("median_ns").and_then(Value::as_f64) else {
            continue;
        };
        let Some(current) = median_of(results, label) else {
            failures.push(format!("bench {label} present in baseline but not run"));
            continue;
        };
        let ratio = current / baseline_median;
        let verdict = if ratio > 1.0 + REGRESSION_TOLERANCE {
            failures.push(format!(
                "{label}: {current:.1} ns vs baseline {baseline_median:.1} ns ({:+.1}%)",
                (ratio - 1.0) * 100.0
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "check: {label:<42} {current:>10.1} ns (baseline {baseline_median:.1}, {:+5.1}%) {verdict}",
            (ratio - 1.0) * 100.0
        );
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} bench(es) regressed >{:.0}%:\n  {}",
            failures.len(),
            REGRESSION_TOLERANCE * 100.0,
            failures.join("\n  ")
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let record = args.iter().any(|a| a == "--record");
    let check = args.iter().any(|a| a == "--check");

    let mut criterion = Criterion::default();
    bench_event_dispatch(&mut criterion);
    bench_msg_arena(&mut criterion);
    bench_bank_step(&mut criterion);
    bench_dir_lookup(&mut criterion);
    bench_stat_bump(&mut criterion);
    bench_macro_e9(&mut criterion);
    let results = criterion.results();

    if let Err(e) = check_improvement(results) {
        eprintln!("hotpath gate: {e}");
        return ExitCode::FAILURE;
    }

    if record {
        let path = baseline_path();
        let mut text = results_to_json(results).render_pretty();
        if !text.ends_with('\n') {
            text.push('\n');
        }
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("hotpath gate: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("hotpath gate: baseline written to {}", path.display());
    }

    if check {
        if let Err(e) = check_against_baseline(results) {
            eprintln!("hotpath gate: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "hotpath gate: no regression beyond {:.0}%",
            REGRESSION_TOLERANCE * 100.0
        );
    }

    ExitCode::SUCCESS
}
