//! Criterion micro-benchmarks of the simulator's building blocks: the
//! directory organizations themselves, set-associative lookup, NoC
//! routing, sharer-set manipulation and workload generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stashdir::common::{BlockAddr, CoreId, Cycle, DetRng, NodeId, SharerSet};
use stashdir::mem::{ReplKind, SetAssoc};
use stashdir::noc::{Mesh, Network, NocConfig};
use stashdir::protocol::DirView;
use stashdir::{DirConfig, Workload};
use std::hint::black_box;

fn bench_directories(c: &mut Criterion) {
    let mut group = c.benchmark_group("directory_install_lookup");
    let configs = [
        ("sparse", DirConfig::sparse(64, 8)),
        ("stash", DirConfig::stash(64, 8)),
        ("cuckoo", DirConfig::cuckoo(512)),
        ("fullmap", DirConfig::full_map()),
    ];
    for (name, cfg) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            let mut dir = cfg.build(1);
            let mut rng = DetRng::seed_from(2);
            b.iter(|| {
                let block = BlockAddr::new(rng.below(4096));
                let view = DirView::Exclusive(CoreId::new(rng.below(16) as u16));
                black_box(dir.install(block, view));
                black_box(dir.lookup(BlockAddr::new(rng.below(4096))));
            });
        });
    }
    group.finish();
}

fn bench_set_assoc(c: &mut Criterion) {
    c.bench_function("set_assoc_churn_16way", |b| {
        let mut array: SetAssoc<u64> = SetAssoc::new(512, 16, ReplKind::Lru, 3);
        let mut rng = DetRng::seed_from(4);
        b.iter(|| {
            let block = BlockAddr::new(rng.below(1 << 14));
            if array.contains(block) {
                array.touch(block);
            } else {
                black_box(array.insert(block, 0));
            }
        });
    });
}

fn bench_noc(c: &mut Criterion) {
    c.bench_function("noc_send_8x8_mesh", |b| {
        let mut net = Network::new(Mesh::new(8, 8), NocConfig::default());
        let mut rng = DetRng::seed_from(5);
        let mut t = Cycle::ZERO;
        b.iter(|| {
            let src = NodeId::new(rng.below(64) as u16);
            let dst = NodeId::new(rng.below(64) as u16);
            t += 1;
            black_box(net.send(src, dst, 5, "data", t));
        });
    });
}

fn bench_sharers(c: &mut Criterion) {
    c.bench_function("sharer_set_ops_64core", |b| {
        let mut set = SharerSet::new(64);
        let mut rng = DetRng::seed_from(6);
        b.iter(|| {
            let core = CoreId::new(rng.below(64) as u16);
            set.insert(core);
            black_box(set.sole_member());
            black_box(set.len());
            if rng.chance(0.5) {
                set.remove(core);
            }
        });
    });
}

fn bench_workload_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation_16x1000");
    group.sample_size(20);
    for w in [
        Workload::DataParallel,
        Workload::Canneal,
        Workload::Migratory,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(w.name()), &w, |b, w| {
            b.iter(|| black_box(w.generate(16, 1000, 9)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_directories,
    bench_set_assoc,
    bench_noc,
    bench_sharers,
    bench_workload_gen
);
criterion_main!(benches);
