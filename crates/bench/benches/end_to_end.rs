//! Criterion end-to-end benchmarks: whole-machine simulation throughput
//! per directory organization. These quantify the simulator itself (ops
//! simulated per second), not the simulated hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stashdir::{CoverageRatio, DirSpec, Machine, SystemConfig, Workload};
use std::hint::black_box;

fn small_machine(dir: DirSpec) -> SystemConfig {
    use stashdir::mem::{CacheConfig, ReplKind};
    SystemConfig {
        cores: 4,
        l1: CacheConfig::new(4 * 1024, 2, 64, 1, ReplKind::Lru),
        l2: CacheConfig::new(16 * 1024, 4, 64, 4, ReplKind::Lru),
        llc_bank: CacheConfig::new(64 * 1024, 8, 64, 12, ReplKind::Lru),
        dir,
        ..SystemConfig::default()
    }
}

fn bench_simulation(c: &mut Criterion) {
    const OPS: usize = 2_000;
    let mut group = c.benchmark_group("simulate_4core_uniform");
    group.throughput(Throughput::Elements(4 * OPS as u64));
    group.sample_size(20);
    let dirs = [
        ("fullmap", DirSpec::FullMap),
        ("sparse_1_8", DirSpec::sparse(CoverageRatio::new(1, 8))),
        ("stash_1_8", DirSpec::stash(CoverageRatio::new(1, 8))),
        (
            "cuckoo_1_8",
            DirSpec::Cuckoo {
                coverage: CoverageRatio::new(1, 8),
            },
        ),
    ];
    for (name, dir) in dirs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &dir, |b, &dir| {
            let traces = Workload::Uniform.generate(4, OPS, 8);
            b.iter(|| {
                let report = Machine::new(small_machine(dir)).run(traces.clone());
                black_box(report.cycles)
            });
        });
    }
    group.finish();
}

fn bench_paper_machine(c: &mut Criterion) {
    const OPS: usize = 2_000;
    let mut group = c.benchmark_group("simulate_16core_data_parallel");
    group.throughput(Throughput::Elements(16 * OPS as u64));
    group.sample_size(10);
    group.bench_function("stash_1_8", |b| {
        let cfg = SystemConfig::default().with_dir(DirSpec::stash(CoverageRatio::new(1, 8)));
        let traces = Workload::DataParallel.generate(16, OPS, 8);
        b.iter(|| {
            let report = Machine::new(cfg.clone()).run(traces.clone());
            black_box(report.cycles)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_paper_machine);
criterion_main!(benches);
