//! Property tests of the mesh network model: latency lower bounds,
//! contention monotonicity, routing totality.

use proptest::prelude::*;
use stashdir_common::{Cycle, NodeId};
use stashdir_noc::{Mesh, Network, NocConfig};

fn cfg(contention: bool) -> NocConfig {
    NocConfig {
        hop_latency: 3,
        local_latency: 1,
        model_contention: contention,
    }
}

proptest! {
    /// Arrival time is never earlier than the physical lower bound:
    /// hops × hop latency + serialization, and never earlier than the
    /// send time.
    #[test]
    fn latency_lower_bound(
        sends in prop::collection::vec((0u16..16, 0u16..16, 1u32..10, 0u64..1000), 1..50),
        contention in any::<bool>(),
    ) {
        let mesh = Mesh::new(4, 4);
        let mut net = Network::new(mesh, cfg(contention));
        for (src, dst, flits, t) in sends {
            let (src, dst) = (NodeId::new(src), NodeId::new(dst));
            let sent = Cycle::new(t);
            let arrival = net.send(src, dst, flits, "data", sent);
            prop_assert!(arrival > sent);
            if src != dst {
                let bound = sent + mesh.hops(src, dst) * 3 + (flits as u64 - 1);
                prop_assert!(arrival >= bound, "{arrival} < bound {bound}");
            }
        }
    }

    /// With contention off, latency is a pure function of distance and
    /// size — identical messages always take identical time.
    #[test]
    fn contention_free_is_pure(
        src in 0u16..16, dst in 0u16..16, flits in 1u32..12, t in 0u64..500,
    ) {
        let mut net = Network::new(Mesh::new(4, 4), cfg(false));
        let (src, dst) = (NodeId::new(src), NodeId::new(dst));
        let a = net.send(src, dst, flits, "data", Cycle::new(t));
        let b = net.send(src, dst, flits, "data", Cycle::new(t));
        prop_assert_eq!(a, b);
    }

    /// Contention can only delay: a loaded network never beats the
    /// unloaded one for the same message.
    #[test]
    fn contention_only_delays(
        background in prop::collection::vec((0u16..16, 0u16..16, 1u32..8), 0..30),
        src in 0u16..16, dst in 0u16..16,
    ) {
        let mesh = Mesh::new(4, 4);
        let mut loaded = Network::new(mesh, cfg(true));
        let mut unloaded = Network::new(mesh, cfg(true));
        for (s, d, f) in background {
            loaded.send(NodeId::new(s), NodeId::new(d), f, "data", Cycle::ZERO);
        }
        let probe_loaded = loaded.send(NodeId::new(src), NodeId::new(dst), 1, "req", Cycle::ZERO);
        let probe_unloaded =
            unloaded.send(NodeId::new(src), NodeId::new(dst), 1, "req", Cycle::ZERO);
        prop_assert!(probe_loaded >= probe_unloaded);
    }

    /// Same-channel packets sent in order arrive in order under
    /// contention (the wormhole occupancy serializes them).
    #[test]
    fn same_channel_fifo_under_contention(
        flit_sizes in prop::collection::vec(1u32..8, 2..10),
    ) {
        let mut net = Network::new(Mesh::new(4, 4), cfg(true));
        let mut last = Cycle::ZERO;
        for f in flit_sizes {
            let arrival = net.send(NodeId::new(0), NodeId::new(15), f, "data", Cycle::ZERO);
            prop_assert!(arrival > last, "overtaking on an identical path");
            last = arrival;
        }
    }

    /// Traffic accounting: flit-hops equal the sum over messages of
    /// flits × hop count.
    #[test]
    fn flit_hop_accounting(
        sends in prop::collection::vec((0u16..16, 0u16..16, 1u32..8), 1..40),
    ) {
        let mesh = Mesh::new(4, 4);
        let mut net = Network::new(mesh, cfg(false));
        let mut expected = 0u64;
        for (s, d, f) in sends {
            let (s, d) = (NodeId::new(s), NodeId::new(d));
            net.send(s, d, f, "data", Cycle::ZERO);
            expected += f as u64 * mesh.hops(s, d);
        }
        prop_assert_eq!(net.flit_hops(), expected);
    }

    /// Every route on every rectangular mesh is loop-free and has
    /// minimal length.
    #[test]
    fn routes_are_minimal_and_loop_free(w in 1u16..6, h in 1u16..6) {
        let mesh = Mesh::new(w, h);
        for a in 0..mesh.nodes() {
            for b in 0..mesh.nodes() {
                let (a, b) = (NodeId::new(a), NodeId::new(b));
                let route = mesh.xy_route(a, b);
                prop_assert_eq!(route.len() as u64, mesh.hops(a, b));
                let mut seen = std::collections::HashSet::new();
                seen.insert(a);
                for link in &route {
                    prop_assert!(seen.insert(link.to), "loop through {}", link.to);
                }
                if let Some(last) = route.last() {
                    prop_assert_eq!(last.to, b);
                }
            }
        }
    }
}
