//! A 2-D mesh network-on-chip latency and traffic model.
//!
//! The Stash Directory evaluation cares about the NoC for two reasons:
//! message latency contributes to memory access time (three-hop protocol
//! transactions, invalidation rounds, discovery broadcasts), and **traffic**
//! is one of the reported metrics (discovery broadcasts are the stash
//! directory's overhead; invalidation/refetch storms are the conventional
//! sparse directory's).
//!
//! The model is a wormhole-routed mesh with dimension-order (XY) routing,
//! per-hop pipeline latency, single-flit-per-cycle links, and optional link
//! contention: each directed link tracks when it is next free, and a packet
//! occupies every link of its path for its length in flits.
//!
//! # Examples
//!
//! ```
//! use stashdir_common::{Cycle, NodeId};
//! use stashdir_noc::{Mesh, Network, NocConfig};
//!
//! let mut net = Network::new(Mesh::new(4, 4), NocConfig::default());
//! let arrival = net.send(NodeId::new(0), NodeId::new(15), 1, "req", Cycle::ZERO);
//! // 6 hops (3 east + 3 south) at 3 cycles each.
//! assert_eq!(arrival.get(), 18);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod network;
pub mod topology;

pub use network::{LinkFaultConfig, Network, NocConfig, SendOutcome};
pub use topology::{Link, Mesh};
