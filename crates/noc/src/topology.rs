//! Mesh topology and dimension-order routing.

use serde::{Deserialize, Serialize};
use stashdir_common::NodeId;
use std::fmt;

/// A `width × height` 2-D mesh. Node `i` sits at `(i % width, i / width)`.
///
/// # Examples
///
/// ```
/// use stashdir_common::NodeId;
/// use stashdir_noc::Mesh;
///
/// let mesh = Mesh::new(4, 4);
/// assert_eq!(mesh.nodes(), 16);
/// assert_eq!(mesh.coords(NodeId::new(5)), (1, 1));
/// assert_eq!(mesh.hops(NodeId::new(0), NodeId::new(15)), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Mesh { width, height }
    }

    /// Creates the squarest mesh holding exactly `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or cannot be arranged into a rectangle
    /// with aspect ratio ≤ 2 (e.g. primes > 3 are rejected).
    pub fn for_nodes(nodes: u16) -> Self {
        assert!(nodes > 0, "need at least one node");
        let mut best: Option<(u16, u16)> = None;
        let mut w = 1u16;
        while (w as u32 * w as u32) <= nodes as u32 {
            if nodes.is_multiple_of(w) {
                best = Some((nodes / w, w));
            }
            w += 1;
        }
        let (w, h) = best.expect("factorization exists");
        assert!(
            w <= h * 2,
            "{nodes} nodes cannot form a mesh with aspect ratio <= 2 ({w}x{h})"
        );
        Mesh::new(w, h)
    }

    /// Mesh width (columns).
    pub const fn width(self) -> u16 {
        self.width
    }

    /// Mesh height (rows).
    pub const fn height(self) -> u16 {
        self.height
    }

    /// Total node count.
    pub const fn nodes(self) -> u16 {
        self.width * self.height
    }

    /// The `(x, y)` coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the mesh.
    pub fn coords(self, node: NodeId) -> (u16, u16) {
        assert!(node.get() < self.nodes(), "node {node} outside mesh");
        (node.get() % self.width, node.get() / self.width)
    }

    /// The node at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the mesh.
    pub fn node_at(self, x: u16, y: u16) -> NodeId {
        assert!(x < self.width && y < self.height, "({x},{y}) outside mesh");
        NodeId::new(y * self.width + x)
    }

    /// Manhattan hop distance between two nodes.
    pub fn hops(self, a: NodeId, b: NodeId) -> u64 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// The XY (x-first, then y) route from `src` to `dst` as a sequence of
    /// directed links. Empty when `src == dst`.
    pub fn xy_route(self, src: NodeId, dst: NodeId) -> Vec<Link> {
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut links = Vec::with_capacity(self.hops(src, dst) as usize);
        let mut from = src;
        while x != dx {
            x = if x < dx { x + 1 } else { x - 1 };
            let to = self.node_at(x, y);
            links.push(Link { from, to });
            from = to;
        }
        while y != dy {
            y = if y < dy { y + 1 } else { y - 1 };
            let to = self.node_at(x, y);
            links.push(Link { from, to });
            from = to;
        }
        links
    }

    /// Number of directed links in the mesh (each physical channel is two
    /// directed links).
    pub fn directed_links(self) -> usize {
        let w = self.width as usize;
        let h = self.height as usize;
        2 * ((w - 1) * h + (h - 1) * w)
    }

    /// Dense index of a directed link for table lookups.
    ///
    /// # Panics
    ///
    /// Panics if `link` does not connect mesh neighbors.
    pub fn link_index(self, link: Link) -> usize {
        let (fx, fy) = self.coords(link.from);
        let (tx, ty) = self.coords(link.to);
        let w = self.width as usize;
        let h = self.height as usize;
        let horizontal = (w - 1) * h; // east links, then west links, then vertical
        match (tx as i32 - fx as i32, ty as i32 - fy as i32) {
            (1, 0) => fy as usize * (w - 1) + fx as usize,
            (-1, 0) => horizontal + fy as usize * (w - 1) + tx as usize,
            (0, 1) => 2 * horizontal + fx as usize * (h - 1) + fy as usize,
            (0, -1) => 2 * horizontal + (h - 1) * w + fx as usize * (h - 1) + ty as usize,
            _ => panic!("{link} does not connect mesh neighbors"),
        }
    }
}

impl fmt::Display for Mesh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} mesh", self.width, self.height)
    }
}

/// A directed link between two adjacent routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link {
    /// Upstream router.
    pub from: NodeId,
    /// Downstream router.
    pub to: NodeId,
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let mesh = Mesh::new(4, 2);
        for n in 0..8 {
            let node = NodeId::new(n);
            let (x, y) = mesh.coords(node);
            assert_eq!(mesh.node_at(x, y), node);
        }
    }

    #[test]
    fn hops_are_manhattan() {
        let mesh = Mesh::new(4, 4);
        assert_eq!(mesh.hops(NodeId::new(0), NodeId::new(0)), 0);
        assert_eq!(mesh.hops(NodeId::new(0), NodeId::new(3)), 3);
        assert_eq!(mesh.hops(NodeId::new(0), NodeId::new(12)), 3);
        assert_eq!(mesh.hops(NodeId::new(5), NodeId::new(10)), 2);
    }

    #[test]
    fn xy_route_goes_x_first() {
        let mesh = Mesh::new(4, 4);
        let route = mesh.xy_route(NodeId::new(0), NodeId::new(5));
        // 0 -> 1 (x), then 1 -> 5 (y).
        assert_eq!(route.len(), 2);
        assert_eq!(route[0].from, NodeId::new(0));
        assert_eq!(route[0].to, NodeId::new(1));
        assert_eq!(route[1].from, NodeId::new(1));
        assert_eq!(route[1].to, NodeId::new(5));
    }

    #[test]
    fn route_length_matches_hops_everywhere() {
        let mesh = Mesh::new(3, 5);
        for a in 0..15 {
            for b in 0..15 {
                let (a, b) = (NodeId::new(a), NodeId::new(b));
                assert_eq!(mesh.xy_route(a, b).len() as u64, mesh.hops(a, b));
            }
        }
    }

    #[test]
    fn route_to_self_is_empty() {
        let mesh = Mesh::new(4, 4);
        assert!(mesh.xy_route(NodeId::new(6), NodeId::new(6)).is_empty());
    }

    #[test]
    fn routes_go_west_and_north_too() {
        let mesh = Mesh::new(4, 4);
        let route = mesh.xy_route(NodeId::new(15), NodeId::new(0));
        assert_eq!(route.len(), 6);
        assert_eq!(route.last().unwrap().to, NodeId::new(0));
    }

    #[test]
    fn link_indices_are_dense_and_unique() {
        let mesh = Mesh::new(4, 3);
        let mut seen = vec![false; mesh.directed_links()];
        for a in 0..mesh.nodes() {
            for b in 0..mesh.nodes() {
                for link in mesh.xy_route(NodeId::new(a), NodeId::new(b)) {
                    let idx = mesh.link_index(link);
                    assert!(idx < mesh.directed_links());
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every directed link is routable");
    }

    #[test]
    fn for_nodes_builds_square_meshes() {
        assert_eq!(Mesh::for_nodes(16), Mesh::new(4, 4));
        assert_eq!(Mesh::for_nodes(32), Mesh::new(8, 4));
        assert_eq!(Mesh::for_nodes(64), Mesh::new(8, 8));
        assert_eq!(Mesh::for_nodes(2), Mesh::new(2, 1));
    }

    #[test]
    #[should_panic(expected = "aspect ratio")]
    fn for_nodes_rejects_primes() {
        let _ = Mesh::for_nodes(13);
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn out_of_mesh_node_panics() {
        Mesh::new(2, 2).coords(NodeId::new(4));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Mesh::new(4, 4).to_string(), "4x4 mesh");
        let link = Link {
            from: NodeId::new(0),
            to: NodeId::new(1),
        };
        assert_eq!(link.to_string(), "node0->node1");
    }
}
