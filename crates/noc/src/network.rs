//! The network timing/traffic model.

use crate::topology::Mesh;
use serde::{Deserialize, Serialize};
use stashdir_common::{Counter, Cycle, DetRng, Histogram, NodeId, StatSink};
use std::collections::BTreeMap;

/// Configuration for [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Per-hop pipeline latency (router + link traversal), cycles.
    pub hop_latency: u64,
    /// Latency of a message whose source and destination share a tile.
    pub local_latency: u64,
    /// Model link contention (wormhole occupancy). When `false` the
    /// network is contention-free: latency depends only on distance and
    /// packet length.
    pub model_contention: bool,
}

impl Default for NocConfig {
    /// 3-cycle hops, 1-cycle tile-local delivery, contention on.
    fn default() -> Self {
        NocConfig {
            hop_latency: 3,
            local_latency: 1,
            model_contention: true,
        }
    }
}

/// Fault-injection hook configuration for the network, installed by the
/// simulator's chaos layer via [`Network::set_link_faults`]. Plain
/// [`Network::send`] is untouched; only [`Network::send_faulty`]
/// consults the hook, so a network without faults pays nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFaultConfig {
    /// Seed for the hook's own deterministic RNG.
    pub seed: u64,
    /// Probability (per mille) that a faulty send is delayed.
    pub delay_per_mille: u32,
    /// Extra delivery latency applied to a delayed message.
    pub delay_cycles: u64,
    /// Probability (per mille) that a faulty send is duplicated.
    pub dup_per_mille: u32,
    /// Cap on total injected faults (delays + duplicates); `0` =
    /// unlimited.
    pub max_faults: u64,
}

/// Installed fault hook state: config, its own RNG, and injection
/// counters the simulator folds into its fault summary.
#[derive(Debug, Clone)]
struct LinkFaults {
    cfg: LinkFaultConfig,
    rng: DetRng,
    delays: u64,
    duplicates: u64,
}

impl LinkFaults {
    fn budget_left(&self) -> bool {
        self.cfg.max_faults == 0 || self.delays + self.duplicates < self.cfg.max_faults
    }

    fn roll(rng: &mut DetRng, per_mille: u32) -> bool {
        per_mille >= 1000 || rng.below(1000) < per_mille as u64
    }
}

/// The outcome of a fault-aware send: the (possibly delayed) arrival of
/// the original packet, plus the arrival of an injected duplicate when
/// the hook fired one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendOutcome {
    /// Arrival time of the original packet.
    pub arrival: Cycle,
    /// Arrival time of the injected duplicate, when one was sent.
    pub duplicate: Option<Cycle>,
}

/// A wormhole-routed mesh NoC: computes delivery times and accounts
/// traffic per message class.
///
/// # Examples
///
/// ```
/// use stashdir_common::{Cycle, NodeId};
/// use stashdir_noc::{Mesh, Network, NocConfig};
///
/// let mut net = Network::new(Mesh::new(2, 2), NocConfig::default());
/// // A 5-flit data packet one hop away: 3 cycles head latency + 4 cycles
/// // of body serialization.
/// let t = net.send(NodeId::new(0), NodeId::new(1), 5, "data", Cycle::ZERO);
/// assert_eq!(t.get(), 7);
/// assert_eq!(net.flit_hops(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    mesh: Mesh,
    config: NocConfig,
    link_free: Vec<Cycle>,
    messages: BTreeMap<&'static str, Counter>,
    flits: BTreeMap<&'static str, Counter>,
    flit_hops: Counter,
    latency_hist: Histogram,
    faults: Option<LinkFaults>,
}

impl Network {
    /// Creates a network over `mesh`.
    pub fn new(mesh: Mesh, config: NocConfig) -> Self {
        Network {
            link_free: vec![Cycle::ZERO; mesh.directed_links()],
            mesh,
            config,
            messages: BTreeMap::new(),
            flits: BTreeMap::new(),
            flit_hops: Counter::new(),
            latency_hist: Histogram::new(),
            faults: None,
        }
    }

    /// Installs the fault-injection hook consulted by
    /// [`Network::send_faulty`].
    pub fn set_link_faults(&mut self, cfg: LinkFaultConfig) {
        self.faults = Some(LinkFaults {
            rng: DetRng::seed_from(cfg.seed ^ 0x110C_FA17),
            cfg,
            delays: 0,
            duplicates: 0,
        });
    }

    /// Injected (delays, duplicates) so far; `(0, 0)` without a hook.
    pub fn fault_counts(&self) -> (u64, u64) {
        self.faults
            .as_ref()
            .map_or((0, 0), |f| (f.delays, f.duplicates))
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> NocConfig {
        self.config
    }

    /// Sends a `flits`-long packet from `src` to `dst` at time `now`,
    /// returning its arrival time. `class` labels the packet for traffic
    /// accounting (`"req"`, `"data"`, `"inv"`, `"discovery"`, …).
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero or either endpoint is outside the mesh.
    pub fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        flits: u32,
        class: &'static str,
        now: Cycle,
    ) -> Cycle {
        assert!(flits > 0, "a packet has at least one flit");
        self.messages.entry(class).or_default().incr();
        self.flits.entry(class).or_default().add(flits as u64);

        if src == dst {
            let arrival = now + self.config.local_latency;
            self.latency_hist.record(arrival - now);
            return arrival;
        }

        let route = self.mesh.xy_route(src, dst);
        self.flit_hops.add(flits as u64 * route.len() as u64);

        let mut head = now;
        for link in route {
            let depart = if self.config.model_contention {
                let idx = self.mesh.link_index(link);
                let depart = head.max(self.link_free[idx]);
                // The packet occupies the link for its full length.
                self.link_free[idx] = depart + flits as u64;
                depart
            } else {
                head
            };
            head = depart + self.config.hop_latency;
        }
        // Tail arrives (flits - 1) cycles after the head.
        let arrival = head + (flits as u64 - 1);
        self.latency_hist.record(arrival - now);
        arrival
    }

    /// Like [`Network::send`], but consults the installed
    /// [`LinkFaultConfig`] hook: the arrival may be delayed, and the
    /// packet may be duplicated (the duplicate is a real second send, so
    /// it shows up in traffic accounting). Without a hook this is
    /// exactly [`Network::send`].
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero or either endpoint is outside the mesh.
    pub fn send_faulty(
        &mut self,
        src: NodeId,
        dst: NodeId,
        flits: u32,
        class: &'static str,
        now: Cycle,
    ) -> SendOutcome {
        let mut arrival = self.send(src, dst, flits, class, now);
        let Some(mut hook) = self.faults.take() else {
            return SendOutcome {
                arrival,
                duplicate: None,
            };
        };
        let mut duplicate = None;
        if hook.budget_left() && LinkFaults::roll(&mut hook.rng, hook.cfg.delay_per_mille) {
            arrival += hook.cfg.delay_cycles;
            hook.delays += 1;
        }
        if hook.budget_left() && LinkFaults::roll(&mut hook.rng, hook.cfg.dup_per_mille) {
            duplicate = Some(self.send(src, dst, flits, class, now));
            hook.duplicates += 1;
        }
        self.faults = Some(hook);
        SendOutcome { arrival, duplicate }
    }

    /// Sends the same packet to many destinations (an invalidation
    /// multicast or a discovery broadcast), returning each arrival time in
    /// order. Each destination gets its own packet — the model does not
    /// assume hardware multicast support, matching the paper's assumption
    /// that discovery probes are ordinary coherence messages.
    pub fn multicast(
        &mut self,
        src: NodeId,
        dsts: &[NodeId],
        flits: u32,
        class: &'static str,
        now: Cycle,
    ) -> Vec<Cycle> {
        dsts.iter()
            .map(|&d| self.send(src, d, flits, class, now))
            .collect()
    }

    /// Total flit-hops injected so far (the traffic metric of experiment
    /// E7; proportional to link energy).
    pub fn flit_hops(&self) -> u64 {
        self.flit_hops.get()
    }

    /// Messages sent under `class`.
    pub fn messages_of(&self, class: &str) -> u64 {
        self.messages.get(class).map_or(0, |c| c.get())
    }

    /// Flits sent under `class`.
    pub fn flits_of(&self, class: &str) -> u64 {
        self.flits.get(class).map_or(0, |c| c.get())
    }

    /// Total messages across classes.
    pub fn total_messages(&self) -> u64 {
        self.messages.values().map(|c| c.get()).sum()
    }

    /// Observed end-to-end packet latencies.
    pub fn latency_hist(&self) -> &Histogram {
        &self.latency_hist
    }

    /// Exports counters under `prefix.` into `sink`.
    pub fn export(&self, prefix: &str, sink: &mut StatSink) {
        sink.put(format!("{prefix}.flit_hops"), self.flit_hops.get() as f64);
        sink.put(
            format!("{prefix}.total_messages"),
            self.total_messages() as f64,
        );
        if let Some(mean) = self.latency_hist.mean() {
            sink.put(format!("{prefix}.mean_latency"), mean);
        }
        for (class, count) in &self.messages {
            sink.put(format!("{prefix}.messages.{class}"), count.get() as f64);
        }
        for (class, count) in &self.flits {
            sink.put(format!("{prefix}.flits.{class}"), count.get() as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(contention: bool) -> Network {
        Network::new(
            Mesh::new(4, 4),
            NocConfig {
                hop_latency: 3,
                local_latency: 1,
                model_contention: contention,
            },
        )
    }

    #[test]
    fn single_flit_latency_is_hops_times_hop_latency() {
        let mut n = net(false);
        let t = n.send(NodeId::new(0), NodeId::new(3), 1, "req", Cycle::ZERO);
        assert_eq!(t.get(), 9);
    }

    #[test]
    fn body_flits_add_serialization() {
        let mut n = net(false);
        let t = n.send(NodeId::new(0), NodeId::new(1), 9, "data", Cycle::ZERO);
        assert_eq!(t.get(), 3 + 8);
    }

    #[test]
    fn local_delivery_uses_local_latency() {
        let mut n = net(true);
        let t = n.send(NodeId::new(5), NodeId::new(5), 9, "data", Cycle::new(10));
        assert_eq!(t.get(), 11);
        assert_eq!(n.flit_hops(), 0, "local messages traverse no links");
    }

    #[test]
    fn contention_serializes_packets_on_shared_links() {
        let mut n = net(true);
        let t1 = n.send(NodeId::new(0), NodeId::new(1), 5, "data", Cycle::ZERO);
        let t2 = n.send(NodeId::new(0), NodeId::new(1), 5, "data", Cycle::ZERO);
        assert_eq!(t1.get(), 3 + 4);
        // Second packet waits 5 cycles for the link.
        assert_eq!(t2.get(), 5 + 3 + 4);
    }

    #[test]
    fn disjoint_paths_do_not_contend() {
        let mut n = net(true);
        let t1 = n.send(NodeId::new(0), NodeId::new(1), 5, "data", Cycle::ZERO);
        let t2 = n.send(NodeId::new(15), NodeId::new(14), 5, "data", Cycle::ZERO);
        assert_eq!(t1, t2);
    }

    #[test]
    fn no_contention_mode_ignores_occupancy() {
        let mut n = net(false);
        let t1 = n.send(NodeId::new(0), NodeId::new(1), 5, "data", Cycle::ZERO);
        let t2 = n.send(NodeId::new(0), NodeId::new(1), 5, "data", Cycle::ZERO);
        assert_eq!(t1, t2);
    }

    #[test]
    fn flit_hops_accumulate() {
        let mut n = net(false);
        n.send(NodeId::new(0), NodeId::new(15), 2, "req", Cycle::ZERO); // 6 hops
        n.send(NodeId::new(0), NodeId::new(1), 3, "req", Cycle::ZERO); // 1 hop
        assert_eq!(n.flit_hops(), 12 + 3);
    }

    #[test]
    fn class_accounting() {
        let mut n = net(false);
        n.send(NodeId::new(0), NodeId::new(1), 1, "req", Cycle::ZERO);
        n.send(NodeId::new(0), NodeId::new(1), 9, "data", Cycle::ZERO);
        n.send(NodeId::new(0), NodeId::new(2), 9, "data", Cycle::ZERO);
        assert_eq!(n.messages_of("req"), 1);
        assert_eq!(n.messages_of("data"), 2);
        assert_eq!(n.flits_of("data"), 18);
        assert_eq!(n.messages_of("absent"), 0);
        assert_eq!(n.total_messages(), 3);
    }

    #[test]
    fn multicast_reaches_everyone() {
        let mut n = net(false);
        let dsts: Vec<NodeId> = (1..4).map(NodeId::new).collect();
        let arrivals = n.multicast(NodeId::new(0), &dsts, 1, "inv", Cycle::ZERO);
        assert_eq!(arrivals.len(), 3);
        assert_eq!(arrivals[0].get(), 3);
        assert_eq!(arrivals[2].get(), 9);
        assert_eq!(n.messages_of("inv"), 3);
    }

    #[test]
    fn export_contains_class_breakdown() {
        let mut n = net(false);
        n.send(NodeId::new(0), NodeId::new(1), 2, "req", Cycle::ZERO);
        let mut sink = StatSink::new();
        n.export("noc", &mut sink);
        assert_eq!(sink.get("noc.messages.req"), Some(1.0));
        assert_eq!(sink.get("noc.flits.req"), Some(2.0));
        assert_eq!(sink.get("noc.flit_hops"), Some(2.0));
        assert!(sink.get("noc.mean_latency").is_some());
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flit_packet_panics() {
        net(false).send(NodeId::new(0), NodeId::new(1), 0, "req", Cycle::ZERO);
    }

    #[test]
    fn send_faulty_without_hook_matches_send() {
        let mut plain = net(false);
        let mut hooked = net(false);
        let a = plain.send(NodeId::new(0), NodeId::new(3), 2, "req", Cycle::ZERO);
        let b = hooked.send_faulty(NodeId::new(0), NodeId::new(3), 2, "req", Cycle::ZERO);
        assert_eq!(b.arrival, a);
        assert_eq!(b.duplicate, None);
        assert_eq!(hooked.fault_counts(), (0, 0));
        assert_eq!(plain.total_messages(), hooked.total_messages());
    }

    #[test]
    fn delay_hook_postpones_arrival() {
        let mut n = net(false);
        n.set_link_faults(LinkFaultConfig {
            seed: 1,
            delay_per_mille: 1000,
            delay_cycles: 500,
            dup_per_mille: 0,
            max_faults: 1,
        });
        let first = n.send_faulty(NodeId::new(0), NodeId::new(1), 1, "req", Cycle::ZERO);
        assert_eq!(first.arrival.get(), 3 + 500);
        assert_eq!(first.duplicate, None);
        // Budget of one: the second send is clean.
        let second = n.send_faulty(NodeId::new(0), NodeId::new(1), 1, "req", Cycle::ZERO);
        assert_eq!(second.arrival.get(), 3);
        assert_eq!(n.fault_counts(), (1, 0));
    }

    #[test]
    fn duplicate_hook_sends_a_real_second_packet() {
        let mut n = net(false);
        n.set_link_faults(LinkFaultConfig {
            seed: 2,
            delay_per_mille: 0,
            delay_cycles: 0,
            dup_per_mille: 1000,
            max_faults: 1,
        });
        let out = n.send_faulty(NodeId::new(0), NodeId::new(1), 1, "req", Cycle::ZERO);
        assert!(out.duplicate.is_some(), "hook must duplicate");
        assert_eq!(n.messages_of("req"), 2, "duplicate counts as traffic");
        assert_eq!(n.fault_counts(), (0, 1));
    }
}
