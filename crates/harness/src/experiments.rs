//! The experiment registry: every table and figure of the reproduction
//! (E1–E15 plus the E17 chaos smoke and the E18 equal-area shoot-out)
//! expressed as *data* — a function contributing simulation
//! cases to a run, and a function assembling the table back out of the
//! shared result set.
//!
//! This is what replaces the per-binary serial grid loops: the sweep
//! collects cases from every selected experiment, deduplicates them by
//! [`CaseSpec::id`] (E3's full-map ideals are E7's and E13's too), runs
//! the union once on the pool, and then each experiment assembles its
//! table from the same results a serial run would have produced — the
//! tables and CSVs are identical, column for column.

use crate::campaign;
use crate::params::{geomean, machine_with, Params};
use crate::plan::CaseSpec;
use crate::table::{f2, f3, n0, Table};
use stashdir::{
    expected_detector, Characterization, CostParams, CoverageRatio, DirReplPolicy, DirSpec,
    EnergyCounts, EnergyModel, FaultClass, FaultConfig, SharerFormat, SimReport, SystemConfig,
    Workload,
};
use std::collections::HashMap;

/// Completed reports keyed by [`CaseSpec::id`].
pub type ResultSet = HashMap<String, SimReport>;

/// An assembled experiment: the table plus an optional trailing note
/// (printed after the CSV save line, exactly like the serial binaries).
pub struct Assembled {
    /// The result table.
    pub table: Table,
    /// Commentary printed after the table, if any.
    pub note: Option<String>,
}

/// One registered experiment.
#[derive(Clone, Copy)]
pub struct Experiment {
    /// Stable selection key (`--plan` value), e.g. `perf_vs_coverage`.
    pub key: &'static str,
    /// Paper anchor, e.g. `E3`.
    pub code: &'static str,
    /// CSV file stem under `results/`, e.g. `e3_perf_vs_coverage`.
    pub csv: &'static str,
    /// One-line description for `--list`.
    pub summary: &'static str,
    cases_fn: fn(Params) -> Vec<CaseSpec>,
    assemble_fn: fn(Params, &ResultSet) -> Assembled,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("key", &self.key)
            .field("code", &self.code)
            .field("csv", &self.csv)
            .finish()
    }
}

impl Experiment {
    /// The simulation cases this experiment needs at the given params.
    pub fn cases(&self, params: Params) -> Vec<CaseSpec> {
        (self.cases_fn)(params)
    }

    /// Assembles the experiment's table from completed results.
    ///
    /// # Panics
    ///
    /// Panics if a needed case is missing from `results`; the runner
    /// checks completeness (see [`crate::runner`]) before calling this.
    pub fn assemble(&self, params: Params, results: &ResultSet) -> Assembled {
        (self.assemble_fn)(params, results)
    }
}

/// All experiments, in suite order (E1..E15, then the E17 chaos smoke,
/// the E18 equal-area shoot-out and the E19 chaos-campaign static
/// rounds; E16 remains a standalone bench binary).
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            key: "config_table",
            code: "E1",
            csv: "e1_config",
            summary: "system configuration table (no simulation)",
            cases_fn: |_| Vec::new(),
            assemble_fn: e1_assemble,
        },
        Experiment {
            key: "workload_table",
            code: "E2",
            csv: "e2_workloads",
            summary: "workload characterization table (trace analysis only)",
            cases_fn: |_| Vec::new(),
            assemble_fn: e2_assemble,
        },
        Experiment {
            key: "perf_vs_coverage",
            code: "E3",
            csv: "e3_perf_vs_coverage",
            summary: "normalized execution time vs coverage, sparse vs stash",
            cases_fn: e3_cases,
            assemble_fn: e3_assemble,
        },
        Experiment {
            key: "invalidations",
            code: "E4",
            csv: "e4_invalidations",
            summary: "directory-induced invalidations per 1k ops vs coverage",
            cases_fn: e4_cases,
            assemble_fn: e4_assemble,
        },
        Experiment {
            key: "eviction_breakdown",
            code: "E5",
            csv: "e5_eviction_breakdown",
            summary: "silent vs invalidating stash evictions at 1/8 coverage",
            cases_fn: e5_cases,
            assemble_fn: e5_assemble,
        },
        Experiment {
            key: "discovery",
            code: "E6",
            csv: "e6_discovery",
            summary: "discovery broadcast behavior at 1/8 coverage",
            cases_fn: e6_cases,
            assemble_fn: e6_assemble,
        },
        Experiment {
            key: "traffic",
            code: "E7",
            csv: "e7_traffic",
            summary: "NoC flit-hops and message-class breakdown at 1/8 coverage",
            cases_fn: e7_cases,
            assemble_fn: e7_assemble,
        },
        Experiment {
            key: "assoc_sensitivity",
            code: "E8",
            csv: "e8_assoc_sensitivity",
            summary: "sensitivity to directory associativity at 1/8 coverage",
            cases_fn: e8_cases,
            assemble_fn: e8_assemble,
        },
        Experiment {
            key: "scalability",
            code: "E9",
            csv: "e9_scalability",
            summary: "16/32/64-core scaling at 1/8 coverage",
            cases_fn: e9_cases,
            assemble_fn: e9_assemble,
        },
        Experiment {
            key: "storage_table",
            code: "E10",
            csv: "e10_storage",
            summary: "directory storage accounting (no simulation)",
            cases_fn: |_| Vec::new(),
            assemble_fn: e10_assemble,
        },
        Experiment {
            key: "repl_ablation",
            code: "E11",
            csv: "e11_repl_ablation",
            summary: "stash victim-selection policy ablation",
            cases_fn: e11_cases,
            assemble_fn: e11_assemble,
        },
        Experiment {
            key: "cuckoo",
            code: "E12",
            csv: "e12_cuckoo",
            summary: "stash vs cuckoo vs sparse at matched entry counts",
            cases_fn: e12_cases,
            assemble_fn: e12_assemble,
        },
        Experiment {
            key: "energy",
            code: "E13",
            csv: "e13_energy",
            summary: "first-order dynamic energy at 1/8 coverage",
            cases_fn: e13_cases,
            assemble_fn: e13_assemble,
        },
        Experiment {
            key: "notify_ablation",
            code: "E14",
            csv: "e14_notify",
            summary: "clean-eviction notification ablation",
            cases_fn: e14_cases,
            assemble_fn: e14_assemble,
        },
        Experiment {
            key: "limited_ptr",
            code: "E15",
            csv: "e15_limited_ptr",
            summary: "limited-pointer sharer formats on the stash directory",
            cases_fn: e15_cases,
            assemble_fn: e15_assemble,
        },
        Experiment {
            key: "chaos_smoke",
            code: "E17",
            csv: "e17_chaos_smoke",
            summary: "fault-injection smoke: every fault class vs its detector",
            cases_fn: e17_cases,
            assemble_fn: e17_assemble,
        },
        Experiment {
            key: "shootout",
            code: "E18",
            csv: "e18_shootout",
            summary: "equal-area shoot-out across every registered backend",
            cases_fn: e18_cases,
            assemble_fn: e18_assemble,
        },
        Experiment {
            key: "campaign",
            code: "E19",
            csv: "e19_campaign",
            summary: "chaos campaign static rounds: witnessed baseline + pairwise compositions",
            cases_fn: e19_cases,
            assemble_fn: e19_assemble,
        },
        Experiment {
            key: "scaling_xl",
            code: "E20",
            csv: "e20_scaling_xl",
            summary: "128-1024-core scaling at 1/8 coverage (SoA sim core)",
            cases_fn: e20_cases,
            assemble_fn: e20_assemble,
        },
    ]
}

/// Looks up an experiment by key.
pub fn find(key: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.key == key)
}

/// A case on the default 16-core machine with `dir`.
fn case(dir: DirSpec, workload: Workload, p: Params) -> CaseSpec {
    CaseSpec::new(machine_with(dir), workload, p.ops, p.seed)
}

/// A case on a `cores`-core machine with `dir`.
fn scaled_case(dir: DirSpec, cores: u16, workload: Workload, p: Params) -> CaseSpec {
    CaseSpec::new(
        SystemConfig::default().with_cores(cores).with_dir(dir),
        workload,
        p.ops,
        p.seed,
    )
}

/// A stash@1/8 case with clean-eviction notification toggled (E14).
fn notify_case(notify: bool, workload: Workload, p: Params) -> CaseSpec {
    let mut cfg = SystemConfig::default().with_dir(DirSpec::stash(CoverageRatio::new(1, 8)));
    cfg.notify_clean_evictions = notify;
    CaseSpec::new(cfg, workload, p.ops, p.seed)
}

/// The report for `spec`.
///
/// # Panics
///
/// Panics when absent — the runner guarantees completeness before
/// assembling.
fn report<'a>(results: &'a ResultSet, spec: &CaseSpec) -> &'a SimReport {
    results
        .get(&spec.id())
        .unwrap_or_else(|| panic!("missing result for case {}", spec.id()))
}

fn eighth() -> CoverageRatio {
    CoverageRatio::new(1, 8)
}

// ---------------------------------------------------------------- E1

fn e1_assemble(_p: Params, _results: &ResultSet) -> Assembled {
    let config = SystemConfig::default().with_dir(DirSpec::stash(eighth()));
    let mut table = Table::new(
        "E1 / Table 1 — system configuration (16-core CMP model)",
        &["parameter", "value"],
    );
    for (k, v) in config.table() {
        table.row(vec![k, v]);
    }
    Assembled { table, note: None }
}

// ---------------------------------------------------------------- E2

fn e2_assemble(p: Params, _results: &ResultSet) -> Assembled {
    let mut headers = vec!["workload"];
    headers.extend(Characterization::headers());
    let mut table = Table::new(
        format!(
            "E2 / Table 2 — workload characterization (16 cores x {} ops)",
            p.ops
        ),
        &headers,
    );
    for workload in Workload::suite() {
        let traces = workload.generate(16, p.ops, p.seed);
        let c = Characterization::of(&traces);
        let mut row = vec![workload.name().to_string()];
        row.extend(c.row());
        table.row(row);
    }
    Assembled {
        table,
        note: Some(
            "Reading the table: high private_frac + low sharing_degree is the \
             regime where silent eviction pays off."
                .to_string(),
        ),
    }
}

// ---------------------------------------------------------------- E3

fn e3_cases(p: Params) -> Vec<CaseSpec> {
    let mut cases = Vec::new();
    for workload in Workload::suite() {
        cases.push(case(DirSpec::FullMap, workload, p));
        for coverage in CoverageRatio::sweep() {
            cases.push(case(DirSpec::sparse(coverage), workload, p));
        }
        for coverage in CoverageRatio::sweep() {
            cases.push(case(DirSpec::stash(coverage), workload, p));
        }
    }
    cases
}

fn e3_assemble(p: Params, results: &ResultSet) -> Assembled {
    let sweep = CoverageRatio::sweep();
    let mut headers: Vec<String> = vec!["workload".into()];
    for c in &sweep {
        headers.push(format!("sparse@{c}"));
    }
    for c in &sweep {
        headers.push(format!("stash@{c}"));
    }
    let mut table = Table::new(
        format!(
            "E3 / Fig A — normalized execution time vs coverage (16 cores x {} ops, 1.0 = full-map)",
            p.ops
        ),
        &headers,
    );

    let mut sparse_cols: Vec<Vec<f64>> = vec![Vec::new(); sweep.len()];
    let mut stash_cols: Vec<Vec<f64>> = vec![Vec::new(); sweep.len()];
    for workload in Workload::suite() {
        let ideal = report(results, &case(DirSpec::FullMap, workload, p)).cycles as f64;
        let mut row = vec![workload.name().to_string()];
        for (i, &coverage) in sweep.iter().enumerate() {
            let r = report(results, &case(DirSpec::sparse(coverage), workload, p));
            let norm = r.cycles as f64 / ideal;
            sparse_cols[i].push(norm);
            row.push(f3(norm));
        }
        for (i, &coverage) in sweep.iter().enumerate() {
            let r = report(results, &case(DirSpec::stash(coverage), workload, p));
            let norm = r.cycles as f64 / ideal;
            stash_cols[i].push(norm);
            row.push(f3(norm));
        }
        table.row(row);
    }
    let mut gm = vec!["geomean".to_string()];
    gm.extend(sparse_cols.iter().map(|c| f3(geomean(c))));
    gm.extend(stash_cols.iter().map(|c| f3(geomean(c))));
    table.row(gm);
    Assembled { table, note: None }
}

// ---------------------------------------------------------------- E4

fn e4_cases(p: Params) -> Vec<CaseSpec> {
    let mut cases = Vec::new();
    for workload in Workload::suite() {
        for coverage in CoverageRatio::sweep() {
            cases.push(case(DirSpec::sparse(coverage), workload, p));
        }
        for coverage in CoverageRatio::sweep() {
            cases.push(case(DirSpec::stash(coverage), workload, p));
        }
    }
    cases
}

fn e4_assemble(p: Params, results: &ResultSet) -> Assembled {
    let sweep = CoverageRatio::sweep();
    let mut headers: Vec<String> = vec!["workload".into()];
    for c in &sweep {
        headers.push(format!("sparse@{c}"));
    }
    for c in &sweep {
        headers.push(format!("stash@{c}"));
    }
    let mut table = Table::new(
        "E4 / Fig B — directory-induced invalidations per 1k ops vs coverage",
        &headers,
    );
    for workload in Workload::suite() {
        let mut row = vec![workload.name().to_string()];
        for &coverage in &sweep {
            let r = report(results, &case(DirSpec::sparse(coverage), workload, p));
            row.push(f2(r.invalidations_per_kop()));
        }
        for &coverage in &sweep {
            let r = report(results, &case(DirSpec::stash(coverage), workload, p));
            row.push(f2(r.invalidations_per_kop()));
        }
        table.row(row);
    }
    Assembled { table, note: None }
}

// ---------------------------------------------------------------- E5

fn e5_cases(p: Params) -> Vec<CaseSpec> {
    Workload::suite()
        .into_iter()
        .flat_map(|w| {
            [
                case(DirSpec::stash(eighth()), w, p),
                case(DirSpec::sparse(eighth()), w, p),
            ]
        })
        .collect()
}

fn e5_assemble(p: Params, results: &ResultSet) -> Assembled {
    let mut table = Table::new(
        "E5 / Fig C — stash eviction breakdown at 1/8 coverage",
        &[
            "workload",
            "evictions",
            "silent",
            "invalidating",
            "silent_frac",
            "sparse_copies_lost",
            "stash_copies_lost",
        ],
    );
    for workload in Workload::suite() {
        let stash = report(results, &case(DirSpec::stash(eighth()), workload, p));
        let sparse = report(results, &case(DirSpec::sparse(eighth()), workload, p));
        let silent = stash.stat("dir.silent_evictions");
        let inval = stash.stat("dir.invalidating_evictions");
        table.row(vec![
            workload.name().to_string(),
            n0(silent + inval),
            n0(silent),
            n0(inval),
            f2(stash.silent_eviction_fraction()),
            n0(sparse.stat("dir.copies_invalidated")),
            n0(stash.stat("dir.copies_invalidated")),
        ]);
    }
    Assembled { table, note: None }
}

// ---------------------------------------------------------------- E6

fn e6_cases(p: Params) -> Vec<CaseSpec> {
    Workload::suite()
        .into_iter()
        .map(|w| case(DirSpec::stash(eighth()), w, p))
        .collect()
}

fn e6_assemble(p: Params, results: &ResultSet) -> Assembled {
    let mut table = Table::new(
        "E6 / Fig D — discovery behavior of the stash directory at 1/8 coverage",
        &[
            "workload",
            "disc/kop",
            "demand_disc",
            "found",
            "stale",
            "llc_evict_disc",
            "mean_disc_lat",
            "hidden_wb",
        ],
    );
    for workload in Workload::suite() {
        let r = report(results, &case(DirSpec::stash(eighth()), workload, p));
        table.row(vec![
            workload.name().to_string(),
            f2(r.discoveries_per_kop()),
            n0(r.stat("bank.discoveries")),
            n0(r.stat("bank.discoveries_found")),
            n0(r.stat("bank.discoveries_stale")),
            n0(r.stat("bank.evict_discoveries")),
            f2(r.stat("bank.mean_discovery_latency")),
            n0(r.stat("bank.hidden_writebacks")),
        ]);
    }
    Assembled { table, note: None }
}

// ---------------------------------------------------------------- E7

fn e7_cases(p: Params) -> Vec<CaseSpec> {
    Workload::suite()
        .into_iter()
        .flat_map(|w| {
            [
                case(DirSpec::FullMap, w, p),
                case(DirSpec::sparse(eighth()), w, p),
                case(DirSpec::stash(eighth()), w, p),
            ]
        })
        .collect()
}

fn e7_assemble(p: Params, results: &ResultSet) -> Assembled {
    fn class_flits(r: &SimReport, class: &str) -> f64 {
        r.stat(&format!("noc.flits.{class}"))
    }
    let mut table = Table::new(
        "E7 / Fig E — NoC traffic at 1/8 coverage (flit-hops normalized to full-map; flits by class)",
        &[
            "workload",
            "sparse_norm",
            "stash_norm",
            "sparse_inv_flits",
            "stash_inv_flits",
            "stash_disc_flits",
            "sparse_data_flits",
            "stash_data_flits",
        ],
    );
    for workload in Workload::suite() {
        let ideal = report(results, &case(DirSpec::FullMap, workload, p));
        let sparse = report(results, &case(DirSpec::sparse(eighth()), workload, p));
        let stash = report(results, &case(DirSpec::stash(eighth()), workload, p));
        table.row(vec![
            workload.name().to_string(),
            f3(sparse.flit_hops() / ideal.flit_hops()),
            f3(stash.flit_hops() / ideal.flit_hops()),
            n0(class_flits(sparse, "inv")),
            n0(class_flits(stash, "inv")),
            n0(class_flits(stash, "discovery")),
            n0(class_flits(sparse, "data")),
            n0(class_flits(stash, "data")),
        ]);
    }
    Assembled { table, note: None }
}

// ---------------------------------------------------------------- E8

const E8_ASSOCS: [usize; 4] = [2, 4, 8, 16];
const E8_WORKLOADS: [Workload; 4] = [
    Workload::DataParallel,
    Workload::Fft,
    Workload::Lu,
    Workload::ReadMostly,
];

fn e8_sparse(assoc: usize) -> DirSpec {
    DirSpec::Sparse {
        coverage: CoverageRatio::new(1, 8),
        assoc,
        repl: DirReplPolicy::Lru,
    }
}

fn e8_stash(assoc: usize) -> DirSpec {
    DirSpec::Stash {
        coverage: CoverageRatio::new(1, 8),
        assoc,
        repl: DirReplPolicy::PrivateFirstLru,
    }
}

fn e8_cases(p: Params) -> Vec<CaseSpec> {
    let mut cases = Vec::new();
    for workload in E8_WORKLOADS {
        cases.push(case(DirSpec::FullMap, workload, p));
        for assoc in E8_ASSOCS {
            cases.push(case(e8_sparse(assoc), workload, p));
        }
        for assoc in E8_ASSOCS {
            cases.push(case(e8_stash(assoc), workload, p));
        }
    }
    cases
}

fn e8_assemble(p: Params, results: &ResultSet) -> Assembled {
    let mut headers: Vec<String> = vec!["workload".into()];
    for a in E8_ASSOCS {
        headers.push(format!("sparse_{a}w"));
    }
    for a in E8_ASSOCS {
        headers.push(format!("stash_{a}w"));
    }
    let mut table = Table::new(
        "E8 / Fig F — sensitivity to directory associativity at 1/8 coverage (normalized to full-map)",
        &headers,
    );
    for workload in E8_WORKLOADS {
        let ideal = report(results, &case(DirSpec::FullMap, workload, p)).cycles as f64;
        let mut row = vec![workload.name().to_string()];
        for assoc in E8_ASSOCS {
            let r = report(results, &case(e8_sparse(assoc), workload, p));
            row.push(f3(r.cycles as f64 / ideal));
        }
        for assoc in E8_ASSOCS {
            let r = report(results, &case(e8_stash(assoc), workload, p));
            row.push(f3(r.cycles as f64 / ideal));
        }
        table.row(row);
    }
    Assembled { table, note: None }
}

// ---------------------------------------------------------------- E9

const E9_CORES: [u16; 3] = [16, 32, 64];
const E9_WORKLOADS: [Workload; 3] = [
    Workload::DataParallel,
    Workload::Stencil,
    Workload::Migratory,
];

fn e9_cases(p: Params) -> Vec<CaseSpec> {
    let mut cases = Vec::new();
    for workload in E9_WORKLOADS {
        for cores in E9_CORES {
            cases.push(scaled_case(DirSpec::FullMap, cores, workload, p));
            cases.push(scaled_case(DirSpec::sparse(eighth()), cores, workload, p));
            cases.push(scaled_case(DirSpec::stash(eighth()), cores, workload, p));
        }
    }
    cases
}

fn e9_assemble(p: Params, results: &ResultSet) -> Assembled {
    let mut table = Table::new(
        "E9 / Fig G — scalability at 1/8 coverage (normalized to full-map at each core count)",
        &[
            "workload",
            "cores",
            "sparse_norm",
            "stash_norm",
            "stash_disc/kop",
        ],
    );
    for workload in E9_WORKLOADS {
        for cores in E9_CORES {
            let ideal = report(results, &scaled_case(DirSpec::FullMap, cores, workload, p));
            let sparse = report(
                results,
                &scaled_case(DirSpec::sparse(eighth()), cores, workload, p),
            );
            let stash = report(
                results,
                &scaled_case(DirSpec::stash(eighth()), cores, workload, p),
            );
            table.row(vec![
                workload.name().to_string(),
                cores.to_string(),
                f3(sparse.cycles as f64 / ideal.cycles as f64),
                f3(stash.cycles as f64 / ideal.cycles as f64),
                f2(stash.discoveries_per_kop()),
            ]);
        }
    }
    Assembled { table, note: None }
}

// ---------------------------------------------------------------- E10

fn e10_assemble(_p: Params, _results: &ResultSet) -> Assembled {
    let config = SystemConfig::default();
    let tracked = config.tracked_blocks_per_slice();
    let params = config.cost_params();
    let per_slice = CostParams {
        llc_lines: params.llc_lines / config.cores as u64,
        ..params
    };

    let mut table = Table::new(
        "E10 / Table 3 — directory storage per slice (16-core model, 48-bit PA)",
        &[
            "organization",
            "entries",
            "entry_bits",
            "extra_bits",
            "total_KiB",
            "vs sparse@1",
        ],
    );

    let sparse_full = DirSpec::sparse(CoverageRatio::FULL)
        .slice_config(tracked)
        .build(0);
    let baseline_bits = sparse_full.storage_bits(&per_slice) as f64;

    let cases: Vec<(String, DirSpec)> =
        std::iter::once(("sparse@1".to_string(), DirSpec::sparse(CoverageRatio::FULL)))
            .chain(CoverageRatio::sweep().into_iter().flat_map(|c| {
                [
                    (format!("sparse@{c}"), DirSpec::sparse(c)),
                    (format!("stash@{c}"), DirSpec::stash(c)),
                ]
            }))
            .collect();

    let mut seen = std::collections::HashSet::new();
    for (label, spec) in cases {
        if !seen.insert(label.clone()) {
            continue;
        }
        let dir = spec.slice_config(tracked).build(0);
        let total = dir.storage_bits(&per_slice);
        let entry_bits = per_slice.bits_per_entry() * dir.capacity() as u64;
        table.row(vec![
            label,
            dir.capacity().to_string(),
            entry_bits.to_string(),
            (total - entry_bits).to_string(),
            f2(total as f64 / 8.0 / 1024.0),
            f2(total as f64 / baseline_bits),
        ]);
    }
    let note = format!(
        "stash@1/8 costs ~{:.0}% of the conventional sparse@1 directory it \
         replaces (per E3, at equal performance).",
        100.0
            * DirSpec::stash(eighth())
                .slice_config(tracked)
                .build(0)
                .storage_bits(&per_slice) as f64
            / baseline_bits
    );
    Assembled {
        table,
        note: Some(note),
    }
}

// ---------------------------------------------------------------- E11

const E11_POLICIES: [(&str, DirReplPolicy); 3] = [
    ("private-first-lru", DirReplPolicy::PrivateFirstLru),
    ("plain-lru", DirReplPolicy::Lru),
    ("random", DirReplPolicy::Random),
];
const E11_WORKLOADS: [Workload; 4] = [
    Workload::Lu,
    Workload::ReadMostly,
    Workload::Stencil,
    Workload::ProducerConsumer,
];

fn e11_stash(repl: DirReplPolicy) -> DirSpec {
    DirSpec::Stash {
        coverage: CoverageRatio::new(1, 8),
        assoc: 8,
        repl,
    }
}

fn e11_cases(p: Params) -> Vec<CaseSpec> {
    let mut cases = Vec::new();
    for workload in E11_WORKLOADS {
        cases.push(case(DirSpec::FullMap, workload, p));
        for (_, repl) in E11_POLICIES {
            cases.push(case(e11_stash(repl), workload, p));
        }
    }
    cases
}

fn e11_assemble(p: Params, results: &ResultSet) -> Assembled {
    let mut table = Table::new(
        "E11 / Fig H — stash victim-selection ablation at 1/8 coverage",
        &[
            "workload",
            "policy",
            "norm_time",
            "silent_frac",
            "copies_lost",
        ],
    );
    for workload in E11_WORKLOADS {
        let ideal = report(results, &case(DirSpec::FullMap, workload, p)).cycles as f64;
        for (name, repl) in E11_POLICIES {
            let r = report(results, &case(e11_stash(repl), workload, p));
            table.row(vec![
                workload.name().to_string(),
                name.to_string(),
                f3(r.cycles as f64 / ideal),
                f2(r.silent_eviction_fraction()),
                f2(r.stat("dir.copies_invalidated")),
            ]);
        }
    }
    Assembled { table, note: None }
}

// ---------------------------------------------------------------- E12

const E12_WORKLOADS: [Workload; 4] = [
    Workload::DataParallel,
    Workload::Fft,
    Workload::Canneal,
    Workload::Migratory,
];

fn e12_coverages() -> [CoverageRatio; 2] {
    [CoverageRatio::new(1, 4), CoverageRatio::new(1, 8)]
}

fn e12_cases(p: Params) -> Vec<CaseSpec> {
    let mut cases = Vec::new();
    for workload in E12_WORKLOADS {
        cases.push(case(DirSpec::FullMap, workload, p));
        for coverage in e12_coverages() {
            cases.push(case(DirSpec::sparse(coverage), workload, p));
            cases.push(case(DirSpec::Cuckoo { coverage }, workload, p));
            cases.push(case(DirSpec::stash(coverage), workload, p));
        }
    }
    cases
}

fn e12_assemble(p: Params, results: &ResultSet) -> Assembled {
    let mut table = Table::new(
        "E12 / Fig I — stash vs cuckoo vs sparse at matched entry counts (normalized to full-map)",
        &[
            "workload",
            "coverage",
            "sparse",
            "cuckoo",
            "stash",
            "cuckoo_relocs",
            "cuckoo_copies_lost",
            "stash_copies_lost",
        ],
    );
    for workload in E12_WORKLOADS {
        let ideal = report(results, &case(DirSpec::FullMap, workload, p)).cycles as f64;
        for coverage in e12_coverages() {
            let sparse = report(results, &case(DirSpec::sparse(coverage), workload, p));
            let cuckoo = report(results, &case(DirSpec::Cuckoo { coverage }, workload, p));
            let stash = report(results, &case(DirSpec::stash(coverage), workload, p));
            table.row(vec![
                workload.name().to_string(),
                coverage.to_string(),
                f3(sparse.cycles as f64 / ideal),
                f3(cuckoo.cycles as f64 / ideal),
                f3(stash.cycles as f64 / ideal),
                n0(cuckoo.stat("dir.relocations")),
                n0(cuckoo.stat("dir.copies_invalidated")),
                n0(stash.stat("dir.copies_invalidated")),
            ]);
        }
    }
    Assembled { table, note: None }
}

// ---------------------------------------------------------------- E13

fn e13_cases(p: Params) -> Vec<CaseSpec> {
    Workload::suite()
        .into_iter()
        .flat_map(|w| {
            [
                case(DirSpec::FullMap, w, p),
                case(DirSpec::sparse(eighth()), w, p),
                case(DirSpec::stash(eighth()), w, p),
            ]
        })
        .collect()
}

fn e13_assemble(p: Params, results: &ResultSet) -> Assembled {
    fn counts_of(r: &SimReport) -> EnergyCounts {
        EnergyCounts {
            dir_accesses: r.stat("dir.lookups") as u64,
            llc_accesses: (r.stat("llc.hits") + r.stat("llc.misses") + r.stat("llc.writebacks"))
                as u64,
            dram_accesses: r.stat("dram.accesses") as u64,
            flit_hops: r.stat("noc.flit_hops") as u64,
            probes: (r.stat("noc.messages.inv")
                + r.stat("noc.messages.fwd")
                + r.stat("noc.messages.discovery")) as u64,
        }
    }
    let model = EnergyModel::default();
    let mut table = Table::new(
        "E13 / Fig J — dynamic energy at 1/8 coverage (normalized to full-map)",
        &[
            "workload",
            "sparse",
            "stash",
            "stash_dir_uJ",
            "stash_noc_uJ",
        ],
    );
    for workload in Workload::suite() {
        let ideal = report(results, &case(DirSpec::FullMap, workload, p));
        let sparse = report(results, &case(DirSpec::sparse(eighth()), workload, p));
        let stash = report(results, &case(DirSpec::stash(eighth()), workload, p));
        let base = model.dynamic_pj(&counts_of(ideal));
        let stash_counts = counts_of(stash);
        table.row(vec![
            workload.name().to_string(),
            f3(model.dynamic_pj(&counts_of(sparse)) / base),
            f3(model.dynamic_pj(&stash_counts) / base),
            f3(stash_counts.dir_accesses as f64 * model.dir_access_pj / 1e6),
            f3(stash_counts.flit_hops as f64 * model.flit_hop_pj / 1e6),
        ]);
    }
    Assembled { table, note: None }
}

// ---------------------------------------------------------------- E14

const E14_WORKLOADS: [Workload; 4] = [
    Workload::DataParallel,
    Workload::Canneal,
    Workload::Fft,
    Workload::ReadMostly,
];

fn e14_cases(p: Params) -> Vec<CaseSpec> {
    let mut cases = Vec::new();
    for workload in E14_WORKLOADS {
        cases.push(case(DirSpec::FullMap, workload, p));
        for notify in [true, false] {
            cases.push(notify_case(notify, workload, p));
        }
    }
    cases
}

fn e14_assemble(p: Params, results: &ResultSet) -> Assembled {
    let mut table = Table::new(
        "E14 / Fig K — clean-eviction notification ablation (stash at 1/8)",
        &[
            "workload",
            "notify",
            "norm_time",
            "discoveries",
            "found",
            "stale",
            "stale_frac",
        ],
    );
    for workload in E14_WORKLOADS {
        let ideal = report(results, &case(DirSpec::FullMap, workload, p)).cycles as f64;
        for notify in [true, false] {
            let r = report(results, &notify_case(notify, workload, p));
            let found = r.stat("bank.discoveries_found");
            let stale = r.stat("bank.discoveries_stale");
            let total = found + stale;
            table.row(vec![
                workload.name().to_string(),
                notify.to_string(),
                f3(r.cycles as f64 / ideal),
                n0(total),
                n0(found),
                n0(stale),
                f2(if total == 0.0 { 0.0 } else { stale / total }),
            ]);
        }
    }
    Assembled { table, note: None }
}

// ---------------------------------------------------------------- E15

const E15_WORKLOADS: [Workload; 4] = [
    Workload::DataParallel,
    Workload::Lu,
    Workload::ReadMostly,
    Workload::Stencil,
];

/// The E15 format ladder: the stash full-map sharer vector and the
/// limited-pointer encodings, all at 1/8 coverage. The `fullmap-vec` row
/// is the plain stash directory (its entries carry a full 16-bit vector);
/// the `ptr{k}` rows are the `limited-ptr` backend at the same geometry.
fn e15_formats() -> [(&'static str, DirSpec, SharerFormat); 4] {
    [
        (
            "fullmap-vec",
            DirSpec::stash(eighth()),
            SharerFormat::FullMap,
        ),
        (
            "ptr4",
            DirSpec::limited_ptr(eighth(), 4),
            SharerFormat::LimitedPtr { k: 4 },
        ),
        (
            "ptr2",
            DirSpec::limited_ptr(eighth(), 2),
            SharerFormat::LimitedPtr { k: 2 },
        ),
        (
            "ptr1",
            DirSpec::limited_ptr(eighth(), 1),
            SharerFormat::LimitedPtr { k: 1 },
        ),
    ]
}

fn e15_cases(p: Params) -> Vec<CaseSpec> {
    let mut cases = Vec::new();
    for workload in E15_WORKLOADS {
        cases.push(case(DirSpec::FullMap, workload, p));
        for (_, spec, _) in e15_formats() {
            cases.push(case(spec, workload, p));
        }
    }
    cases
}

fn e15_assemble(p: Params, results: &ResultSet) -> Assembled {
    let mut table = Table::new(
        "E15 / Fig L — limited-pointer formats on the stash directory at 1/8 coverage",
        &[
            "workload",
            "format",
            "norm_time",
            "inv_probes",
            "entry_bits",
            "slice_KiB",
        ],
    );
    for workload in E15_WORKLOADS {
        let ideal = report(results, &case(DirSpec::FullMap, workload, p)).cycles as f64;
        for (name, spec, format) in e15_formats() {
            let cfg = machine_with(spec);
            let cost = cfg.cost_params();
            let slice_params = CostParams {
                llc_lines: cost.llc_lines / cfg.cores as u64,
                ..cost
            };
            let slice_bits = cfg.dir_slice().build(0).storage_bits(&slice_params);
            let r = report(results, &case(spec, workload, p));
            table.row(vec![
                workload.name().to_string(),
                name.to_string(),
                f3(r.cycles as f64 / ideal),
                f2(r.stat("noc.messages.inv")),
                format.entry_bits(&slice_params).to_string(),
                f2(slice_bits as f64 / 8.0 / 1024.0),
            ]);
        }
    }
    Assembled { table, note: None }
}

// ---------------------------------------------------------------- E17

/// Chaos-smoke params: a capped op count keeps the gate fast even when
/// the suite runs at full scale — a few hundred ops is plenty to build
/// the directory state every fault class needs a victim in.
fn e17_params(p: Params) -> Params {
    Params {
        ops: p.ops.min(400),
        seed: p.seed,
    }
}

/// One chaos case: a small machine with a deliberately tight (2-way)
/// stash directory, so eviction pressure silently evicts private lines
/// and sets stash bits — the precondition `stash_clear` needs a victim
/// for. Every class runs the same machine/workload; only the injected
/// fault differs, so any table row that goes undetected is attributable
/// to the detector, not the configuration.
fn e17_case(class: FaultClass, p: Params) -> CaseSpec {
    let p = e17_params(p);
    let dir = DirSpec::Stash {
        coverage: eighth(),
        assoc: 2,
        repl: DirReplPolicy::PrivateFirstLru,
    };
    CaseSpec::new(
        SystemConfig::default().with_cores(8).with_dir(dir),
        Workload::DataParallel,
        p.ops,
        p.seed,
    )
    .with_fault(FaultConfig::for_class(class, p.seed))
}

fn e17_cases(p: Params) -> Vec<CaseSpec> {
    FaultClass::ALL.iter().map(|&c| e17_case(c, p)).collect()
}

fn e17_assemble(p: Params, results: &ResultSet) -> Assembled {
    let mut table = Table::new(
        "E17 — chaos smoke: one injected fault per class, detection accounting",
        &[
            "fault_class",
            "injected",
            "expected_detector",
            "detected_invariant",
            "detected_watchdog",
            "quiesced",
            "caught",
        ],
    );
    let mut caught = 0usize;
    for &class in FaultClass::ALL {
        let f = report(results, &e17_case(class, p)).fault;
        let expected = expected_detector(class);
        let hit = f.injected_for(class) > 0 && f.detected_for(expected) > 0;
        caught += usize::from(hit);
        table.row(vec![
            class.label().to_string(),
            n0(f.injected_for(class) as f64),
            expected.label().to_string(),
            n0(f.detected_invariant as f64),
            n0(f.detected_watchdog as f64),
            n0(f.quiesced as f64),
            if hit { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let total = FaultClass::ALL.len();
    let verdict = if caught == total { "PASS" } else { "FAIL" };
    Assembled {
        table,
        note: Some(format!(
            "chaos gate: {caught}/{total} fault classes caught by their expected detector — {verdict}"
        )),
    }
}

// ---------------------------------------------------------------- E18

/// Per-slice directory storage of `spec` on the default 16-core machine.
fn e18_slice_bits(spec: DirSpec) -> u64 {
    let cfg = machine_with(spec);
    let cost = cfg.cost_params();
    let per_slice = CostParams {
        llc_lines: cost.llc_lines / cfg.cores as u64,
        ..cost
    };
    cfg.dir_slice().build(0).storage_bits(&per_slice)
}

/// The equal-area budget every contender must fit: the per-slice storage
/// of the paper's headline stash@1/8 configuration.
fn e18_budget_bits() -> u64 {
    e18_slice_bits(DirSpec::stash(eighth()))
}

/// The widest `make(ways)` whose slice storage still fits `budget`
/// (storage grows monotonically with ways at fixed set count).
fn e18_fit(budget: u64, make: impl Fn(u32) -> DirSpec) -> DirSpec {
    let mut best = make(1);
    for ways in 2..=64 {
        let spec = make(ways);
        if e18_slice_bits(spec) > budget {
            break;
        }
        best = spec;
    }
    best
}

/// One contender per registered backend, each provisioned to the
/// stash@1/8 storage budget. The set count is pinned to the anchor's so
/// every set-associative contender differs only in ways (entry count):
/// cheaper entries (limited pointers) buy more of them, costlier ones
/// (cuckoo tags) fewer. `fullmap` is the unconstrained ideal used for
/// normalization; `dls` stores nothing and is trivially within budget.
fn e18_backends() -> Vec<(&'static str, DirSpec)> {
    let tracked = SystemConfig::default().tracked_blocks_per_slice();
    let budget = e18_budget_bits();
    let sets = (eighth().entries_for(tracked) / 8)
        .max(1)
        .next_power_of_two() as u32;
    let cov = |ways: u32| CoverageRatio::new(sets * ways, tracked as u32);
    let sparse = e18_fit(budget, |w| DirSpec::Sparse {
        coverage: cov(w),
        assoc: w as usize,
        repl: DirReplPolicy::Lru,
    });
    let limited = e18_fit(budget, |w| DirSpec::LimitedPtr {
        coverage: cov(w),
        assoc: w as usize,
        k: 2,
    });
    let opaque = e18_fit(budget, |w| DirSpec::Opaque {
        coverage: cov(w),
        assoc: w as usize,
    });
    let cuckoo = {
        // Cuckoo has no set/way split — fit its flat entry count in
        // steps of 4 (it keeps 4 equal hash tables).
        let mut best = DirSpec::Cuckoo {
            coverage: CoverageRatio::new(4, tracked as u32),
        };
        let mut entries = 8u32;
        while entries as usize <= tracked {
            let spec = DirSpec::Cuckoo {
                coverage: CoverageRatio::new(entries, tracked as u32),
            };
            if e18_slice_bits(spec) > budget {
                break;
            }
            best = spec;
            entries += 4;
        }
        best
    };
    vec![
        ("fullmap", DirSpec::FullMap),
        ("sparse", sparse),
        ("stash", DirSpec::stash(eighth())),
        ("limited-ptr", limited),
        ("cuckoo", cuckoo),
        ("dls", DirSpec::Dls),
        ("opaque", opaque),
    ]
}

fn e18_cases(p: Params) -> Vec<CaseSpec> {
    let mut cases = Vec::new();
    for workload in E9_WORKLOADS {
        for (_, spec) in e18_backends() {
            cases.push(case(spec, workload, p));
        }
    }
    cases
}

fn e18_assemble(p: Params, results: &ResultSet) -> Assembled {
    fn counts_of(r: &SimReport) -> EnergyCounts {
        EnergyCounts {
            dir_accesses: r.stat("dir.lookups") as u64,
            llc_accesses: (r.stat("llc.hits") + r.stat("llc.misses") + r.stat("llc.writebacks"))
                as u64,
            dram_accesses: r.stat("dram.accesses") as u64,
            flit_hops: r.stat("noc.flit_hops") as u64,
            probes: (r.stat("noc.messages.inv")
                + r.stat("noc.messages.fwd")
                + r.stat("noc.messages.discovery")) as u64,
        }
    }
    let model = EnergyModel::default();
    let backends = e18_backends();
    let budget = e18_budget_bits();
    let mut table = Table::new(
        format!(
            "E18 — equal-area backend shoot-out at the stash@1/8 budget ({:.2} KiB/slice)",
            budget as f64 / 8.0 / 1024.0
        ),
        &[
            "workload",
            "backend",
            "spec",
            "norm_time",
            "norm_traffic",
            "norm_energy",
            "slice_KiB",
        ],
    );
    let mut norms: HashMap<&'static str, Vec<f64>> = HashMap::new();
    for workload in E9_WORKLOADS {
        let ideal = report(results, &case(DirSpec::FullMap, workload, p));
        let ideal_cycles = ideal.cycles as f64;
        let ideal_hops = ideal.stat("noc.flit_hops").max(1.0);
        let ideal_pj = model.dynamic_pj(&counts_of(ideal)).max(f64::MIN_POSITIVE);
        for &(name, spec) in &backends {
            let r = report(results, &case(spec, workload, p));
            let norm_time = r.cycles as f64 / ideal_cycles;
            norms.entry(name).or_default().push(norm_time);
            table.row(vec![
                workload.name().to_string(),
                name.to_string(),
                spec.to_string(),
                f3(norm_time),
                f3(r.stat("noc.flit_hops") / ideal_hops),
                f3(model.dynamic_pj(&counts_of(r)) / ideal_pj),
                f2(e18_slice_bits(spec) as f64 / 8.0 / 1024.0),
            ]);
        }
    }
    let g = |name: &str| geomean(&norms[name]);
    let (stash, sparse) = (g("stash"), g("sparse"));
    let verdict = if stash <= sparse {
        "stash keeps the paper's equal-area win"
    } else {
        "RANKING INVERTED vs the paper"
    };
    Assembled {
        table,
        note: Some(format!(
            "equal-area geomeans: stash {} vs sparse {} (cuckoo {}, limited-ptr {}, \
             dls {}, opaque {}) — {verdict}",
            f3(stash),
            f3(sparse),
            f3(g("cuckoo")),
            f3(g("limited-ptr")),
            f3(g("dls")),
            f3(g("opaque")),
        )),
    }
}

// ---------------------------------------------------------------- E19

/// The campaign's statically-known rounds: the witnessed single-fault
/// baseline plus the pairwise compositions. The adaptive
/// coverage-feedback rounds need the round loop and live in
/// [`campaign::run_campaign`] (driven by the `campaign` binary).
fn e19_cases(p: Params) -> Vec<CaseSpec> {
    let mut cases = campaign::baseline_cases(p);
    cases.extend(campaign::pairwise_cases(p));
    cases
}

fn e19_assemble(p: Params, results: &ResultSet) -> Assembled {
    let pairwise = campaign::pairwise_cases(p);
    let mut table = Table::new(
        "E19 — chaos campaign: fault classes composed pairwise through burst schedules",
        &[
            "fault_class",
            "composed_with",
            "injected",
            "expected_detector",
            "caught",
        ],
    );
    for &class in FaultClass::ALL {
        let mut partners: Vec<&'static str> = Vec::new();
        let mut injected = 0u64;
        let mut hit = false;
        for c in &pairwise {
            let f = c.fault.as_ref().expect("pairwise cases carry faults");
            if !f.enabled_classes().contains(&class) {
                continue;
            }
            partners.extend(
                f.enabled_classes()
                    .into_iter()
                    .filter(|&o| o != class)
                    .map(FaultClass::label),
            );
            let r = report(results, c);
            injected += r.fault.injected_for(class);
            hit |= r.fault.injected_for(class) > 0
                && r.fault.detected_for(expected_detector(class)) > 0;
        }
        table.row(vec![
            class.label().to_string(),
            partners.join("+"),
            n0(injected as f64),
            expected_detector(class).label().to_string(),
            if hit { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let (caught, total) = campaign::pairwise_catch(&pairwise, results);
    let (model, _) = campaign::load_model(None).expect("builtin model");
    let mut acc = campaign::CoverageMap::new();
    for c in e19_cases(p) {
        campaign::accumulate(&mut acc, report(results, &c));
    }
    let witnessed = campaign::witnessed_reachable(&model, &acc);
    let verdict = if caught == total { "PASS" } else { "FAIL" };
    Assembled {
        table,
        note: Some(format!(
            "pairwise gate: {caught}/{total} fault classes caught when composed — {verdict}\n\
             static-round coverage: {witnessed}/{} reachable transitions witnessed under fault \
             (adaptive rounds: the `campaign` binary)",
            model.total_reachable(),
        )),
    }
}

// ---------------------------------------------------------------- E20

/// The XL extension of E9's grid: same three organizations, four
/// doublings past E9's 64-core ceiling. One workload (data-parallel,
/// the paper's private-heavy best case for stash) keeps the plan
/// budgeted — each point already simulates `cores × ops` operations,
/// and the 1024-core stash point alone covers 10M+ ops at default
/// params.
const E20_CORES: [u16; 4] = [128, 256, 512, 1024];

fn e20_cases(p: Params) -> Vec<CaseSpec> {
    let mut cases = Vec::new();
    for cores in E20_CORES {
        cases.push(scaled_case(
            DirSpec::FullMap,
            cores,
            Workload::DataParallel,
            p,
        ));
        cases.push(scaled_case(
            DirSpec::sparse(eighth()),
            cores,
            Workload::DataParallel,
            p,
        ));
        cases.push(scaled_case(
            DirSpec::stash(eighth()),
            cores,
            Workload::DataParallel,
            p,
        ));
    }
    cases
}

fn e20_assemble(p: Params, results: &ResultSet) -> Assembled {
    let mut table = Table::new(
        "E20 / Fig G-XL — 128-1024-core scaling at 1/8 coverage (normalized to full-map at each core count)",
        &[
            "workload",
            "cores",
            "sparse_norm",
            "stash_norm",
            "stash_disc/kop",
        ],
    );
    let workload = Workload::DataParallel;
    for cores in E20_CORES {
        let ideal = report(results, &scaled_case(DirSpec::FullMap, cores, workload, p));
        let sparse = report(
            results,
            &scaled_case(DirSpec::sparse(eighth()), cores, workload, p),
        );
        let stash = report(
            results,
            &scaled_case(DirSpec::stash(eighth()), cores, workload, p),
        );
        table.row(vec![
            workload.name().to_string(),
            cores.to_string(),
            f3(sparse.cycles as f64 / ideal.cycles as f64),
            f3(stash.cycles as f64 / ideal.cycles as f64),
            f2(stash.discoveries_per_kop()),
        ]);
    }
    Assembled { table, note: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Params {
        Params { ops: 50, seed: 7 }
    }

    #[test]
    fn registry_keys_and_csvs_are_unique() {
        let reg = registry();
        assert_eq!(reg.len(), 19);
        let mut keys: Vec<_> = reg.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 19, "duplicate experiment key");
        let mut csvs: Vec<_> = reg.iter().map(|e| e.csv).collect();
        csvs.sort_unstable();
        csvs.dedup();
        assert_eq!(csvs.len(), 19, "duplicate csv stem");
        let mut codes: Vec<_> = reg.iter().map(|e| e.code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 19, "duplicate experiment code");
    }

    /// Every registered backend fields an E18 contender, and every
    /// storage-bearing contender lands within (and actually uses) the
    /// stash@1/8 equal-area budget.
    #[test]
    fn e18_contenders_cover_the_registry_at_equal_area() {
        let backends = e18_backends();
        let names: Vec<_> = backends.iter().map(|(n, _)| *n).collect();
        for info in stashdir::core::backends() {
            assert!(
                names.contains(&info.name),
                "registry backend {} has no E18 contender",
                info.name
            );
        }
        let budget = e18_budget_bits();
        for &(name, spec) in &backends {
            if name == "fullmap" {
                continue; // the normalization ideal is unconstrained
            }
            let bits = e18_slice_bits(spec);
            assert!(bits <= budget, "{name} over budget: {bits} > {budget}");
            if name != "dls" {
                assert!(
                    bits * 2 > budget,
                    "{name} leaves half the budget unused: {bits} of {budget}"
                );
            }
        }
    }

    #[test]
    fn find_resolves_keys() {
        assert_eq!(find("perf_vs_coverage").unwrap().code, "E3");
        assert!(find("nonsense").is_none());
    }

    #[test]
    fn case_lists_are_duplicate_free_within_each_experiment() {
        for exp in registry() {
            let cases = exp.cases(tiny());
            let mut ids: Vec<_> = cases.iter().map(|c| c.id()).collect();
            ids.sort();
            let before = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), before, "{} repeats a case", exp.key);
        }
    }

    #[test]
    fn suite_shares_cases_across_experiments() {
        // E3's full-map ideals are also E7's and E13's — the union must be
        // strictly smaller than the sum of the parts.
        let p = tiny();
        let total: usize = registry().iter().map(|e| e.cases(p).len()).sum();
        let mut union: Vec<String> = registry()
            .iter()
            .flat_map(|e| e.cases(p))
            .map(|c| c.id())
            .collect();
        union.sort();
        union.dedup();
        assert!(
            union.len() < total,
            "expected cross-experiment case sharing ({} unique of {total})",
            union.len()
        );
    }

    /// The mutation gate: run the actual E17 grid and require every
    /// fault class to be injected *and* caught by its expected detector.
    /// A checker or watchdog regression that silently stops seeing a
    /// fault class fails here, not in production chaos runs.
    #[test]
    fn chaos_smoke_gate_detects_every_fault_class() {
        let p = Params { ops: 400, seed: 7 };
        let exp = find("chaos_smoke").unwrap();
        let cases = exp.cases(p);
        assert_eq!(cases.len(), stashdir::FaultClass::ALL.len());
        let outcomes = crate::pool::run_cases(&cases, &crate::pool::RunOptions::default());
        let results: ResultSet = outcomes
            .into_iter()
            .filter_map(|o| o.report.map(|r| (o.spec.id(), r)))
            .collect();
        assert_eq!(results.len(), cases.len(), "every chaos case must complete");
        let a = exp.assemble(p, &results);
        let note = a.note.expect("chaos smoke always carries a verdict");
        assert!(
            note.contains("7/7") && note.ends_with("PASS"),
            "{note}\n{}",
            a.table.render()
        );
    }

    #[test]
    fn static_experiments_assemble_without_results() {
        let results = ResultSet::new();
        for key in ["config_table", "workload_table", "storage_table"] {
            let exp = find(key).unwrap();
            assert!(exp.cases(tiny()).is_empty());
            let a = exp.assemble(tiny(), &results);
            assert!(!a.table.render().is_empty());
        }
    }
}
