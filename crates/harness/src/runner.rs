//! Orchestration: expand experiment selections into a deduplicated case
//! list, execute it on the pool (optionally resuming from a prior
//! manifest), persist per-case artifacts and the run manifest, and
//! assemble each experiment's tables with output identical to the old
//! serial binaries.

use crate::artifact;
use crate::digest;
use crate::experiments::{registry, Experiment, ResultSet};
use crate::manifest::RunManifest;
use crate::params::Params;
use crate::plan::CaseSpec;
use crate::pool::{run_cases, CaseOutcome, CaseStatus, RunOptions};
use std::collections::{HashMap, HashSet};
use std::io;
use std::io::IsTerminal as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Everything one sweep invocation needs.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Experiment keys to run (must exist in the registry).
    pub experiments: Vec<String>,
    /// Run name: manifest and artifacts live in `<out_root>/<run>/`.
    pub run: String,
    /// Ops/seed for every case.
    pub params: Params,
    /// Pool options (jobs, fail-fast, progress, panic injection).
    pub options: RunOptions,
    /// Skip cases already completed in `<out_root>/<run>/manifest.json`.
    pub resume: bool,
    /// Where CSVs land and run directories nest (the serial binaries
    /// used `results/`).
    pub out_root: PathBuf,
    /// Print assembled tables and save lines to stdout (off in tests).
    pub print_tables: bool,
    /// Write per-case artifacts as single-line JSON instead of pretty
    /// (`--compact-artifacts`).
    pub compact_artifacts: bool,
}

impl SweepConfig {
    /// A config with the given experiments and defaults matching the old
    /// serial binaries: `results/` output, env-derived params, progress
    /// on a tty, all cores.
    pub fn new(experiments: Vec<String>, run: impl Into<String>) -> Self {
        SweepConfig {
            experiments,
            run: run.into(),
            params: Params::default(),
            options: RunOptions {
                jobs: env_jobs(),
                progress: std::io::stderr().is_terminal(),
                ..Default::default()
            },
            resume: false,
            out_root: PathBuf::from("results"),
            print_tables: true,
            compact_artifacts: false,
        }
    }
}

/// `STASHDIR_JOBS` (0 / unset = all cores).
fn env_jobs() -> usize {
    std::env::var("STASHDIR_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// What one execution produced (before table assembly).
#[derive(Debug)]
pub struct ExecReport {
    /// One outcome per unique case, in plan order.
    pub outcomes: Vec<CaseOutcome>,
    /// Completed reports keyed by case id (resumed ones included).
    pub results: ResultSet,
    /// Cases satisfied from a prior manifest + artifacts.
    pub resumed: usize,
    /// Cases actually executed this invocation.
    pub ran: usize,
    /// Cases that panicked.
    pub failed: usize,
    /// Cases that exceeded the per-case wall-clock budget.
    pub timed_out: usize,
    /// The manifest, as saved to `<run_dir>/manifest.json`.
    pub manifest: RunManifest,
    /// The run directory.
    pub run_dir: PathBuf,
}

/// How [`execute_cases`] persists per-case artifacts and whether it may
/// reuse them from a prior run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PersistOptions {
    /// Satisfy cases completed by a prior manifest from their artifacts
    /// instead of re-running them (`--resume`).
    pub resume: bool,
    /// On-disk rendering for per-case artifacts
    /// (`--compact-artifacts` selects [`ArtifactStyle::Compact`]).
    ///
    /// [`ArtifactStyle::Compact`]: artifact::ArtifactStyle::Compact
    pub style: artifact::ArtifactStyle,
}

/// Executes `cases` (deduplicated by the caller) under `run`, resuming
/// from an existing manifest when asked, writing per-case artifacts and
/// the run manifest.
///
/// # Errors
///
/// Returns any I/O error writing artifacts or the manifest; simulation
/// panics are *not* errors (they become `failed` case records).
pub fn execute_cases(
    cases: &[CaseSpec],
    run: &str,
    out_root: &Path,
    experiment_keys: Vec<String>,
    params: Params,
    options: &RunOptions,
    persist: PersistOptions,
) -> io::Result<ExecReport> {
    let run_dir = out_root.join(run);
    let prior = if persist.resume {
        RunManifest::load(&run_dir)
    } else {
        None
    };

    // Satisfy what we can from the prior manifest + artifacts.
    let mut resumed: HashMap<usize, CaseOutcome> = HashMap::new();
    if let Some(prior) = &prior {
        for (i, spec) in cases.iter().enumerate() {
            let id = spec.id();
            let digest_hex = digest::hex(spec.digest());
            if !prior.completed(&id, &digest_hex) {
                continue;
            }
            if let Ok(report) = artifact::load_report(&run_dir, &id) {
                let duration = prior
                    .record(&id)
                    .map(|r| Duration::from_millis(r.duration_ms))
                    .unwrap_or(Duration::ZERO);
                resumed.insert(
                    i,
                    CaseOutcome {
                        spec: spec.clone(),
                        status: CaseStatus::Completed,
                        duration,
                        attempts: 0,
                        report: Some(report),
                        error: None,
                    },
                );
            }
        }
    }

    let to_run: Vec<CaseSpec> = cases
        .iter()
        .enumerate()
        .filter(|(i, _)| !resumed.contains_key(i))
        .map(|(_, c)| c.clone())
        .collect();

    let start = Instant::now();
    let mut fresh = run_cases(&to_run, options).into_iter();
    let wall = start.elapsed();

    // Merge back into plan order.
    let resumed_idx: HashSet<usize> = resumed.keys().copied().collect();
    let mut outcomes: Vec<CaseOutcome> = Vec::with_capacity(cases.len());
    for i in 0..cases.len() {
        match resumed.remove(&i) {
            Some(o) => outcomes.push(o),
            None => outcomes.push(fresh.next().expect("one outcome per submitted case")),
        }
    }

    // Persist artifacts for freshly completed cases, then the manifest.
    for outcome in &outcomes {
        if let (CaseStatus::Completed, Some(report)) = (outcome.status, outcome.report.as_ref()) {
            artifact::save_report_styled(&run_dir, &outcome.spec.id(), report, persist.style)?;
        }
    }
    let mut manifest = RunManifest::from_outcomes(
        run,
        experiment_keys,
        params.ops,
        params.seed,
        options.resolved_jobs(),
        wall,
        &outcomes,
    );
    // Resumed cases carry their *prior* durations (useful in the record)
    // but did no work this invocation; speedup must not count them.
    if !resumed_idx.is_empty() {
        let fresh_ms: u64 = outcomes
            .iter()
            .enumerate()
            .filter(|(i, _)| !resumed_idx.contains(i))
            .map(|(_, o)| o.duration.as_millis() as u64)
            .sum();
        manifest.speedup = fresh_ms as f64 / manifest.wall_ms.max(1) as f64;
    }
    manifest.save(&run_dir)?;

    let results: ResultSet = outcomes
        .iter()
        .filter_map(|o| o.report.clone().map(|r| (o.spec.id(), r)))
        .collect();
    let resumed_total = cases.len() - to_run.len();
    let failed = outcomes
        .iter()
        .filter(|o| o.status == CaseStatus::Failed)
        .count();
    let timed_out = outcomes
        .iter()
        .filter(|o| o.status == CaseStatus::TimedOut)
        .count();
    Ok(ExecReport {
        ran: to_run.len(),
        resumed: resumed_total,
        failed,
        timed_out,
        results,
        manifest,
        run_dir,
        outcomes,
    })
}

/// A finished sweep: execution plus table assembly.
#[derive(Debug)]
pub struct SweepSummary {
    /// Execution record (outcomes, manifest, counts).
    pub exec: ExecReport,
    /// Experiments whose tables could not be assembled because a needed
    /// case failed or was skipped.
    pub incomplete: Vec<&'static str>,
    /// CSV paths written, in registry order.
    pub csv_paths: Vec<PathBuf>,
}

/// Resolves `keys` against the registry, preserving order.
fn resolve(keys: &[String]) -> Result<Vec<Experiment>, String> {
    let reg = registry();
    keys.iter()
        .map(|k| {
            reg.iter()
                .find(|e| e.key == *k)
                .copied()
                .ok_or_else(|| format!("unknown experiment `{k}` (try --list)"))
        })
        .collect()
}

/// Runs a full sweep: dedup cases across the selected experiments,
/// execute, persist manifest + artifacts, assemble and save each
/// experiment's table.
///
/// # Errors
///
/// Returns `InvalidInput` for unknown experiment keys and any underlying
/// I/O error from persisting artifacts, manifests or CSVs.
pub fn run_sweep(cfg: &SweepConfig) -> io::Result<SweepSummary> {
    let experiments =
        resolve(&cfg.experiments).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;

    // The union of every experiment's cases, first-seen order.
    let mut seen = HashSet::new();
    let mut cases: Vec<CaseSpec> = Vec::new();
    for exp in &experiments {
        for case in exp.cases(cfg.params) {
            if seen.insert(case.id()) {
                cases.push(case);
            }
        }
    }

    let exec = execute_cases(
        &cases,
        &cfg.run,
        &cfg.out_root,
        experiments.iter().map(|e| e.key.to_string()).collect(),
        cfg.params,
        &cfg.options,
        PersistOptions {
            resume: cfg.resume,
            style: if cfg.compact_artifacts {
                artifact::ArtifactStyle::Compact
            } else {
                artifact::ArtifactStyle::Pretty
            },
        },
    )?;

    let mut incomplete = Vec::new();
    let mut csv_paths = Vec::new();
    for exp in &experiments {
        let needed = exp.cases(cfg.params);
        if needed.iter().any(|c| !exec.results.contains_key(&c.id())) {
            incomplete.push(exp.key);
            if cfg.print_tables {
                eprintln!(
                    "[{} not assembled: missing or failed cases — see {}]",
                    exp.key,
                    RunManifest::path(&exec.run_dir).display()
                );
            }
            continue;
        }
        let assembled = exp.assemble(cfg.params, &exec.results);
        std::fs::create_dir_all(&cfg.out_root)?;
        let path = cfg.out_root.join(format!("{}.csv", exp.csv));
        std::fs::write(&path, assembled.table.to_csv())?;
        if cfg.print_tables {
            assembled.table.print();
            println!("[saved {}]", path.display());
            if let Some(note) = &assembled.note {
                println!("{note}");
            }
        }
        csv_paths.push(path);
    }

    Ok(SweepSummary {
        exec,
        incomplete,
        csv_paths,
    })
}

/// Entry point shared by the ported per-experiment binaries
/// (`exp_perf_vs_coverage` & co.): run exactly one experiment on the
/// parallel harness, honoring the common command-line flags.
pub fn run_single_experiment_cli(key: &str) -> ExitCode {
    let mut cfg = SweepConfig::new(vec![key.to_string()], key);
    match apply_common_flags(&mut cfg, std::env::args().skip(1)) {
        Ok(FlagOutcome::Proceed) => {}
        Ok(FlagOutcome::Exit) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    finish_sweep(&cfg)
}

/// Runs a configured sweep and maps the outcome to an exit code,
/// printing the closing summary line.
pub fn finish_sweep(cfg: &SweepConfig) -> ExitCode {
    match run_sweep(cfg) {
        Ok(summary) => {
            let m = &summary.exec.manifest;
            let timeouts = if summary.exec.timed_out > 0 {
                format!(", {} timed out", summary.exec.timed_out)
            } else {
                String::new()
            };
            eprintln!(
                "run `{}`: {} cases ({} ran, {} resumed, {} failed{timeouts}) in {:.1}s wall, {:.2}x speedup on {} workers; manifest {}",
                m.run,
                m.cases.len(),
                summary.exec.ran,
                summary.exec.resumed,
                summary.exec.failed,
                m.wall_ms as f64 / 1000.0,
                m.speedup,
                m.jobs,
                RunManifest::path(&summary.exec.run_dir).display(),
            );
            if summary.exec.failed > 0
                || summary.exec.timed_out > 0
                || !summary.incomplete.is_empty()
            {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("sweep failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Whether flag parsing wants the process to continue or exit cleanly
/// (e.g. after `--help`).
pub enum FlagOutcome {
    /// Run the sweep.
    Proceed,
    /// Flags fully handled (help/list); exit success.
    Exit,
}

/// Common flags shared by `sweep` and the per-experiment binaries.
pub fn common_usage() -> &'static str {
    "  --jobs <n>           worker threads (default: all cores; STASHDIR_JOBS)\n\
     \x20 --ops <n>            operations per core (default 10000; STASHDIR_OPS)\n\
     \x20 --seed <n>           workload seed (default 7; STASHDIR_SEED)\n\
     \x20 --run <name>         run directory name under results/\n\
     \x20 --out <dir>          output root (default results/)\n\
     \x20 --resume             skip cases completed in the run's manifest\n\
     \x20 --compact-artifacts  single-line per-case JSON (smaller runs)\n\
     \x20 --fail-fast          cancel remaining cases after the first failure\n\
     \x20 --timeout-secs <n>   per-case wall-clock budget; over-budget cases\n\
     \x20                      are recorded timed_out and abandoned\n\
     \x20 --retries <n>        extra attempts for failed/timed-out cases\n\
     \x20 --backoff-ms <n>     base backoff between attempts (default 0)\n\
     \x20 --no-progress        suppress the live progress line\n\
     \x20 --inject-panic <s>   test hook: panic in cases whose id contains <s>\n\
     \x20 --help               this text"
}

/// Applies the common flag set to `cfg`. Unknown flags are errors.
///
/// # Errors
///
/// Returns a usage/error message for unknown flags or malformed values.
pub fn apply_common_flags(
    cfg: &mut SweepConfig,
    args: impl Iterator<Item = String>,
) -> Result<FlagOutcome, String> {
    let mut it = args;
    while let Some(flag) = it.next() {
        match parse_one_common_flag(cfg, &flag, &mut it)? {
            Some(FlagOutcome::Exit) => return Ok(FlagOutcome::Exit),
            Some(FlagOutcome::Proceed) => {}
            None => return Err(format!("unknown flag {flag}\n{}", common_usage())),
        }
    }
    Ok(FlagOutcome::Proceed)
}

/// Tries to consume one common flag; `Ok(None)` means "not a common
/// flag" (the sweep binary layers its own on top).
///
/// # Errors
///
/// Returns a message for malformed values.
pub fn parse_one_common_flag(
    cfg: &mut SweepConfig,
    flag: &str,
    it: &mut impl Iterator<Item = String>,
) -> Result<Option<FlagOutcome>, String> {
    let mut value = |name: &str| {
        it.next()
            .ok_or_else(|| format!("{name} needs a value\n{}", common_usage()))
    };
    match flag {
        "--jobs" => {
            cfg.options.jobs = value("--jobs")?
                .parse()
                .map_err(|e| format!("bad --jobs: {e}"))?;
        }
        "--ops" => {
            cfg.params.ops = value("--ops")?
                .parse()
                .map_err(|e| format!("bad --ops: {e}"))?;
        }
        "--seed" => {
            cfg.params.seed = value("--seed")?
                .parse()
                .map_err(|e| format!("bad --seed: {e}"))?;
        }
        "--run" => cfg.run = value("--run")?,
        "--out" => cfg.out_root = PathBuf::from(value("--out")?),
        "--resume" => cfg.resume = true,
        "--compact-artifacts" => cfg.compact_artifacts = true,
        "--fail-fast" => cfg.options.fail_fast = true,
        "--timeout-secs" => {
            let secs: u64 = value("--timeout-secs")?
                .parse()
                .map_err(|e| format!("bad --timeout-secs: {e}"))?;
            cfg.options.timeout = Some(Duration::from_secs(secs));
        }
        "--retries" => {
            cfg.options.retries = value("--retries")?
                .parse()
                .map_err(|e| format!("bad --retries: {e}"))?;
        }
        "--backoff-ms" => {
            let ms: u64 = value("--backoff-ms")?
                .parse()
                .map_err(|e| format!("bad --backoff-ms: {e}"))?;
            cfg.options.backoff = Duration::from_millis(ms);
        }
        "--no-progress" => cfg.options.progress = false,
        "--inject-panic" => cfg.options.inject_panic = Some(value("--inject-panic")?),
        "--help" | "-h" => {
            println!("usage: [options]\n{}", common_usage());
            return Ok(Some(FlagOutcome::Exit));
        }
        _ => return Ok(None),
    }
    Ok(Some(FlagOutcome::Proceed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stashdir::{CoverageRatio, DirSpec, SystemConfig, Workload};

    fn tmp_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("stashdir_runner_{tag}_{}", std::process::id()))
    }

    fn small_cases(n: u64) -> Vec<CaseSpec> {
        (0..n)
            .map(|i| {
                CaseSpec::new(
                    SystemConfig::default()
                        .with_cores(4)
                        .with_dir(DirSpec::stash(CoverageRatio::new(1, 8))),
                    Workload::Uniform,
                    40,
                    i,
                )
            })
            .collect()
    }

    #[test]
    fn execute_writes_manifest_and_artifacts() {
        let root = tmp_root("exec");
        let cases = small_cases(3);
        let rep = execute_cases(
            &cases,
            "r1",
            &root,
            vec!["x".into()],
            Params { ops: 40, seed: 0 },
            &RunOptions {
                jobs: 2,
                ..Default::default()
            },
            PersistOptions {
                resume: false,
                style: artifact::ArtifactStyle::Compact,
            },
        )
        .unwrap();
        assert_eq!(rep.ran, 3);
        assert_eq!(rep.resumed, 0);
        assert_eq!(rep.failed, 0);
        assert_eq!(rep.results.len(), 3);
        assert!(RunManifest::path(&rep.run_dir).exists());
        for c in &cases {
            assert!(artifact::case_path(&rep.run_dir, &c.id()).exists());
        }
        // Second invocation with resume touches nothing.
        let rep2 = execute_cases(
            &cases,
            "r1",
            &root,
            vec!["x".into()],
            Params { ops: 40, seed: 0 },
            &RunOptions::default(),
            PersistOptions {
                resume: true,
                style: artifact::ArtifactStyle::Pretty,
            },
        )
        .unwrap();
        assert_eq!(rep2.resumed, 3);
        assert_eq!(rep2.ran, 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn flags_apply() {
        let mut cfg = SweepConfig::new(vec!["traffic".into()], "t");
        let args = [
            "--jobs",
            "3",
            "--ops",
            "123",
            "--seed",
            "9",
            "--resume",
            "--fail-fast",
            "--no-progress",
            "--run",
            "other",
            "--inject-panic",
            "zzz",
            "--timeout-secs",
            "30",
            "--retries",
            "2",
            "--backoff-ms",
            "250",
        ]
        .iter()
        .map(|s| s.to_string());
        assert!(matches!(
            apply_common_flags(&mut cfg, args),
            Ok(FlagOutcome::Proceed)
        ));
        assert_eq!(cfg.options.jobs, 3);
        assert_eq!(cfg.params.ops, 123);
        assert_eq!(cfg.params.seed, 9);
        assert!(cfg.resume);
        assert!(cfg.options.fail_fast);
        assert!(!cfg.options.progress);
        assert_eq!(cfg.run, "other");
        assert_eq!(cfg.options.inject_panic.as_deref(), Some("zzz"));
        assert_eq!(cfg.options.timeout, Some(Duration::from_secs(30)));
        assert_eq!(cfg.options.retries, 2);
        assert_eq!(cfg.options.backoff, Duration::from_millis(250));
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let mut cfg = SweepConfig::new(vec![], "t");
        assert!(apply_common_flags(&mut cfg, ["--bogus".to_string()].into_iter()).is_err());
    }

    #[test]
    fn unknown_experiment_key_is_invalid_input() {
        let mut cfg = SweepConfig::new(vec!["not_a_thing".into()], "t");
        cfg.print_tables = false;
        cfg.out_root = tmp_root("badkey");
        let err = run_sweep(&cfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_dir_all(&cfg.out_root).ok();
    }
}
