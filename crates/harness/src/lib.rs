//! Parallel experiment orchestration for the Stash Directory reproduction.
//!
//! The `stashdir-bench` binaries each used to carry their own serial
//! grid-loop; this crate factors that structure into a subsystem:
//!
//! * [`plan`] — [`ExperimentPlan`] grids over directory scheme, coverage,
//!   workload, core count, seed and op count, expanded into independent
//!   [`CaseSpec`]s with deterministic identities and per-case seeds.
//! * [`pool`] — a work-stealing worker pool on `std::thread` that runs
//!   cases in parallel with per-case panic isolation (a crashing case
//!   becomes a `failed` record, not a dead sweep) and optional fail-fast
//!   cancellation.
//! * [`manifest`] — [`RunManifest`]s written to
//!   `results/<run>/manifest.json` recording the plan, per-case digests,
//!   statuses and durations, enabling `--resume` to skip completed cases.
//! * [`artifact`] — structured per-case artifacts: each
//!   [`SimReport`](stashdir::SimReport) serialized to
//!   `results/<run>/cases/<id>.json` (deterministically, so parallel and
//!   serial runs produce byte-identical files).
//! * [`experiments`] — the E1–E14 registry: each experiment contributes
//!   cases to a run and assembles its table from the shared result set,
//!   producing the same tables and CSVs as the original serial binaries.
//! * [`progress`] — a live `done/total`, ETA and worker-utilization line.
//!
//! The `sweep` binary drives the whole suite in one parallel invocation:
//!
//! ```sh
//! cargo run --release -p stashdir-harness --bin sweep -- --all
//! cargo run --release -p stashdir-harness --bin sweep -- --plan perf_vs_coverage,traffic
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod campaign;
pub mod digest;
pub mod experiments;
pub mod fsio {
    //! Durable-write discipline for run artifacts — atomic temp+rename
    //! writes and corrupt-file quarantine. The implementation lives in
    //! [`stashdir::common::fsio`] so artifact writers outside the harness
    //! (the lint binary, future tools) share the same discipline.
    pub use stashdir::common::fsio::{quarantine, write_atomic};
}
pub mod manifest;
pub mod params;
pub mod plan;
pub mod pool;
pub mod progress;
pub mod runner;
pub mod shard;
pub mod table;

pub use campaign::{run_campaign, CampaignConfig, CampaignOutcome, COVERAGE_SCHEMA};
pub use experiments::{registry, Experiment, ResultSet};
pub use manifest::{CaseRecord, RunManifest};
pub use params::{geomean, machine_with, run_case, Params};
pub use plan::{CaseSpec, ExperimentPlan};
pub use pool::{run_cases, CaseOutcome, CaseStatus, RunOptions};
pub use runner::{run_single_experiment_cli, SweepConfig};
pub use table::{f2, f3, n0, Table};
