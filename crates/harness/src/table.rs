//! Printable/saveable result tables (moved here from `stashdir-bench` so
//! both the serial binaries and the parallel sweep share one formatter).

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A printable/saveable result table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new<H: AsRef<str>>(title: impl Into<String>, headers: &[H]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.as_ref().to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// The table serialized as RFC-4180 CSV (cells containing commas,
    /// quotes or line breaks are quoted; embedded quotes doubled).
    pub fn to_csv(&self) -> String {
        let mut csv = String::new();
        for line in std::iter::once(&self.headers).chain(&self.rows) {
            let cells: Vec<String> = line.iter().map(|c| csv_cell(c)).collect();
            csv.push_str(&cells.join(","));
            csv.push('\n');
        }
        csv
    }

    /// Writes the table as CSV under `results/<name>.csv`, returning the
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if the `results/` directory cannot be created or written.
    pub fn save_csv(&self, name: &str) -> PathBuf {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir).expect("create results/");
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, self.to_csv()).expect("write csv");
        println!("[saved {}]", path.display());
        path
    }
}

/// Quotes one CSV cell per RFC 4180 when it contains a comma, quote or
/// line break; returns it verbatim otherwise.
fn csv_cell(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Formats a float with 3 decimals for table cells.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 2 decimals for table cells.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a count (integer-valued f64) for table cells.
pub fn n0(v: f64) -> String {
    format!("{}", v.round() as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("long_header"));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn plain_cells_stay_unquoted() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "x y".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,x y\n");
    }

    #[test]
    fn csv_quotes_commas_quotes_and_newlines() {
        let mut t = Table::new("demo", &["k", "v"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        t.row(vec!["line\nbreak".into(), "plain".into()]);
        assert_eq!(
            t.to_csv(),
            "k,v\n\"a,b\",\"say \"\"hi\"\"\"\n\"line\nbreak\",plain\n"
        );
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(n0(41.7), "42");
    }
}
