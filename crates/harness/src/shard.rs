//! Sharded execution of one logical case across pool threads.
//!
//! The discrete-event inner loop is inherently serial — one run is one
//! thread — but a *measurement* need not be one run. A sharded case
//! splits its per-core op budget into `shards` seed replicas of the
//! same machine/workload, runs the replicas concurrently on the worker
//! pool, and folds their reports into a single [`SimReport`] with
//! [`StatSink::merge`]. This is how a 64-core E9 point, the wall-clock
//! hog of the full sweep, can use every worker the pool has instead of
//! pinning one.
//!
//! # Merge semantics
//!
//! - **Counters** (hits, misses, messages, flits, …) are summed by
//!   [`StatSink::merge`] — exact.
//! - **Ratios** (`l1/l2/llc.miss_rate`) are recomputed from the summed
//!   counters — exact.
//! - **`machine.cycles`** is the max across replicas: the makespan
//!   reading of a set of runs that would execute in parallel.
//! - **Means** (`core.mean_miss_latency`, `noc.mean_latency`,
//!   `bank.mean_discovery_latency`) are combined as weighted means
//!   using the matching sample-count key; `core.p95_miss_latency`,
//!   `bank.mean_inv_round_size` and `dir.occupancy_final` have no
//!   exact combination from per-replica summaries and are combined as
//!   (weighted or plain) replica means — an approximation, which is
//!   why sharding is opt-in and the canonical E1–E17 artifacts always
//!   come from single runs.
//! - **`dir.storage_bits`** is a configuration property, identical in
//!   every replica; the merged report keeps it unchanged.
//!
//! Replicas are deterministic: shard `i` perturbs the workload seed by
//! a fixed odd stride, so the same `(config, workload, params, shards)`
//! always reproduces the same merged report, byte for byte.

use crate::plan::CaseSpec;
use crate::pool::{run_cases, CaseStatus, RunOptions};
use stashdir::{SimReport, StatSink, SystemConfig, Workload};

/// Odd seed stride between shard replicas (any odd constant walks the
/// full 2^64 seed space without collisions).
const SHARD_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Keys whose merged value is a weighted mean, with the key providing
/// the weight (the sample count that produced the mean).
const WEIGHTED_MEANS: &[(&str, &str)] = &[
    ("core.mean_miss_latency", "core.misses"),
    ("core.p95_miss_latency", "core.misses"),
    ("bank.mean_discovery_latency", "bank.discoveries"),
    ("noc.mean_latency", "noc.total_messages"),
];

/// Keys whose merged value is the plain replica mean (no meaningful
/// weight is exported).
const REPLICA_MEANS: &[&str] = &["bank.mean_inv_round_size", "dir.occupancy_final"];

/// Keys identical across replicas of one configuration; the merge keeps
/// a single copy instead of a sum.
const CONFIG_CONSTANTS: &[&str] = &["dir.storage_bits"];

/// Folds shard replica reports into one merged report.
///
/// Returns `None` for an empty slice. See the module docs for the
/// per-key semantics.
pub fn merge_shard_reports(shards: &[SimReport]) -> Option<SimReport> {
    let first = shards.first()?;
    let mut sink = StatSink::new();
    for r in shards {
        sink.merge(&r.sink);
    }

    // Exact fix-ups: ratios from summed counters.
    for prefix in ["l1", "l2", "llc"] {
        let miss_key = format!("{prefix}.miss_rate");
        if sink.get(&miss_key).is_none() {
            continue;
        }
        let misses = sink.get_or_zero(&format!("{prefix}.misses"));
        let total = sink.get_or_zero(&format!("{prefix}.hits")) + misses;
        let rate = if total == 0.0 { 0.0 } else { misses / total };
        sink.put(miss_key, rate);
    }

    for &(key, weight_key) in WEIGHTED_MEANS {
        if sink.get(key).is_none() {
            continue;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for r in shards {
            if r.sink.get(key).is_some() {
                let w = r.sink.get_or_zero(weight_key);
                num += r.sink.get_or_zero(key) * w;
                den += w;
            }
        }
        sink.put(key, if den == 0.0 { 0.0 } else { num / den });
    }

    for &key in REPLICA_MEANS {
        if sink.get(key).is_none() {
            continue;
        }
        let present: Vec<f64> = shards.iter().filter_map(|r| r.sink.get(key)).collect();
        sink.put(key, present.iter().sum::<f64>() / present.len() as f64);
    }

    for &key in CONFIG_CONSTANTS {
        if let Some(v) = first.sink.get(key) {
            sink.put(key, v);
        }
    }

    let cycles = shards.iter().map(|r| r.cycles).max().unwrap_or(0);
    let completed_ops = shards.iter().map(|r| r.completed_ops).sum();
    sink.put("machine.cycles", cycles as f64);
    sink.put("machine.ops", completed_ops as f64);

    Some(SimReport {
        cycles,
        completed_ops,
        violations: shards.iter().flat_map(|r| r.violations.clone()).collect(),
        sink,
        // Timeline samples are per-run diagnostics; a merged timeline
        // would interleave unrelated clocks, so sharded reports carry
        // none.
        timeline: Vec::new(),
        fault: Default::default(),
        snapshot: shards.iter().find_map(|r| r.snapshot.clone()),
        // Coverage is only recorded on (non-sharded) campaign runs.
        coverage: Vec::new(),
    })
}

/// Runs one logical case as `shards` concurrent seed replicas on the
/// worker pool and merges their reports.
///
/// The per-core op budget is split evenly (the last shard absorbs the
/// remainder), so the merged `machine.ops` matches a single run of
/// `params_ops` within rounding of the trace generator.
///
/// # Panics
///
/// Panics if `shards == 0` or any replica fails (a coherence violation
/// in any shard is a real violation of the configuration under test).
pub fn run_case_sharded(
    config: SystemConfig,
    workload: Workload,
    ops: usize,
    seed: u64,
    shards: usize,
    jobs: usize,
) -> SimReport {
    assert!(shards > 0, "need at least one shard");
    let base = ops / shards;
    let specs: Vec<CaseSpec> = (0..shards)
        .map(|i| {
            let shard_ops = if i == shards - 1 {
                ops - base * (shards - 1)
            } else {
                base
            };
            CaseSpec::new(
                config.clone(),
                workload,
                shard_ops,
                seed.wrapping_add(SHARD_SEED_STRIDE.wrapping_mul(i as u64)),
            )
        })
        .collect();
    let outcomes = run_cases(
        &specs,
        &RunOptions {
            jobs,
            ..RunOptions::default()
        },
    );
    let reports: Vec<SimReport> = outcomes
        .into_iter()
        .map(|o| {
            assert!(
                o.status == CaseStatus::Completed,
                "shard {} failed: {}",
                o.spec.id(),
                o.error.unwrap_or_default()
            );
            o.report.expect("completed case carries a report")
        })
        .collect();
    merge_shard_reports(&reports).expect("shards > 0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::machine_with;
    use stashdir::DirSpec;

    fn report_for(ops: usize, seed: u64) -> SimReport {
        crate::params::run_case(
            machine_with(DirSpec::FullMap),
            Workload::DataParallel,
            crate::params::Params { ops, seed },
        )
    }

    #[test]
    fn merge_is_deterministic_and_sums_counters() {
        let a = report_for(60, 11);
        let b = report_for(60, 12);
        let merged = merge_shard_reports(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(merged.completed_ops, a.completed_ops + b.completed_ops);
        assert_eq!(merged.cycles, a.cycles.max(b.cycles));
        assert_eq!(
            merged.stat("l1.misses"),
            a.stat("l1.misses") + b.stat("l1.misses")
        );
        // Ratio recomputed from totals, not summed.
        let misses = merged.stat("l1.misses");
        let total = merged.stat("l1.hits") + misses;
        assert_eq!(merged.stat("l1.miss_rate"), misses / total);
        assert!(merged.stat("l1.miss_rate") <= 1.0);
        // Config constant survives un-multiplied.
        assert_eq!(merged.stat("dir.storage_bits"), a.stat("dir.storage_bits"));
        // Determinism: merging the same reports again is identical.
        let again = merge_shard_reports(&[a, b]).unwrap();
        assert_eq!(merged.sink, again.sink);
    }

    #[test]
    fn sharded_run_reproduces_and_covers_the_op_budget() {
        let run = || {
            run_case_sharded(
                machine_with(DirSpec::stash(stashdir::CoverageRatio::new(1, 2))),
                Workload::Stencil,
                90,
                7,
                3,
                2,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.sink, b.sink, "sharded runs are deterministic");
        assert_eq!(a.cycles, b.cycles);
        assert!(a.violations.is_empty());
        // 3 shards × 30 ops × cores — every op the budget asked for.
        let cores = machine_with(DirSpec::FullMap).cores as u64;
        assert_eq!(a.completed_ops, 90 * cores);
    }
}
