//! Shared run parameters and the single-case entry point.

use stashdir::{DirSpec, Machine, SimReport, SystemConfig, Workload};

/// Shared run parameters, overridable from the environment
/// (`STASHDIR_OPS`, `STASHDIR_SEED`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Operations per core per run.
    pub ops: usize,
    /// Workload generator seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            ops: env_parse("STASHDIR_OPS", 10_000),
            seed: env_parse("STASHDIR_SEED", 7),
        }
    }
}

/// Parses an environment variable, falling back to `default` when unset
/// or malformed. Used for both `usize` and `u64` knobs so seeds keep
/// their full 64-bit range on 32-bit hosts.
fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs one configuration over one workload and asserts the run was
/// coherent.
pub fn run_case(config: SystemConfig, workload: Workload, params: Params) -> SimReport {
    let traces = workload.generate(config.cores, params.ops, params.seed);
    let report = Machine::new(config).run(traces);
    report.assert_clean();
    report
}

/// Convenience: the default 16-core machine with `dir`.
pub fn machine_with(dir: DirSpec) -> SystemConfig {
    SystemConfig::default().with_dir(dir)
}

/// Geometric mean of positive values (how the paper aggregates
/// normalized execution times).
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_uniform_is_identity() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_is_between_min_and_max() {
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn seed_parses_as_full_u64() {
        // 2^63 + 1 does not fit a usize-then-cast path on 32-bit hosts and
        // must still round-trip through the parser used for seeds.
        let big = "9223372036854775809";
        assert_eq!(big.parse::<u64>().unwrap(), (1u64 << 63) + 1);
    }

    #[test]
    fn env_parse_falls_back_on_garbage() {
        // Unset variable.
        assert_eq!(env_parse("STASHDIR_SURELY_UNSET_VAR", 42u64), 42);
    }
}
