//! Structured per-case artifacts: deterministic JSON serialization of
//! [`SimReport`]s, written alongside the run manifest so downstream
//! tooling (plots, regression diffs) never has to re-run a simulation.
//!
//! Serialization is *canonical*: stats are emitted in `StatSink`'s sorted
//! key order and numbers in shortest-roundtrip form, so the same report
//! always produces byte-identical text regardless of which worker thread
//! produced it — the property the parallel-equals-serial test pins down.

use stashdir::common::json::Value;
use stashdir::sim::report::{TimelineSample, TransitionHits};
use stashdir::{FaultSummary, SimReport, StatSink};
use std::io;
use std::path::{Path, PathBuf};

/// Serializes a report to its canonical JSON tree.
pub fn report_to_json(report: &SimReport) -> Value {
    let sink = Value::Object(
        report
            .sink
            .iter()
            .map(|(k, v)| (k.to_string(), Value::Number(v)))
            .collect(),
    );
    let timeline = Value::array(report.timeline.iter().map(sample_to_json).collect());
    let violations = Value::array(
        report
            .violations
            .iter()
            .map(|v| Value::from(v.as_str()))
            .collect(),
    );
    let mut fields = vec![
        ("cycles".into(), Value::from(report.cycles)),
        ("completed_ops".into(), Value::from(report.completed_ops)),
        ("violations".into(), violations),
        ("stats".into(), sink),
        ("timeline".into(), timeline),
    ];
    // Fault counters and the diagnostic snapshot appear only on runs
    // that actually injected or detected something, so fault-free
    // artifacts stay byte-identical to historical ones.
    if report.fault != FaultSummary::default() {
        fields.push(("fault".into(), fault_to_json(&report.fault)));
    }
    if let Some(snapshot) = &report.snapshot {
        fields.push(("snapshot".into(), Value::from(snapshot.as_str())));
    }
    // Transition coverage appears only on witnessing (campaign) runs.
    if !report.coverage.is_empty() {
        fields.push((
            "coverage".into(),
            Value::array(report.coverage.iter().map(hits_to_json).collect()),
        ));
    }
    Value::object(fields)
}

fn hits_to_json(h: &TransitionHits) -> Value {
    Value::object(vec![
        ("section".into(), Value::from(h.section.as_str())),
        ("row".into(), Value::from(h.row.as_str())),
        ("col".into(), Value::from(h.col.as_str())),
        ("hits".into(), Value::from(h.hits)),
    ])
}

fn hits_from_json(value: &Value) -> Option<TransitionHits> {
    Some(TransitionHits {
        section: value.get("section")?.as_str()?.to_string(),
        row: value.get("row")?.as_str()?.to_string(),
        col: value.get("col")?.as_str()?.to_string(),
        hits: value.get("hits")?.as_u64()?,
    })
}

/// Rebuilds a report from its canonical JSON tree.
pub fn report_from_json(value: &Value) -> Option<SimReport> {
    let cycles = value.get("cycles")?.as_u64()?;
    let completed_ops = value.get("completed_ops")?.as_u64()?;
    let violations = value
        .get("violations")?
        .as_array()?
        .iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect::<Option<Vec<_>>>()?;
    let sink: StatSink = value
        .get("stats")?
        .as_object()?
        .iter()
        .map(|(k, v)| Some((k.clone(), v.as_f64()?)))
        .collect::<Option<Vec<_>>>()?
        .into_iter()
        .collect();
    let timeline = value
        .get("timeline")?
        .as_array()?
        .iter()
        .map(sample_from_json)
        .collect::<Option<Vec<_>>>()?;
    let fault = match value.get("fault") {
        Some(v) => fault_from_json(v)?,
        None => FaultSummary::default(),
    };
    let snapshot = value
        .get("snapshot")
        .and_then(Value::as_str)
        .map(str::to_string);
    let coverage = match value.get("coverage") {
        Some(v) => v
            .as_array()?
            .iter()
            .map(hits_from_json)
            .collect::<Option<Vec<_>>>()?,
        None => Vec::new(),
    };
    Some(SimReport {
        cycles,
        completed_ops,
        violations,
        sink,
        timeline,
        fault,
        snapshot,
        coverage,
    })
}

/// Serializes the fault/detection counters.
pub fn fault_to_json(f: &FaultSummary) -> Value {
    Value::object(vec![
        (
            "injected_noc_delay".into(),
            Value::from(f.injected_noc_delay),
        ),
        (
            "injected_noc_duplicate".into(),
            Value::from(f.injected_noc_duplicate),
        ),
        (
            "injected_sharer_flip".into(),
            Value::from(f.injected_sharer_flip),
        ),
        (
            "injected_stash_clear".into(),
            Value::from(f.injected_stash_clear),
        ),
        (
            "injected_stash_spurious".into(),
            Value::from(f.injected_stash_spurious),
        ),
        (
            "injected_drop_grant".into(),
            Value::from(f.injected_drop_grant),
        ),
        (
            "injected_stuck_transient".into(),
            Value::from(f.injected_stuck_transient),
        ),
        (
            "detected_invariant".into(),
            Value::from(f.detected_invariant),
        ),
        ("detected_watchdog".into(), Value::from(f.detected_watchdog)),
        ("quiesced".into(), Value::from(f.quiesced)),
    ])
}

/// Rebuilds the fault/detection counters.
pub fn fault_from_json(value: &Value) -> Option<FaultSummary> {
    Some(FaultSummary {
        injected_noc_delay: value.get("injected_noc_delay")?.as_u64()?,
        injected_noc_duplicate: value.get("injected_noc_duplicate")?.as_u64()?,
        injected_sharer_flip: value.get("injected_sharer_flip")?.as_u64()?,
        injected_stash_clear: value.get("injected_stash_clear")?.as_u64()?,
        injected_stash_spurious: value.get("injected_stash_spurious")?.as_u64()?,
        injected_drop_grant: value.get("injected_drop_grant")?.as_u64()?,
        injected_stuck_transient: value.get("injected_stuck_transient")?.as_u64()?,
        detected_invariant: value.get("detected_invariant")?.as_u64()?,
        detected_watchdog: value.get("detected_watchdog")?.as_u64()?,
        quiesced: value.get("quiesced")?.as_u64()?,
    })
}

fn sample_to_json(s: &TimelineSample) -> Value {
    Value::object(vec![
        ("cycle".into(), Value::from(s.cycle)),
        ("dir_occupancy".into(), Value::from(s.dir_occupancy)),
        ("ops".into(), Value::from(s.ops)),
        ("silent_evictions".into(), Value::from(s.silent_evictions)),
        (
            "invalidating_evictions".into(),
            Value::from(s.invalidating_evictions),
        ),
        ("discoveries".into(), Value::from(s.discoveries)),
    ])
}

fn sample_from_json(value: &Value) -> Option<TimelineSample> {
    Some(TimelineSample {
        cycle: value.get("cycle")?.as_u64()?,
        dir_occupancy: value.get("dir_occupancy")?.as_u64()?,
        ops: value.get("ops")?.as_u64()?,
        silent_evictions: value.get("silent_evictions")?.as_u64()?,
        invalidating_evictions: value.get("invalidating_evictions")?.as_u64()?,
        discoveries: value.get("discoveries")?.as_u64()?,
    })
}

/// The artifact path for a case inside a run directory.
pub fn case_path(run_dir: &Path, case_id: &str) -> PathBuf {
    run_dir.join("cases").join(format!("{case_id}.json"))
}

/// How per-case artifacts are rendered on disk. Both styles parse back
/// identically; the choice only trades readability for size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArtifactStyle {
    /// Two-space-indented JSON — diff-friendly, the default.
    #[default]
    Pretty,
    /// Single-line JSON — substantially smaller for big sweeps,
    /// especially with timelines on (`--compact-artifacts`).
    Compact,
}

/// Writes a case's report artifact (creating `cases/` as needed) in the
/// default pretty style.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_report(run_dir: &Path, case_id: &str, report: &SimReport) -> io::Result<PathBuf> {
    save_report_styled(run_dir, case_id, report, ArtifactStyle::Pretty)
}

/// Writes a case's report artifact in the given style.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_report_styled(
    run_dir: &Path,
    case_id: &str,
    report: &SimReport,
    style: ArtifactStyle,
) -> io::Result<PathBuf> {
    let path = case_path(run_dir, case_id);
    let value = report_to_json(report);
    let text = match style {
        ArtifactStyle::Pretty => value.render_pretty(),
        ArtifactStyle::Compact => {
            let mut t = value.render();
            t.push('\n');
            t
        }
    };
    crate::fsio::write_atomic(&path, &text)?;
    Ok(path)
}

/// Loads a case's report artifact. A present-but-corrupt artifact
/// (truncated or malformed) is quarantined as `<case>.json.corrupt` so a
/// resume fsck re-runs the case instead of trusting or tripping on it.
///
/// # Errors
///
/// Returns an I/O error when the file is missing or unreadable, or an
/// `InvalidData` error when it does not parse back into a report (the
/// file has then been moved to quarantine).
pub fn load_report(run_dir: &Path, case_id: &str) -> io::Result<SimReport> {
    let path = case_path(run_dir, case_id);
    let text = std::fs::read_to_string(&path)?;
    let parsed = Value::parse(&text).ok().and_then(|v| report_from_json(&v));
    match parsed {
        Some(report) => Ok(report),
        None => {
            let _ = crate::fsio::quarantine(&path);
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "malformed report artifact {} (quarantined as .corrupt)",
                    path.display()
                ),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> SimReport {
        let mut sink = StatSink::new();
        sink.put("dir.silent_evictions", 42.0);
        sink.put("core.mean_miss_latency", 17.25);
        SimReport {
            cycles: 123_456,
            completed_ops: 16_000,
            violations: vec!["example, with comma".into()],
            sink,
            timeline: vec![TimelineSample {
                cycle: 50_000,
                dir_occupancy: 512,
                ops: 9_000,
                silent_evictions: 100,
                invalidating_evictions: 3,
                discoveries: 7,
            }],
            fault: FaultSummary::default(),
            snapshot: None,
            coverage: Vec::new(),
        }
    }

    #[test]
    fn report_round_trips() {
        let r = sample_report();
        let v = report_to_json(&r);
        let back = report_from_json(&Value::parse(&v.render_pretty()).unwrap()).unwrap();
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.completed_ops, r.completed_ops);
        assert_eq!(back.violations, r.violations);
        assert_eq!(back.sink, r.sink);
        assert_eq!(back.timeline, r.timeline);
    }

    #[test]
    fn serialization_is_deterministic() {
        let r = sample_report();
        assert_eq!(
            report_to_json(&r).render_pretty(),
            report_to_json(&r.clone()).render_pretty()
        );
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join(format!("stashdir_artifact_{}", std::process::id()));
        let r = sample_report();
        let path = save_report(&dir, "case-x", &r).unwrap();
        assert!(path.ends_with("cases/case-x.json"));
        let back = load_report(&dir, "case-x").unwrap();
        assert_eq!(back.sink, r.sink);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_artifact_is_quarantined_on_load() {
        let dir = std::env::temp_dir().join(format!("stashdir_artifact_q_{}", std::process::id()));
        let r = sample_report();
        let path = save_report(&dir, "case-t", &r).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = load_report(&dir, "case-t").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(!path.exists(), "corrupt artifact must be moved aside");
        assert!(path.with_file_name("case-t.json.corrupt").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulty_report_round_trips_with_counters_and_snapshot() {
        let mut r = sample_report();
        r.fault.injected_sharer_flip = 1;
        r.fault.detected_invariant = 2;
        r.fault.quiesced = 1;
        r.snapshot = Some("{\"schema\": \"stashdir/diag-snapshot/v1\"}".to_string());
        let back =
            report_from_json(&Value::parse(&report_to_json(&r).render_pretty()).unwrap()).unwrap();
        assert_eq!(back.fault, r.fault);
        assert_eq!(back.snapshot, r.snapshot);
    }

    #[test]
    fn fault_free_artifacts_carry_no_fault_keys() {
        let text = report_to_json(&sample_report()).render_pretty();
        assert!(!text.contains("\"fault\""));
        assert!(!text.contains("\"snapshot\""));
        assert!(!text.contains("\"coverage\""));
    }

    #[test]
    fn witnessed_coverage_round_trips() {
        let mut r = sample_report();
        r.coverage = vec![
            TransitionHits {
                section: "private_probe".into(),
                row: "Modified".into(),
                col: "FwdGetS".into(),
                hits: 3,
            },
            TransitionHits {
                section: "home".into(),
                row: "GetS".into(),
                col: "Untracked".into(),
                hits: 12,
            },
        ];
        let text = report_to_json(&r).render_pretty();
        assert!(text.contains("\"coverage\""));
        let back = report_from_json(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back.coverage, r.coverage);
    }

    #[test]
    fn compact_artifacts_round_trip_and_shrink() {
        let dir = std::env::temp_dir().join(format!("stashdir_artifact_c_{}", std::process::id()));
        let r = sample_report();
        let pretty = save_report_styled(&dir, "case-p", &r, ArtifactStyle::Pretty).unwrap();
        let compact = save_report_styled(&dir, "case-c", &r, ArtifactStyle::Compact).unwrap();
        let back = load_report(&dir, "case-c").unwrap();
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.sink, r.sink);
        assert_eq!(back.timeline, r.timeline);
        let pretty_len = std::fs::metadata(&pretty).unwrap().len();
        let compact_text = std::fs::read_to_string(&compact).unwrap();
        assert!((compact_text.len() as u64) < pretty_len);
        assert_eq!(compact_text.trim_end().lines().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
