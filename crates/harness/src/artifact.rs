//! Structured per-case artifacts: deterministic JSON serialization of
//! [`SimReport`]s, written alongside the run manifest so downstream
//! tooling (plots, regression diffs) never has to re-run a simulation.
//!
//! Serialization is *canonical*: stats are emitted in `StatSink`'s sorted
//! key order and numbers in shortest-roundtrip form, so the same report
//! always produces byte-identical text regardless of which worker thread
//! produced it — the property the parallel-equals-serial test pins down.

use stashdir::common::json::Value;
use stashdir::sim::report::TimelineSample;
use stashdir::{SimReport, StatSink};
use std::io;
use std::path::{Path, PathBuf};

/// Serializes a report to its canonical JSON tree.
pub fn report_to_json(report: &SimReport) -> Value {
    let sink = Value::Object(
        report
            .sink
            .iter()
            .map(|(k, v)| (k.to_string(), Value::Number(v)))
            .collect(),
    );
    let timeline = Value::array(report.timeline.iter().map(sample_to_json).collect());
    let violations = Value::array(
        report
            .violations
            .iter()
            .map(|v| Value::from(v.as_str()))
            .collect(),
    );
    Value::object(vec![
        ("cycles".into(), Value::from(report.cycles)),
        ("completed_ops".into(), Value::from(report.completed_ops)),
        ("violations".into(), violations),
        ("stats".into(), sink),
        ("timeline".into(), timeline),
    ])
}

/// Rebuilds a report from its canonical JSON tree.
pub fn report_from_json(value: &Value) -> Option<SimReport> {
    let cycles = value.get("cycles")?.as_u64()?;
    let completed_ops = value.get("completed_ops")?.as_u64()?;
    let violations = value
        .get("violations")?
        .as_array()?
        .iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect::<Option<Vec<_>>>()?;
    let sink: StatSink = value
        .get("stats")?
        .as_object()?
        .iter()
        .map(|(k, v)| Some((k.clone(), v.as_f64()?)))
        .collect::<Option<Vec<_>>>()?
        .into_iter()
        .collect();
    let timeline = value
        .get("timeline")?
        .as_array()?
        .iter()
        .map(sample_from_json)
        .collect::<Option<Vec<_>>>()?;
    Some(SimReport {
        cycles,
        completed_ops,
        violations,
        sink,
        timeline,
    })
}

fn sample_to_json(s: &TimelineSample) -> Value {
    Value::object(vec![
        ("cycle".into(), Value::from(s.cycle)),
        ("dir_occupancy".into(), Value::from(s.dir_occupancy)),
        ("ops".into(), Value::from(s.ops)),
        ("silent_evictions".into(), Value::from(s.silent_evictions)),
        (
            "invalidating_evictions".into(),
            Value::from(s.invalidating_evictions),
        ),
        ("discoveries".into(), Value::from(s.discoveries)),
    ])
}

fn sample_from_json(value: &Value) -> Option<TimelineSample> {
    Some(TimelineSample {
        cycle: value.get("cycle")?.as_u64()?,
        dir_occupancy: value.get("dir_occupancy")?.as_u64()?,
        ops: value.get("ops")?.as_u64()?,
        silent_evictions: value.get("silent_evictions")?.as_u64()?,
        invalidating_evictions: value.get("invalidating_evictions")?.as_u64()?,
        discoveries: value.get("discoveries")?.as_u64()?,
    })
}

/// The artifact path for a case inside a run directory.
pub fn case_path(run_dir: &Path, case_id: &str) -> PathBuf {
    run_dir.join("cases").join(format!("{case_id}.json"))
}

/// How per-case artifacts are rendered on disk. Both styles parse back
/// identically; the choice only trades readability for size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArtifactStyle {
    /// Two-space-indented JSON — diff-friendly, the default.
    #[default]
    Pretty,
    /// Single-line JSON — substantially smaller for big sweeps,
    /// especially with timelines on (`--compact-artifacts`).
    Compact,
}

/// Writes a case's report artifact (creating `cases/` as needed) in the
/// default pretty style.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_report(run_dir: &Path, case_id: &str, report: &SimReport) -> io::Result<PathBuf> {
    save_report_styled(run_dir, case_id, report, ArtifactStyle::Pretty)
}

/// Writes a case's report artifact in the given style.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_report_styled(
    run_dir: &Path,
    case_id: &str,
    report: &SimReport,
    style: ArtifactStyle,
) -> io::Result<PathBuf> {
    let path = case_path(run_dir, case_id);
    std::fs::create_dir_all(path.parent().expect("case path has parent"))?;
    let value = report_to_json(report);
    let text = match style {
        ArtifactStyle::Pretty => value.render_pretty(),
        ArtifactStyle::Compact => {
            let mut t = value.render();
            t.push('\n');
            t
        }
    };
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Loads a case's report artifact.
///
/// # Errors
///
/// Returns an I/O error when the file is missing or unreadable, or an
/// `InvalidData` error when it does not parse back into a report.
pub fn load_report(run_dir: &Path, case_id: &str) -> io::Result<SimReport> {
    let path = case_path(run_dir, case_id);
    let text = std::fs::read_to_string(&path)?;
    let value = Value::parse(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    report_from_json(&value).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed report artifact {}", path.display()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> SimReport {
        let mut sink = StatSink::new();
        sink.put("dir.silent_evictions", 42.0);
        sink.put("core.mean_miss_latency", 17.25);
        SimReport {
            cycles: 123_456,
            completed_ops: 16_000,
            violations: vec!["example, with comma".into()],
            sink,
            timeline: vec![TimelineSample {
                cycle: 50_000,
                dir_occupancy: 512,
                ops: 9_000,
                silent_evictions: 100,
                invalidating_evictions: 3,
                discoveries: 7,
            }],
        }
    }

    #[test]
    fn report_round_trips() {
        let r = sample_report();
        let v = report_to_json(&r);
        let back = report_from_json(&Value::parse(&v.render_pretty()).unwrap()).unwrap();
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.completed_ops, r.completed_ops);
        assert_eq!(back.violations, r.violations);
        assert_eq!(back.sink, r.sink);
        assert_eq!(back.timeline, r.timeline);
    }

    #[test]
    fn serialization_is_deterministic() {
        let r = sample_report();
        assert_eq!(
            report_to_json(&r).render_pretty(),
            report_to_json(&r.clone()).render_pretty()
        );
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join(format!("stashdir_artifact_{}", std::process::id()));
        let r = sample_report();
        let path = save_report(&dir, "case-x", &r).unwrap();
        assert!(path.ends_with("cases/case-x.json"));
        let back = load_report(&dir, "case-x").unwrap();
        assert_eq!(back.sink, r.sink);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_artifacts_round_trip_and_shrink() {
        let dir = std::env::temp_dir().join(format!("stashdir_artifact_c_{}", std::process::id()));
        let r = sample_report();
        let pretty = save_report_styled(&dir, "case-p", &r, ArtifactStyle::Pretty).unwrap();
        let compact = save_report_styled(&dir, "case-c", &r, ArtifactStyle::Compact).unwrap();
        let back = load_report(&dir, "case-c").unwrap();
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.sink, r.sink);
        assert_eq!(back.timeline, r.timeline);
        let pretty_len = std::fs::metadata(&pretty).unwrap().len();
        let compact_text = std::fs::read_to_string(&compact).unwrap();
        assert!((compact_text.len() as u64) < pretty_len);
        assert_eq!(compact_text.trim_end().lines().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
