//! Experiment plans: grids over machine and workload parameters, expanded
//! into independent, identity-carrying simulation cases.

use crate::digest;
use stashdir::{DirSpec, FaultConfig, SystemConfig, Workload};

/// One independent simulation: a full machine configuration plus the
/// workload, op count and seed that drive it.
///
/// A `CaseSpec` is *pure data*: two specs with equal fields produce the
/// same [`id`](CaseSpec::id) and — because the simulator is deterministic
/// — the same report, which is what lets the pool run them in any order
/// on any thread and lets a resumed run trust completed artifacts.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    /// The machine to simulate.
    pub config: SystemConfig,
    /// The workload driving it.
    pub workload: Workload,
    /// Operations per core.
    pub ops: usize,
    /// Workload generator seed.
    pub seed: u64,
    /// Optional fault-injection config (the chaos suite). Fault-free
    /// cases carry `None` and keep their historical digests/ids.
    pub fault: Option<FaultConfig>,
}

impl CaseSpec {
    /// Builds a (fault-free) spec.
    pub fn new(config: SystemConfig, workload: Workload, ops: usize, seed: u64) -> Self {
        CaseSpec {
            config,
            workload,
            ops,
            seed,
            fault: None,
        }
    }

    /// Threads a fault-injection config into the case.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = Some(fault);
        self
    }

    /// The 64-bit digest of everything that determines this case's
    /// result: the full machine configuration (via its stable debug
    /// rendering) plus workload, op count and seed — and the fault
    /// config when one is threaded (fault-free digests are unchanged,
    /// keeping prior manifests resume-compatible).
    pub fn digest(&self) -> u64 {
        let mut rendered = format!(
            "{:?}|{:?}|{}|{}",
            self.config, self.workload, self.ops, self.seed
        );
        if let Some(fault) = &self.fault {
            rendered.push_str(&format!("|{fault:?}"));
        }
        digest::fnv1a(rendered.as_bytes())
    }

    /// A unique, filesystem-safe identity: human-readable prefix
    /// (directory, cores, workload, ops, seed, fault class if any) plus
    /// a digest suffix covering every remaining config knob.
    pub fn id(&self) -> String {
        let dir = self
            .config
            .dir
            .to_string()
            .replace('/', "_")
            .replace('@', "-");
        let fault = match self.fault.as_ref() {
            Some(f) => match f.class {
                Some(c) => format!("-f{}", c.label()),
                // Burst-only campaign cases: name the schedule size (the
                // digest suffix still covers the exact schedule).
                None if f.has_bursts() => format!("-fmulti{}", f.bursts.len()),
                None => String::new(),
            },
            None => String::new(),
        };
        format!(
            "{dir}-c{}-{}-o{}-s{}{fault}-{}",
            self.config.cores,
            self.workload.name(),
            self.ops,
            self.seed,
            digest::short_hex(self.digest()),
        )
    }
}

/// Derives the seed for case `index` of a multi-seed sweep from a base
/// seed (SplitMix64 step), so grid expansion assigns distinct,
/// reproducible seeds without the caller enumerating them.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A declarative grid of cases: the cross product of directory specs,
/// workloads, core counts and seeds over a base configuration.
///
/// # Examples
///
/// ```
/// use stashdir::{CoverageRatio, DirSpec, SystemConfig, Workload};
/// use stashdir_harness::ExperimentPlan;
///
/// let plan = ExperimentPlan::new("demo", SystemConfig::default(), 1_000)
///     .dirs(vec![DirSpec::FullMap, DirSpec::stash(CoverageRatio::new(1, 8))])
///     .workloads(vec![Workload::DataParallel, Workload::Uniform])
///     .seeds(vec![7, 8]);
/// let cases = plan.expand();
/// assert_eq!(cases.len(), 2 * 2 * 2);
/// // Identities are unique.
/// let mut ids: Vec<_> = cases.iter().map(|c| c.id()).collect();
/// ids.sort();
/// ids.dedup();
/// assert_eq!(ids.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentPlan {
    /// Plan name (used in manifests and progress output).
    pub name: String,
    /// Base machine configuration each case derives from.
    pub base: SystemConfig,
    /// Directory organizations to sweep.
    pub dirs: Vec<DirSpec>,
    /// Workloads to sweep.
    pub workloads: Vec<Workload>,
    /// Core counts to sweep (empty = keep the base core count).
    pub core_counts: Vec<u16>,
    /// Operations per core.
    pub ops: usize,
    /// Workload seeds to sweep.
    pub seeds: Vec<u64>,
}

impl ExperimentPlan {
    /// A plan with the given name, base machine and op count; sweeps
    /// default to the base directory spec, the full workload suite, the
    /// base core count, and seed 7.
    pub fn new(name: impl Into<String>, base: SystemConfig, ops: usize) -> Self {
        ExperimentPlan {
            name: name.into(),
            dirs: vec![base.dir],
            workloads: Workload::suite(),
            core_counts: Vec::new(),
            ops,
            base,
            seeds: vec![7],
        }
    }

    /// Replaces the directory sweep.
    pub fn dirs(mut self, dirs: Vec<DirSpec>) -> Self {
        self.dirs = dirs;
        self
    }

    /// Replaces the workload sweep.
    pub fn workloads(mut self, workloads: Vec<Workload>) -> Self {
        self.workloads = workloads;
        self
    }

    /// Replaces the core-count sweep.
    pub fn core_counts(mut self, core_counts: Vec<u16>) -> Self {
        self.core_counts = core_counts;
        self
    }

    /// Replaces the seed sweep.
    pub fn seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sweeps `count` seeds derived deterministically from `base_seed`
    /// via [`derive_seed`].
    pub fn derived_seeds(mut self, base_seed: u64, count: u64) -> Self {
        self.seeds = (0..count).map(|i| derive_seed(base_seed, i)).collect();
        self
    }

    /// Expands the grid into independent cases, outermost axis first
    /// (workload, then core count, then directory, then seed) so related
    /// cases sit adjacently in the queue.
    pub fn expand(&self) -> Vec<CaseSpec> {
        let core_counts: Vec<u16> = if self.core_counts.is_empty() {
            vec![self.base.cores]
        } else {
            self.core_counts.clone()
        };
        let mut cases = Vec::new();
        for &workload in &self.workloads {
            for &cores in &core_counts {
                for &dir in &self.dirs {
                    for &seed in &self.seeds {
                        let config = self.base.clone().with_cores(cores).with_dir(dir);
                        cases.push(CaseSpec::new(config, workload, self.ops, seed));
                    }
                }
            }
        }
        cases
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stashdir::CoverageRatio;

    #[test]
    fn id_is_filesystem_safe_and_stable() {
        let spec = CaseSpec::new(
            SystemConfig::default().with_dir(DirSpec::stash(CoverageRatio::new(1, 8))),
            Workload::Canneal,
            1000,
            7,
        );
        let id = spec.id();
        assert!(id.starts_with("stash-1_8x8w-c16-canneal-o1000-s7-"));
        assert!(id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'));
        assert_eq!(id, spec.clone().id(), "id must be deterministic");
    }

    #[test]
    fn digest_sees_hidden_config_knobs() {
        let a = CaseSpec::new(SystemConfig::default(), Workload::Uniform, 100, 7);
        let cfg = SystemConfig {
            notify_clean_evictions: false,
            ..SystemConfig::default()
        };
        let b = CaseSpec::new(cfg, Workload::Uniform, 100, 7);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn expand_covers_the_grid() {
        let plan = ExperimentPlan::new("t", SystemConfig::default(), 100)
            .dirs(vec![
                DirSpec::FullMap,
                DirSpec::sparse(CoverageRatio::new(1, 2)),
            ])
            .workloads(vec![Workload::Uniform])
            .core_counts(vec![16, 32])
            .seeds(vec![1, 2, 3]);
        let cases = plan.expand();
        // 2 dirs x 1 workload x 2 core counts x 3 seeds.
        assert_eq!(cases.len(), 12);
        assert!(cases.iter().any(|c| c.config.cores == 32));
    }

    #[test]
    fn derived_seeds_are_distinct_and_reproducible() {
        let a: Vec<u64> = (0..16).map(|i| derive_seed(7, i)).collect();
        let b: Vec<u64> = (0..16).map(|i| derive_seed(7, i)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 16);
    }
}
