//! Configuration digests: a stable 64-bit fingerprint of everything that
//! determines a case's result, used for case identity, manifest
//! validation and resume safety.

/// FNV-1a 64-bit hash of a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Hexadecimal rendering of a digest (16 lowercase digits).
pub fn hex(digest: u64) -> String {
    format!("{digest:016x}")
}

/// Short (8-digit) hexadecimal rendering, used inside case ids.
pub fn short_hex(digest: u64) -> String {
    format!("{:08x}", digest >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn renderings_are_fixed_width() {
        assert_eq!(hex(0x1).len(), 16);
        assert_eq!(short_hex(0x1_0000_0000).len(), 8);
        assert_eq!(short_hex(0xdead_beef_0000_0000), "deadbeef");
    }
}
