//! Runs one logical case as seed-replica shards across the worker pool
//! and prints the merged report — the sharded-run path for the E9-style
//! big-machine points whose single-threaded runs dominate sweep
//! wall-clock.
//!
//! ```sh
//! # A 64-core E9 stash point split into 8 shards over all host cores:
//! cargo run --release -p stashdir-harness --bin shardrun -- \
//!     --cores 64 --dir stash8 --workload stencil --shards 8
//! ```
//!
//! The merged report uses the [`stashdir_harness::shard`] semantics
//! (counters summed exactly, ratios recomputed, means weighted); it is
//! a different estimator than one long run, so its output is written as
//! `shard_<id>.json`, never into the canonical `cases/` artifacts.

use stashdir::{CoverageRatio, DirSpec, SystemConfig, Workload};
use stashdir_harness::artifact;
use stashdir_harness::shard::run_case_sharded;
use std::process::ExitCode;

fn usage() -> String {
    "usage: shardrun [options]\n\
     \x20 --cores <n>          machine size (default 64)\n\
     \x20 --dir <spec>         fullmap | sparse8 | stash8 (default stash8)\n\
     \x20 --workload <w>       dataparallel | stencil | migratory (default stencil)\n\
     \x20 --ops <n>            total ops per core across shards (default 2000)\n\
     \x20 --seed <n>           base workload seed (default 7)\n\
     \x20 --shards <n>         seed replicas to run concurrently (default 4)\n\
     \x20 --jobs <n>           pool workers, 0 = all cores (default 0)\n\
     \x20 --out <path>         write the merged report JSON here"
        .to_string()
}

fn main() -> ExitCode {
    let mut cores: u16 = 64;
    let mut dir = "stash8".to_string();
    let mut workload = "stencil".to_string();
    let mut ops: usize = 2000;
    let mut seed: u64 = 7;
    let mut shards: usize = 4;
    let mut jobs: usize = 0;
    let mut out: Option<String> = None;

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value\n{}", usage());
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--cores" => cores = take("--cores").parse().unwrap_or(64),
            "--dir" => dir = take("--dir"),
            "--workload" => workload = take("--workload"),
            "--ops" => ops = take("--ops").parse().unwrap_or(2000),
            "--seed" => seed = take("--seed").parse().unwrap_or(7),
            "--shards" => shards = take("--shards").parse().unwrap_or(4).max(1),
            "--jobs" => jobs = take("--jobs").parse().unwrap_or(0),
            "--out" => out = Some(take("--out")),
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    let dir_spec = match dir.as_str() {
        "fullmap" => DirSpec::FullMap,
        "sparse8" => DirSpec::sparse(CoverageRatio::new(1, 8)),
        "stash8" => DirSpec::stash(CoverageRatio::new(1, 8)),
        other => {
            eprintln!("unknown --dir {other}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let wl = match workload.as_str() {
        "dataparallel" => Workload::DataParallel,
        "stencil" => Workload::Stencil,
        "migratory" => Workload::Migratory,
        other => {
            eprintln!("unknown --workload {other}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    let config = SystemConfig::default().with_cores(cores).with_dir(dir_spec);
    let report = run_case_sharded(config, wl, ops, seed, shards, jobs);

    println!(
        "shardrun: {cores} cores, {dir}, {workload}, {ops} ops x {shards} shards -> \
         cycles={} ops={} l1.miss_rate={:.4}",
        report.cycles,
        report.completed_ops,
        report.stat("l1.miss_rate"),
    );
    if let Some(path) = out {
        let json = artifact::report_to_json(&report).render_pretty();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("shardrun: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("shardrun: merged report written to {path}");
    }
    ExitCode::SUCCESS
}
