//! The coverage-guided chaos campaign (E19): multi-fault burst
//! schedules, a witnessed-transition coverage loop against the lint
//! protocol model, and automatic minimization of the first reproducible
//! failure.
//!
//! ```sh
//! # A budgeted campaign against the checked-in protocol model:
//! cargo run --release -p stashdir-harness --bin campaign -- \
//!     --model results/lint/protocol_model.json --rounds 4
//!
//! # Scratch checkout (no model artifact): falls back to the builtin
//! # model checker's reachable sets.
//! cargo run --release -p stashdir-harness --bin campaign -- --ops 400
//! ```
//!
//! The run writes the usual `results/<run>/manifest.json` and per-case
//! artifacts, plus `results/<run>/coverage.json`
//! (`stashdir/chaos-coverage/v1`) and, when a bursty case failed, the
//! minimized reproducer at `results/<run>/cases/<id>.minimized.json`.

use stashdir_harness::runner::{common_usage, parse_one_common_flag, FlagOutcome};
use stashdir_harness::{run_campaign, CampaignConfig, SweepConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> String {
    format!(
        "usage: campaign [options]\n\
         \x20 --rounds <n>         adaptive-round budget after baseline+pairwise (default 4)\n\
         \x20 --plateau <n>        stop after n adaptive rounds with no new coverage (default 2)\n\
         \x20 --model <path>       protocol-model artifact to diff coverage against\n\
         \x20                      (default: builtin model checker)\n{}",
        common_usage()
    )
}

fn main() -> ExitCode {
    // Reuse the sweep flag set for ops/seed/jobs/run/out/etc.
    let mut sweep = SweepConfig::new(Vec::new(), "campaign");
    let mut rounds = 4usize;
    let mut plateau = 2usize;
    let mut model_path: Option<PathBuf> = None;

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--rounds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => rounds = n,
                None => {
                    eprintln!("bad --rounds\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--plateau" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => plateau = n,
                None => {
                    eprintln!("bad --plateau\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--model" => match it.next() {
                Some(v) => model_path = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--model needs a value\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => match parse_one_common_flag(&mut sweep, other, &mut it) {
                Ok(Some(FlagOutcome::Proceed)) => {}
                Ok(Some(FlagOutcome::Exit)) => return ExitCode::SUCCESS,
                Ok(None) => {
                    eprintln!("unknown flag {other}\n{}", usage());
                    return ExitCode::FAILURE;
                }
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
            },
        }
    }

    let mut cfg = CampaignConfig::new(sweep.run.clone());
    cfg.out_root = sweep.out_root.clone();
    cfg.params = sweep.params;
    cfg.rounds = rounds;
    cfg.plateau = plateau;
    cfg.model_path = model_path;
    cfg.options = sweep.options.clone();
    cfg.persist.style = if sweep.compact_artifacts {
        stashdir_harness::artifact::ArtifactStyle::Compact
    } else {
        stashdir_harness::artifact::ArtifactStyle::Pretty
    };

    let outcome = match run_campaign(&cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    for r in &outcome.rounds {
        println!(
            "round {:<12} {:>2} new case(s), +{} pair(s), {}/{} witnessed",
            r.name, r.cases, r.new_pairs, r.witnessed, outcome.reachable
        );
    }
    println!(
        "pairwise gate: {}/{} fault classes caught when composed — {}",
        outcome.classes_caught,
        outcome.classes_total,
        if outcome.pairwise_pass() {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "coverage gate: campaign witnessed {}/{} reachable transitions \
         (single-fault baseline {}) — {}",
        outcome.witnessed,
        outcome.reachable,
        outcome.baseline_witnessed,
        if outcome.improved() { "PASS" } else { "FAIL" }
    );
    match &outcome.minimized {
        Some(m) => println!(
            "minimized: {} reproduces `{}` with {} burst(s): {}\n[saved {}]",
            m.case_id,
            m.signature,
            m.plan.bursts.len(),
            m.plan,
            m.path.display()
        ),
        None => println!("minimized: no bursty failure to minimize"),
    }
    println!("[saved {}]", outcome.artifact_path.display());

    if outcome.failed > 0 || !outcome.pairwise_pass() || !outcome.improved() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
