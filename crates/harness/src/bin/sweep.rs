//! The parallel experiment sweep: runs any subset of the E1–E14 suite —
//! or all of it — in one invocation, deduplicating shared cases across
//! experiments and spreading them over every host core.
//!
//! ```sh
//! # The whole suite, all cores, with a live progress line:
//! cargo run --release -p stashdir-harness --bin sweep -- --all
//!
//! # One experiment, exactly the table/CSV the serial binary produced:
//! cargo run --release -p stashdir-harness --bin sweep -- --plan perf_vs_coverage
//!
//! # Resume an interrupted or partially failed run:
//! cargo run --release -p stashdir-harness --bin sweep -- --all --resume
//! ```
//!
//! Each run writes `results/<run>/manifest.json` (per-case status,
//! duration, config digest, achieved speedup) plus one
//! `results/<run>/cases/<id>.json` report artifact per completed case,
//! alongside the usual `results/e*.csv` tables.

use stashdir_harness::runner::{common_usage, finish_sweep, parse_one_common_flag, FlagOutcome};
use stashdir_harness::{registry, SweepConfig};
use std::process::ExitCode;

fn usage() -> String {
    format!(
        "usage: sweep [--plan <k1,k2,...> | --all] [options]\n\
         \x20 --plan <keys>        comma-separated experiment keys (see --list)\n\
         \x20 --all                the full E1-E14 suite (default)\n\
         \x20 --list               list experiment keys and exit\n{}",
        common_usage()
    )
}

fn main() -> ExitCode {
    let all_keys: Vec<String> = registry().iter().map(|e| e.key.to_string()).collect();
    let mut cfg = SweepConfig::new(all_keys.clone(), "sweep");

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--plan" => {
                let Some(v) = it.next() else {
                    eprintln!("--plan needs a value\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg.experiments = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--all" => cfg.experiments = all_keys.clone(),
            "--list" => {
                for e in registry() {
                    println!("{:<20} {:>4}  {}", e.key, e.code, e.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => match parse_one_common_flag(&mut cfg, other, &mut it) {
                Ok(Some(FlagOutcome::Proceed)) => {}
                Ok(Some(FlagOutcome::Exit)) => return ExitCode::SUCCESS,
                Ok(None) => {
                    eprintln!("unknown flag {other}\n{}", usage());
                    return ExitCode::FAILURE;
                }
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
            },
        }
    }

    finish_sweep(&cfg)
}
