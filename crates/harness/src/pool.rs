//! The parallel case executor: a work-stealing worker pool on
//! `std::thread` with per-case panic isolation and fail-fast
//! cancellation.
//!
//! Each worker owns a deque seeded round-robin with case indices; when a
//! worker drains its own deque it steals from the back of its siblings',
//! so long-running cases (big core counts, slow workloads) don't strand
//! idle workers behind a static partition. A case that panics — a
//! coherence violation tripping `assert_clean`, a bug in a directory
//! model — is caught on the worker, recorded as a [`CaseStatus::Failed`]
//! outcome, and the rest of the sweep continues (or is cancelled, with
//! `fail_fast`).

use crate::plan::CaseSpec;
use crate::progress::Progress;
use stashdir::{Machine, SimReport};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};

/// Thread-name prefix for pool workers; the installed panic hook mutes
/// default panic output for these threads (their panics are captured and
/// reported as case failures instead).
const WORKER_NAME_PREFIX: &str = "stashdir-worker-";

/// Options controlling one pool invocation.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker threads; `0` = available parallelism.
    pub jobs: usize,
    /// Cancel remaining cases after the first failure.
    pub fail_fast: bool,
    /// Test hook: panic inside any case whose id contains this substring
    /// (exercises the panic-isolation path end to end).
    pub inject_panic: Option<String>,
    /// Print a live progress line to stderr.
    pub progress: bool,
}

impl RunOptions {
    /// The worker count this invocation will actually use.
    pub fn resolved_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Terminal state of one case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseStatus {
    /// Ran to completion with a clean report.
    Completed,
    /// Panicked (coherence violation, model bug, injected fault).
    Failed,
    /// Not run: cancelled by fail-fast, or satisfied by a resume artifact.
    Skipped,
}

impl CaseStatus {
    /// The manifest string for this status.
    pub fn as_str(self) -> &'static str {
        match self {
            CaseStatus::Completed => "completed",
            CaseStatus::Failed => "failed",
            CaseStatus::Skipped => "skipped",
        }
    }

    /// Parses a manifest status string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "completed" => Some(CaseStatus::Completed),
            "failed" => Some(CaseStatus::Failed),
            "skipped" => Some(CaseStatus::Skipped),
            _ => None,
        }
    }
}

/// The result of attempting one case.
#[derive(Debug)]
pub struct CaseOutcome {
    /// The case that ran.
    pub spec: CaseSpec,
    /// Terminal status.
    pub status: CaseStatus,
    /// Wall-clock time spent simulating (zero for skipped cases).
    pub duration: Duration,
    /// The report, when completed.
    pub report: Option<SimReport>,
    /// The captured panic message, when failed.
    pub error: Option<String>,
}

/// Installs (once, process-wide) a panic hook that stays silent for pool
/// worker threads — their panics are captured and surfaced as case
/// failures — and defers to the previous hook for everyone else.
fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let on_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_NAME_PREFIX));
            if !on_worker {
                previous(info);
            }
        }));
    });
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs one case, catching panics.
fn attempt(
    spec: &CaseSpec,
    inject_panic: Option<&str>,
) -> (CaseStatus, Option<SimReport>, Option<String>) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        if let Some(needle) = inject_panic {
            if spec.id().contains(needle) {
                panic!("injected fault for case {}", spec.id());
            }
        }
        let traces = spec
            .workload
            .generate(spec.config.cores, spec.ops, spec.seed);
        let report = Machine::new(spec.config.clone()).run(traces);
        report.assert_clean();
        report
    }));
    match result {
        Ok(report) => (CaseStatus::Completed, Some(report), None),
        Err(payload) => (CaseStatus::Failed, None, Some(panic_message(payload))),
    }
}

/// Runs `specs` on a work-stealing pool, returning one outcome per spec
/// in input order.
///
/// Guarantees:
///
/// * Every spec gets exactly one outcome; a panicking case yields
///   [`CaseStatus::Failed`] with the captured message, never a dead pool.
/// * With `fail_fast`, cases not yet started when the first failure lands
///   come back as [`CaseStatus::Skipped`].
/// * Outcomes carry the same reports a serial loop would produce — the
///   simulator is deterministic and cases share nothing.
pub fn run_cases(specs: &[CaseSpec], opts: &RunOptions) -> Vec<CaseOutcome> {
    install_quiet_hook();
    let jobs = opts.resolved_jobs().min(specs.len()).max(1);
    let cancel = AtomicBool::new(false);
    // One deque per worker, seeded round-robin.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| Mutex::new((w..specs.len()).step_by(jobs).collect()))
        .collect();
    let (tx, rx) = mpsc::channel::<(
        usize,
        CaseStatus,
        Option<SimReport>,
        Option<String>,
        Duration,
    )>();

    let mut progress = opts.progress.then(|| Progress::new(specs.len(), jobs));

    let mut slots: Vec<Option<CaseOutcome>> =
        std::iter::repeat_with(|| None).take(specs.len()).collect();

    std::thread::scope(|scope| {
        for worker in 0..jobs {
            let tx = tx.clone();
            let queues = &queues;
            let cancel = &cancel;
            let inject = opts.inject_panic.clone();
            let fail_fast = opts.fail_fast;
            std::thread::Builder::new()
                .name(format!("{WORKER_NAME_PREFIX}{worker}"))
                .spawn_scoped(scope, move || {
                    loop {
                        // Own queue first (front), then steal (back).
                        let mut next = queues[worker].lock().expect("queue poisoned").pop_front();
                        if next.is_none() {
                            for victim in 1..queues.len() {
                                let v = (worker + victim) % queues.len();
                                next = queues[v].lock().expect("queue poisoned").pop_back();
                                if next.is_some() {
                                    break;
                                }
                            }
                        }
                        let Some(index) = next else { break };
                        if cancel.load(Ordering::Relaxed) {
                            let _ = tx.send((
                                index,
                                CaseStatus::Skipped,
                                None,
                                Some("cancelled by fail-fast".into()),
                                Duration::ZERO,
                            ));
                            continue;
                        }
                        let start = Instant::now();
                        let (status, report, error) = attempt(&specs[index], inject.as_deref());
                        if status == CaseStatus::Failed && fail_fast {
                            cancel.store(true, Ordering::Relaxed);
                        }
                        let _ = tx.send((index, status, report, error, start.elapsed()));
                    }
                })
                .expect("spawn worker");
        }
        drop(tx);

        for (index, status, report, error, duration) in rx {
            if let Some(p) = progress.as_mut() {
                p.case_done(&specs[index].id(), status, duration);
            }
            slots[index] = Some(CaseOutcome {
                spec: specs[index].clone(),
                status,
                duration,
                report,
                error,
            });
        }
    });
    if let Some(p) = progress.as_mut() {
        p.finish();
    }

    slots
        .into_iter()
        .map(|s| s.expect("every case produces exactly one outcome"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stashdir::{CoverageRatio, DirSpec, SystemConfig, Workload};

    fn small_specs(n: usize) -> Vec<CaseSpec> {
        (0..n)
            .map(|i| {
                CaseSpec::new(
                    SystemConfig::default()
                        .with_dir(DirSpec::stash(CoverageRatio::new(1, 8)))
                        .with_cores(4),
                    Workload::Uniform,
                    50,
                    i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn outcomes_come_back_in_input_order() {
        let specs = small_specs(5);
        let outcomes = run_cases(
            &specs,
            &RunOptions {
                jobs: 3,
                ..Default::default()
            },
        );
        assert_eq!(outcomes.len(), 5);
        for (spec, outcome) in specs.iter().zip(&outcomes) {
            assert_eq!(spec.id(), outcome.spec.id());
            assert_eq!(outcome.status, CaseStatus::Completed);
            assert!(outcome.report.is_some());
        }
    }

    #[test]
    fn injected_panic_is_isolated() {
        let specs = small_specs(4);
        let needle = specs[2].id();
        let outcomes = run_cases(
            &specs,
            &RunOptions {
                jobs: 2,
                inject_panic: Some(needle),
                ..Default::default()
            },
        );
        assert_eq!(outcomes[2].status, CaseStatus::Failed);
        assert!(outcomes[2]
            .error
            .as_deref()
            .unwrap()
            .contains("injected fault"));
        for (i, o) in outcomes.iter().enumerate() {
            if i != 2 {
                assert_eq!(o.status, CaseStatus::Completed, "case {i} must survive");
            }
        }
    }

    #[test]
    fn fail_fast_skips_unstarted_cases() {
        let specs = small_specs(30);
        let needle = specs[0].id();
        let outcomes = run_cases(
            &specs,
            &RunOptions {
                jobs: 1,
                fail_fast: true,
                inject_panic: Some(needle),
                ..Default::default()
            },
        );
        assert_eq!(outcomes[0].status, CaseStatus::Failed);
        let skipped = outcomes
            .iter()
            .filter(|o| o.status == CaseStatus::Skipped)
            .count();
        assert_eq!(skipped, 29, "single worker cancels everything after case 0");
    }

    #[test]
    fn status_strings_round_trip() {
        for s in [
            CaseStatus::Completed,
            CaseStatus::Failed,
            CaseStatus::Skipped,
        ] {
            assert_eq!(CaseStatus::parse(s.as_str()), Some(s));
        }
        assert_eq!(CaseStatus::parse("bogus"), None);
    }
}
