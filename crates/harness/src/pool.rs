//! The parallel case executor: a work-stealing worker pool on
//! `std::thread` with per-case panic isolation and fail-fast
//! cancellation.
//!
//! Each worker owns a deque seeded round-robin with case indices; when a
//! worker drains its own deque it steals from the back of its siblings',
//! so long-running cases (big core counts, slow workloads) don't strand
//! idle workers behind a static partition. A case that panics — a
//! coherence violation tripping `assert_clean`, a bug in a directory
//! model — is caught on the worker, recorded as a [`CaseStatus::Failed`]
//! outcome, and the rest of the sweep continues (or is cancelled, with
//! `fail_fast`).

use crate::plan::CaseSpec;
use crate::progress::Progress;
use stashdir::{Machine, SimReport};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};

/// Thread-name prefix for pool workers; the installed panic hook mutes
/// default panic output for these threads (their panics are captured and
/// reported as case failures instead).
const WORKER_NAME_PREFIX: &str = "stashdir-worker-";

/// Options controlling one pool invocation.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker threads; `0` = available parallelism.
    pub jobs: usize,
    /// Cancel remaining cases after the first failure.
    pub fail_fast: bool,
    /// Per-case wall-clock budget. When set, each case runs on its own
    /// thread; a case that outlives the budget is recorded
    /// [`CaseStatus::TimedOut`] and abandoned (the worker moves on).
    pub timeout: Option<Duration>,
    /// Extra attempts for a failed or timed-out case (flaky-failure
    /// discipline; `0` = single attempt).
    pub retries: u32,
    /// Base backoff between attempts; attempt `n` sleeps `backoff * n`
    /// before re-running.
    pub backoff: Duration,
    /// Test hook: panic inside any case whose id contains this substring
    /// (exercises the panic-isolation path end to end).
    pub inject_panic: Option<String>,
    /// Test hook: panic on the *first* attempt only of any case whose id
    /// contains this substring (exercises the retry path end to end).
    pub inject_flaky: Option<String>,
    /// Test hook: hang forever inside any case whose id contains this
    /// substring (exercises the timeout watchdog end to end; only
    /// meaningful with `timeout` set).
    pub inject_hang: Option<String>,
    /// Print a live progress line to stderr.
    pub progress: bool,
}

impl RunOptions {
    /// The worker count this invocation will actually use.
    pub fn resolved_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Terminal state of one case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseStatus {
    /// Ran to completion with a clean report.
    Completed,
    /// Panicked (coherence violation, model bug, injected fault).
    Failed,
    /// Outlived the per-case wall-clock budget and was abandoned.
    TimedOut,
    /// Not run: cancelled by fail-fast, or satisfied by a resume artifact.
    Skipped,
}

impl CaseStatus {
    /// The manifest string for this status.
    pub fn as_str(self) -> &'static str {
        match self {
            CaseStatus::Completed => "completed",
            CaseStatus::Failed => "failed",
            CaseStatus::TimedOut => "timed_out",
            CaseStatus::Skipped => "skipped",
        }
    }

    /// Parses a manifest status string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "completed" => Some(CaseStatus::Completed),
            "failed" => Some(CaseStatus::Failed),
            "timed_out" => Some(CaseStatus::TimedOut),
            "skipped" => Some(CaseStatus::Skipped),
            _ => None,
        }
    }

    /// `true` for the statuses the retry loop re-runs.
    pub fn retryable(self) -> bool {
        matches!(self, CaseStatus::Failed | CaseStatus::TimedOut)
    }
}

/// The result of attempting one case.
#[derive(Debug)]
pub struct CaseOutcome {
    /// The case that ran.
    pub spec: CaseSpec,
    /// Terminal status.
    pub status: CaseStatus,
    /// Wall-clock time spent simulating (zero for skipped cases).
    pub duration: Duration,
    /// Attempts actually made (`0` for skipped cases, `1` normally,
    /// more when the retry loop re-ran a flaky failure).
    pub attempts: u32,
    /// The report, when completed.
    pub report: Option<SimReport>,
    /// The captured panic message, when failed.
    pub error: Option<String>,
}

/// Installs (once, process-wide) a panic hook that stays silent for pool
/// worker threads — their panics are captured and surfaced as case
/// failures — and defers to the previous hook for everyone else.
fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let on_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_NAME_PREFIX));
            if !on_worker {
                previous(info);
            }
        }));
    });
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Fault hooks threaded into each attempt (test-only behaviors).
#[derive(Debug, Clone, Default)]
struct Hooks {
    panic: Option<String>,
    flaky: Option<String>,
    hang: Option<String>,
}

impl Hooks {
    fn from_options(opts: &RunOptions) -> Hooks {
        Hooks {
            panic: opts.inject_panic.clone(),
            flaky: opts.inject_flaky.clone(),
            hang: opts.inject_hang.clone(),
        }
    }

    fn matches(needle: &Option<String>, id: &str) -> bool {
        needle.as_deref().is_some_and(|n| id.contains(n))
    }
}

/// Runs one case, catching panics. `attempt_no` is 1-based.
fn attempt(
    spec: &CaseSpec,
    hooks: &Hooks,
    attempt_no: u32,
) -> (CaseStatus, Option<SimReport>, Option<String>) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let id = spec.id();
        if Hooks::matches(&hooks.panic, &id) {
            panic!("injected fault for case {id}");
        }
        if attempt_no == 1 && Hooks::matches(&hooks.flaky, &id) {
            panic!("injected flaky fault for case {id} (attempt 1)");
        }
        if Hooks::matches(&hooks.hang, &id) {
            // Never returns; the timeout watchdog abandons this thread.
            loop {
                std::thread::sleep(Duration::from_millis(25));
            }
        }
        let traces = spec
            .workload
            .generate(spec.config.cores, spec.ops, spec.seed);
        let mut machine = Machine::new(spec.config.clone());
        if let Some(fault) = spec.fault.clone() {
            machine = machine.with_faults(fault);
        }
        let report = machine.run(traces);
        if spec.fault.is_none() {
            report.assert_clean();
        }
        report
    }));
    match result {
        Ok(report) => (CaseStatus::Completed, Some(report), None),
        Err(payload) => (CaseStatus::Failed, None, Some(panic_message(payload))),
    }
}

/// One attempt's resolution at the worker, including the two ways an
/// attempt ends without a verdict from the simulator itself.
enum AttemptEnd {
    Done(CaseStatus, Option<Box<SimReport>>, Option<String>),
    /// Fail-fast fired while the case was still running; the case thread
    /// is abandoned and the case recorded as skipped.
    Cancelled,
}

/// Runs one attempt, optionally under the wall-clock watchdog.
///
/// Without a timeout the attempt runs inline on the worker. With one,
/// the case runs on a dedicated (detached) thread while the worker polls
/// for the result in short slices, so it can both enforce the deadline
/// and notice a fail-fast cancellation promptly; on either, the case
/// thread is abandoned — it holds only clones and its late result goes
/// to a closed channel.
fn run_attempt(
    spec: &CaseSpec,
    hooks: &Hooks,
    attempt_no: u32,
    timeout: Option<Duration>,
    cancel: &AtomicBool,
    fail_fast: bool,
) -> AttemptEnd {
    let Some(budget) = timeout else {
        let (s, r, e) = attempt(spec, hooks, attempt_no);
        return AttemptEnd::Done(s, r.map(Box::new), e);
    };
    let (tx, rx) = mpsc::channel();
    let spec_owned = spec.clone();
    let hooks_owned = hooks.clone();
    std::thread::Builder::new()
        .name(format!("{WORKER_NAME_PREFIX}case"))
        .spawn(move || {
            let _ = tx.send(attempt(&spec_owned, &hooks_owned, attempt_no));
        })
        .expect("spawn case thread");
    let deadline = Instant::now() + budget;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        let slice = remaining.min(Duration::from_millis(25));
        match rx.recv_timeout(slice.max(Duration::from_millis(1))) {
            Ok((s, r, e)) => return AttemptEnd::Done(s, r.map(Box::new), e),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if fail_fast && cancel.load(Ordering::Relaxed) {
                    return AttemptEnd::Cancelled;
                }
                if Instant::now() >= deadline {
                    return AttemptEnd::Done(
                        CaseStatus::TimedOut,
                        None,
                        Some(format!("timed out after {budget:?}")),
                    );
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // The case thread died without sending (should be
                // impossible: attempt() catches panics). Treat as failed.
                return AttemptEnd::Done(
                    CaseStatus::Failed,
                    None,
                    Some("case thread died without a result".into()),
                );
            }
        }
    }
}

/// Runs one case under the retry loop: attempts until a non-retryable
/// status, the attempt budget is exhausted, or fail-fast cancels.
/// Returns the final `(status, report, error, attempts)`.
fn run_with_retries(
    spec: &CaseSpec,
    hooks: &Hooks,
    opts_timeout: Option<Duration>,
    retries: u32,
    backoff: Duration,
    cancel: &AtomicBool,
    fail_fast: bool,
) -> (CaseStatus, Option<SimReport>, Option<String>, u32) {
    let max_attempts = retries.saturating_add(1);
    let mut attempt_no = 0u32;
    loop {
        attempt_no += 1;
        match run_attempt(spec, hooks, attempt_no, opts_timeout, cancel, fail_fast) {
            AttemptEnd::Cancelled => {
                return (
                    CaseStatus::Skipped,
                    None,
                    Some("cancelled by fail-fast".into()),
                    attempt_no,
                );
            }
            AttemptEnd::Done(status, report, error) => {
                let may_retry = status.retryable()
                    && attempt_no < max_attempts
                    && !cancel.load(Ordering::Relaxed);
                if !may_retry {
                    return (status, report.map(|r| *r), error, attempt_no);
                }
                std::thread::sleep(backoff.saturating_mul(attempt_no));
            }
        }
    }
}

/// Runs `specs` on a work-stealing pool, returning one outcome per spec
/// in input order.
///
/// Guarantees:
///
/// * Every spec gets exactly one outcome; a panicking case yields
///   [`CaseStatus::Failed`] with the captured message, never a dead pool.
/// * With `fail_fast`, cases not yet started when the first failure lands
///   come back as [`CaseStatus::Skipped`].
/// * Outcomes carry the same reports a serial loop would produce — the
///   simulator is deterministic and cases share nothing.
pub fn run_cases(specs: &[CaseSpec], opts: &RunOptions) -> Vec<CaseOutcome> {
    install_quiet_hook();
    let jobs = opts.resolved_jobs().min(specs.len()).max(1);
    let cancel = AtomicBool::new(false);
    // One deque per worker, seeded round-robin.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| Mutex::new((w..specs.len()).step_by(jobs).collect()))
        .collect();
    let (tx, rx) = mpsc::channel::<(
        usize,
        CaseStatus,
        Option<SimReport>,
        Option<String>,
        Duration,
        u32,
    )>();

    let mut progress = opts.progress.then(|| Progress::new(specs.len(), jobs));

    let mut slots: Vec<Option<CaseOutcome>> =
        std::iter::repeat_with(|| None).take(specs.len()).collect();

    std::thread::scope(|scope| {
        for worker in 0..jobs {
            let tx = tx.clone();
            let queues = &queues;
            let cancel = &cancel;
            let hooks = Hooks::from_options(opts);
            let fail_fast = opts.fail_fast;
            let timeout = opts.timeout;
            let retries = opts.retries;
            let backoff = opts.backoff;
            std::thread::Builder::new()
                .name(format!("{WORKER_NAME_PREFIX}{worker}"))
                .spawn_scoped(scope, move || {
                    loop {
                        // Own queue first (front), then steal (back).
                        let mut next = queues[worker].lock().expect("queue poisoned").pop_front();
                        if next.is_none() {
                            for victim in 1..queues.len() {
                                let v = (worker + victim) % queues.len();
                                next = queues[v].lock().expect("queue poisoned").pop_back();
                                if next.is_some() {
                                    break;
                                }
                            }
                        }
                        let Some(index) = next else { break };
                        if cancel.load(Ordering::Relaxed) {
                            let _ = tx.send((
                                index,
                                CaseStatus::Skipped,
                                None,
                                Some("cancelled by fail-fast".into()),
                                Duration::ZERO,
                                0,
                            ));
                            continue;
                        }
                        let start = Instant::now();
                        let (status, report, error, attempts) = run_with_retries(
                            &specs[index],
                            &hooks,
                            timeout,
                            retries,
                            backoff,
                            cancel,
                            fail_fast,
                        );
                        if status.retryable() && fail_fast {
                            cancel.store(true, Ordering::Relaxed);
                        }
                        let _ = tx.send((index, status, report, error, start.elapsed(), attempts));
                    }
                })
                .expect("spawn worker");
        }
        drop(tx);

        for (index, status, report, error, duration, attempts) in rx {
            if let Some(p) = progress.as_mut() {
                p.case_done(&specs[index].id(), status, duration);
            }
            slots[index] = Some(CaseOutcome {
                spec: specs[index].clone(),
                status,
                duration,
                attempts,
                report,
                error,
            });
        }
    });
    if let Some(p) = progress.as_mut() {
        p.finish();
    }

    slots
        .into_iter()
        .map(|s| s.expect("every case produces exactly one outcome"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stashdir::{CoverageRatio, DirSpec, SystemConfig, Workload};

    fn small_specs(n: usize) -> Vec<CaseSpec> {
        (0..n)
            .map(|i| {
                CaseSpec::new(
                    SystemConfig::default()
                        .with_dir(DirSpec::stash(CoverageRatio::new(1, 8)))
                        .with_cores(4),
                    Workload::Uniform,
                    50,
                    i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn outcomes_come_back_in_input_order() {
        let specs = small_specs(5);
        let outcomes = run_cases(
            &specs,
            &RunOptions {
                jobs: 3,
                ..Default::default()
            },
        );
        assert_eq!(outcomes.len(), 5);
        for (spec, outcome) in specs.iter().zip(&outcomes) {
            assert_eq!(spec.id(), outcome.spec.id());
            assert_eq!(outcome.status, CaseStatus::Completed);
            assert!(outcome.report.is_some());
        }
    }

    #[test]
    fn injected_panic_is_isolated() {
        let specs = small_specs(4);
        let needle = specs[2].id();
        let outcomes = run_cases(
            &specs,
            &RunOptions {
                jobs: 2,
                inject_panic: Some(needle),
                ..Default::default()
            },
        );
        assert_eq!(outcomes[2].status, CaseStatus::Failed);
        assert!(outcomes[2]
            .error
            .as_deref()
            .unwrap()
            .contains("injected fault"));
        for (i, o) in outcomes.iter().enumerate() {
            if i != 2 {
                assert_eq!(o.status, CaseStatus::Completed, "case {i} must survive");
            }
        }
    }

    #[test]
    fn fail_fast_skips_unstarted_cases() {
        let specs = small_specs(30);
        let needle = specs[0].id();
        let outcomes = run_cases(
            &specs,
            &RunOptions {
                jobs: 1,
                fail_fast: true,
                inject_panic: Some(needle),
                ..Default::default()
            },
        );
        assert_eq!(outcomes[0].status, CaseStatus::Failed);
        let skipped = outcomes
            .iter()
            .filter(|o| o.status == CaseStatus::Skipped)
            .count();
        assert_eq!(skipped, 29, "single worker cancels everything after case 0");
    }

    #[test]
    fn status_strings_round_trip() {
        for s in [
            CaseStatus::Completed,
            CaseStatus::Failed,
            CaseStatus::TimedOut,
            CaseStatus::Skipped,
        ] {
            assert_eq!(CaseStatus::parse(s.as_str()), Some(s));
        }
        assert_eq!(CaseStatus::parse("bogus"), None);
    }

    #[test]
    fn timed_out_case_does_not_strand_its_worker() {
        let specs = small_specs(4);
        let needle = specs[1].id();
        // A single worker must record the hung case as timed out and
        // still finish every other case afterwards.
        let outcomes = run_cases(
            &specs,
            &RunOptions {
                jobs: 1,
                timeout: Some(Duration::from_millis(300)),
                inject_hang: Some(needle),
                ..Default::default()
            },
        );
        assert_eq!(outcomes[1].status, CaseStatus::TimedOut);
        assert!(outcomes[1].error.as_deref().unwrap().contains("timed out"));
        for (i, o) in outcomes.iter().enumerate() {
            if i != 1 {
                assert_eq!(o.status, CaseStatus::Completed, "case {i} must still run");
            }
        }
    }

    #[test]
    fn flaky_case_is_retried_deterministically() {
        let specs = small_specs(3);
        let needle = specs[0].id();
        let outcomes = run_cases(
            &specs,
            &RunOptions {
                jobs: 2,
                retries: 2,
                backoff: Duration::from_millis(1),
                inject_flaky: Some(needle),
                ..Default::default()
            },
        );
        // The flaky hook fails attempt 1 only; the retry must complete.
        assert_eq!(outcomes[0].status, CaseStatus::Completed);
        assert_eq!(outcomes[0].attempts, 2);
        assert!(outcomes[0].report.is_some());
        for o in &outcomes[1..] {
            assert_eq!(o.status, CaseStatus::Completed);
            assert_eq!(o.attempts, 1);
        }
    }

    #[test]
    fn persistent_failure_exhausts_the_retry_budget() {
        let specs = small_specs(1);
        let needle = specs[0].id();
        let outcomes = run_cases(
            &specs,
            &RunOptions {
                jobs: 1,
                retries: 2,
                backoff: Duration::from_millis(1),
                inject_panic: Some(needle),
                ..Default::default()
            },
        );
        assert_eq!(outcomes[0].status, CaseStatus::Failed);
        assert_eq!(outcomes[0].attempts, 3, "1 attempt + 2 retries");
    }

    #[test]
    fn fail_fast_cancels_promptly_despite_hung_sibling() {
        let specs = small_specs(6);
        let hang = specs[0].id();
        let boom = specs[1].id();
        // Worker A hangs on case 0 under a generous timeout; worker B
        // fails case 1 and trips fail-fast. The pool must come back well
        // before case 0's budget expires, with the hung case abandoned.
        let start = Instant::now();
        let outcomes = run_cases(
            &specs,
            &RunOptions {
                jobs: 2,
                fail_fast: true,
                timeout: Some(Duration::from_secs(30)),
                inject_hang: Some(hang),
                inject_panic: Some(boom),
                ..Default::default()
            },
        );
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "fail-fast must not wait out the hung case's timeout"
        );
        assert_eq!(outcomes[1].status, CaseStatus::Failed);
        assert_eq!(outcomes[0].status, CaseStatus::Skipped);
        assert!(outcomes[0]
            .error
            .as_deref()
            .unwrap()
            .contains("cancelled by fail-fast"));
    }

    #[test]
    fn timeout_leaves_healthy_cases_untouched() {
        let specs = small_specs(3);
        let with_timeout = run_cases(
            &specs,
            &RunOptions {
                jobs: 2,
                timeout: Some(Duration::from_secs(60)),
                ..Default::default()
            },
        );
        let plain = run_cases(
            &specs,
            &RunOptions {
                jobs: 2,
                ..Default::default()
            },
        );
        for (a, b) in with_timeout.iter().zip(&plain) {
            assert_eq!(a.status, CaseStatus::Completed);
            let (ra, rb) = (a.report.as_ref().unwrap(), b.report.as_ref().unwrap());
            assert_eq!(ra.cycles, rb.cycles);
            assert_eq!(ra.sink, rb.sink);
        }
    }
}
