//! Run manifests: the durable record of a sweep, written to
//! `results/<run>/manifest.json`.
//!
//! A manifest records what was planned (experiments, params, harness
//! version), what happened (per-case status, duration, config digest,
//! error), and how fast (wall-clock vs summed case time = achieved
//! speedup). On `--resume`, cases whose manifest record says `completed`
//! *and* whose report artifact is present and parseable are skipped and
//! their reports loaded from disk; everything else re-runs.

use crate::digest;
use crate::pool::{CaseOutcome, CaseStatus};
use stashdir::common::json::Value;
use std::io;
use std::path::Path;
use std::time::Duration;

/// One case's record in the manifest.
#[derive(Debug, Clone)]
pub struct CaseRecord {
    /// The case identity (also the artifact file stem).
    pub id: String,
    /// Full 64-bit config digest (resume safety: an id collision with a
    /// different config re-runs).
    pub digest: String,
    /// Terminal status.
    pub status: CaseStatus,
    /// Simulation wall time in milliseconds.
    pub duration_ms: u64,
    /// Attempts made this invocation (`0` = skipped or resumed; more
    /// than 1 means the retry loop re-ran a flaky failure).
    pub attempts: u32,
    /// Captured error for failed cases.
    pub error: Option<String>,
}

/// The durable record of one sweep invocation.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Run name (the `results/<run>/` directory stem).
    pub run: String,
    /// Harness crate version that produced the run.
    pub harness_version: String,
    /// Experiment keys included in the run.
    pub experiments: Vec<String>,
    /// Ops per core the run used.
    pub ops: usize,
    /// Base workload seed the run used.
    pub seed: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// End-to-end wall time in milliseconds.
    pub wall_ms: u64,
    /// Summed per-case simulation time in milliseconds (what a serial
    /// run would have cost).
    pub total_case_ms: u64,
    /// Achieved parallel speedup: case time executed *this invocation*
    /// divided by `wall_ms` (resumed cases' recorded durations count in
    /// `total_case_ms` but not here).
    pub speedup: f64,
    /// Per-case records, in plan order.
    pub cases: Vec<CaseRecord>,
}

impl RunManifest {
    /// Builds a manifest from pool outcomes.
    pub fn from_outcomes(
        run: impl Into<String>,
        experiments: Vec<String>,
        ops: usize,
        seed: u64,
        jobs: usize,
        wall: Duration,
        outcomes: &[CaseOutcome],
    ) -> Self {
        let total_case_ms: u64 = outcomes.iter().map(|o| o.duration.as_millis() as u64).sum();
        let wall_ms = wall.as_millis() as u64;
        RunManifest {
            run: run.into(),
            harness_version: env!("CARGO_PKG_VERSION").to_string(),
            experiments,
            ops,
            seed,
            jobs,
            wall_ms,
            total_case_ms,
            speedup: total_case_ms as f64 / wall_ms.max(1) as f64,
            cases: outcomes
                .iter()
                .map(|o| CaseRecord {
                    id: o.spec.id(),
                    digest: digest::hex(o.spec.digest()),
                    status: o.status,
                    duration_ms: o.duration.as_millis() as u64,
                    attempts: o.attempts,
                    error: o.error.clone(),
                })
                .collect(),
        }
    }

    /// Serializes to the manifest JSON tree.
    pub fn to_json(&self) -> Value {
        let cases = self
            .cases
            .iter()
            .map(|c| {
                let mut fields = vec![
                    ("id".to_string(), Value::from(c.id.as_str())),
                    ("digest".to_string(), Value::from(c.digest.as_str())),
                    ("status".to_string(), Value::from(c.status.as_str())),
                    ("duration_ms".to_string(), Value::from(c.duration_ms)),
                    ("attempts".to_string(), Value::from(c.attempts as u64)),
                ];
                if let Some(e) = &c.error {
                    fields.push(("error".to_string(), Value::from(e.as_str())));
                }
                Value::Object(fields)
            })
            .collect();
        Value::object(vec![
            ("run".into(), Value::from(self.run.as_str())),
            (
                "harness_version".into(),
                Value::from(self.harness_version.as_str()),
            ),
            (
                "experiments".into(),
                Value::array(
                    self.experiments
                        .iter()
                        .map(|e| Value::from(e.as_str()))
                        .collect(),
                ),
            ),
            ("ops".into(), Value::from(self.ops)),
            ("seed".into(), Value::from(self.seed)),
            ("jobs".into(), Value::from(self.jobs)),
            ("wall_ms".into(), Value::from(self.wall_ms)),
            ("total_case_ms".into(), Value::from(self.total_case_ms)),
            ("speedup".into(), Value::Number(self.speedup)),
            ("cases".into(), Value::Array(cases)),
        ])
    }

    /// Rebuilds a manifest from its JSON tree.
    pub fn from_json(value: &Value) -> Option<Self> {
        let cases = value
            .get("cases")?
            .as_array()?
            .iter()
            .map(|c| {
                Some(CaseRecord {
                    id: c.get("id")?.as_str()?.to_string(),
                    digest: c.get("digest")?.as_str()?.to_string(),
                    status: CaseStatus::parse(c.get("status")?.as_str()?)?,
                    duration_ms: c.get("duration_ms")?.as_u64()?,
                    // Absent in manifests written before attempts were
                    // recorded; one attempt is the only possibility there.
                    attempts: c.get("attempts").and_then(Value::as_u64).unwrap_or(1) as u32,
                    error: c.get("error").and_then(Value::as_str).map(str::to_string),
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(RunManifest {
            run: value.get("run")?.as_str()?.to_string(),
            harness_version: value.get("harness_version")?.as_str()?.to_string(),
            experiments: value
                .get("experiments")?
                .as_array()?
                .iter()
                .map(|e| e.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
            ops: value.get("ops")?.as_u64()? as usize,
            seed: value.get("seed")?.as_u64()?,
            jobs: value.get("jobs")?.as_u64()? as usize,
            wall_ms: value.get("wall_ms")?.as_u64()?,
            total_case_ms: value.get("total_case_ms")?.as_u64()?,
            speedup: value.get("speedup")?.as_f64()?,
            cases,
        })
    }

    /// The manifest path inside a run directory.
    pub fn path(run_dir: &Path) -> std::path::PathBuf {
        run_dir.join("manifest.json")
    }

    /// Writes the manifest (pretty-printed) into `run_dir`, atomically:
    /// a crash mid-write can never leave a truncated `manifest.json`.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn save(&self, run_dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(run_dir)?;
        crate::fsio::write_atomic(&Self::path(run_dir), &self.to_json().render_pretty())
    }

    /// Loads the manifest from `run_dir`, or `None` when absent or
    /// unreadable. A present-but-corrupt manifest (truncated by a crash
    /// predating atomic writes, or damaged on disk) is quarantined as
    /// `manifest.json.corrupt` so the evidence survives — the sweep just
    /// re-runs everything.
    pub fn load(run_dir: &Path) -> Option<Self> {
        let path = Self::path(run_dir);
        let text = std::fs::read_to_string(&path).ok()?;
        let parsed = Value::parse(&text).ok().and_then(|v| Self::from_json(&v));
        if parsed.is_none() {
            let _ = crate::fsio::quarantine(&path);
        }
        parsed
    }

    /// The record for a case id, if present.
    pub fn record(&self, id: &str) -> Option<&CaseRecord> {
        self.cases.iter().find(|c| c.id == id)
    }

    /// `true` when `id` completed in this manifest with the given digest
    /// (the resume-skip predicate; artifact presence is checked
    /// separately).
    pub fn completed(&self, id: &str, digest_hex: &str) -> bool {
        self.record(id)
            .is_some_and(|c| c.status == CaseStatus::Completed && c.digest == digest_hex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CaseSpec;
    use stashdir::{SystemConfig, Workload};

    fn outcome(seed: u64, status: CaseStatus) -> CaseOutcome {
        CaseOutcome {
            spec: CaseSpec::new(SystemConfig::default(), Workload::Uniform, 10, seed),
            status,
            duration: Duration::from_millis(40),
            attempts: 1,
            report: None,
            error: (status == CaseStatus::Failed).then(|| "boom".to_string()),
        }
    }

    #[test]
    fn manifest_round_trips() {
        let outcomes = vec![
            outcome(1, CaseStatus::Completed),
            outcome(2, CaseStatus::Failed),
        ];
        let m = RunManifest::from_outcomes(
            "test",
            vec!["perf_vs_coverage".into()],
            10,
            7,
            2,
            Duration::from_millis(50),
            &outcomes,
        );
        assert!((m.speedup - 80.0 / 50.0).abs() < 1e-9);
        let back = RunManifest::from_json(&Value::parse(&m.to_json().render_pretty()).unwrap())
            .expect("round trip");
        assert_eq!(back.cases.len(), 2);
        assert_eq!(back.cases[1].status, CaseStatus::Failed);
        assert_eq!(back.cases[1].error.as_deref(), Some("boom"));
        assert_eq!(back.experiments, vec!["perf_vs_coverage".to_string()]);
    }

    #[test]
    fn completed_requires_matching_digest() {
        let outcomes = vec![outcome(1, CaseStatus::Completed)];
        let m =
            RunManifest::from_outcomes("t", vec![], 10, 7, 1, Duration::from_millis(10), &outcomes);
        let id = outcomes[0].spec.id();
        let digest = digest::hex(outcomes[0].spec.digest());
        assert!(m.completed(&id, &digest));
        assert!(!m.completed(&id, "0000000000000000"));
        assert!(!m.completed("other", &digest));
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join(format!("stashdir_manifest_{}", std::process::id()));
        let m = RunManifest::from_outcomes(
            "t",
            vec![],
            10,
            7,
            1,
            Duration::from_millis(10),
            &[outcome(3, CaseStatus::Completed)],
        );
        m.save(&dir).unwrap();
        let back = RunManifest::load(&dir).unwrap();
        assert_eq!(back.cases.len(), 1);
        assert_eq!(back.harness_version, env!("CARGO_PKG_VERSION"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_is_none() {
        assert!(RunManifest::load(Path::new("/nonexistent/run")).is_none());
    }

    #[test]
    fn truncated_manifest_is_quarantined_on_load() {
        let dir = std::env::temp_dir().join(format!("stashdir_manifest_q_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = RunManifest::path(&dir);
        // A manifest cut off mid-write (the pre-atomic-write failure mode).
        std::fs::write(&path, "{\"run\": \"t\", \"cases\": [{\"id\": \"x").unwrap();
        assert!(RunManifest::load(&dir).is_none());
        assert!(!path.exists(), "corrupt manifest must be moved aside");
        let q = dir.join("manifest.json.corrupt");
        assert!(q.exists(), "evidence must survive in quarantine");
        std::fs::remove_dir_all(&dir).ok();
    }
}
