//! A live progress line for parallel sweeps: `done/total`, failure
//! count, ETA, and worker utilization, rewritten in place on stderr.

use crate::pool::CaseStatus;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Tracks and renders sweep progress. One instance per pool invocation,
/// driven from the collector thread (no locking needed).
pub struct Progress {
    total: usize,
    done: usize,
    failed: usize,
    skipped: usize,
    jobs: usize,
    busy: Duration,
    started: Instant,
    last_id: String,
}

impl Progress {
    /// Starts tracking a sweep of `total` cases on `jobs` workers.
    pub fn new(total: usize, jobs: usize) -> Self {
        Progress {
            total,
            done: 0,
            failed: 0,
            skipped: 0,
            jobs: jobs.max(1),
            busy: Duration::ZERO,
            started: Instant::now(),
            last_id: String::new(),
        }
    }

    /// Records one finished case and repaints the line.
    pub fn case_done(&mut self, id: &str, status: CaseStatus, duration: Duration) {
        self.done += 1;
        self.busy += duration;
        match status {
            CaseStatus::Failed | CaseStatus::TimedOut => self.failed += 1,
            CaseStatus::Skipped => self.skipped += 1,
            CaseStatus::Completed => {}
        }
        self.last_id = id.to_string();
        self.repaint();
    }

    /// Seconds-of-work remaining estimate from mean case duration and
    /// remaining count, divided across workers. `None` until one case
    /// has finished.
    pub fn eta(&self) -> Option<Duration> {
        let ran = self.done - self.skipped;
        if ran == 0 {
            return None;
        }
        let mean = self.busy / ran as u32;
        let remaining = (self.total - self.done) as u32;
        Some(mean * remaining / self.jobs as u32)
    }

    /// Fraction of worker capacity spent simulating so far (1.0 = all
    /// workers busy the whole time; low values mean stealing couldn't
    /// fill the tail or cases are skipping).
    pub fn utilization(&self) -> f64 {
        let wall = self.started.elapsed().as_secs_f64();
        if wall <= 0.0 {
            return 0.0;
        }
        (self.busy.as_secs_f64() / (wall * self.jobs as f64)).min(1.0)
    }

    fn repaint(&self) {
        let eta = match self.eta() {
            Some(d) => format_duration(d),
            None => "--".to_string(),
        };
        let mut line = format!(
            "\r[{}/{}] failed {}  eta {}  util {:>3.0}%  {}",
            self.done,
            self.total,
            self.failed,
            eta,
            100.0 * self.utilization(),
            self.last_id,
        );
        // Pad to clear leftovers from a longer previous id.
        const WIDTH: usize = 110;
        if line.len() < WIDTH {
            line.push_str(&" ".repeat(WIDTH - line.len()));
        }
        let mut err = std::io::stderr().lock();
        let _ = err.write_all(line.as_bytes());
        let _ = err.flush();
    }

    /// Ends the progress line with a newline and a summary.
    pub fn finish(&mut self) {
        let wall = self.started.elapsed();
        eprintln!(
            "\n{} cases in {} wall ({} of simulation across {} workers, {:.0}% utilization); {} failed, {} skipped",
            self.done,
            format_duration(wall),
            format_duration(self.busy),
            self.jobs,
            100.0 * self.utilization(),
            self.failed,
            self.skipped,
        );
    }
}

/// `mm:ss` (or `h:mm:ss`) rendering.
fn format_duration(d: Duration) -> String {
    let secs = d.as_secs();
    if secs >= 3600 {
        format!("{}:{:02}:{:02}", secs / 3600, (secs / 60) % 60, secs % 60)
    } else {
        format!("{}:{:02}", secs / 60, secs % 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_and_utilization_track_work() {
        let mut p = Progress::new(4, 2);
        assert!(p.eta().is_none());
        p.done = 2;
        p.busy = Duration::from_secs(4);
        let eta = p.eta().unwrap();
        // mean 2 s/case, 2 cases left over 2 workers -> ~2 s.
        assert_eq!(eta, Duration::from_secs(2));
        assert!(p.utilization() >= 0.0 && p.utilization() <= 1.0);
    }

    #[test]
    fn duration_formats() {
        assert_eq!(format_duration(Duration::from_secs(61)), "1:01");
        assert_eq!(format_duration(Duration::from_secs(3723)), "1:02:03");
    }
}
