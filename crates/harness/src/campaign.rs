//! Coverage-guided multi-fault chaos campaigns (E19).
//!
//! The single-fault chaos smoke (E17) answers "does each detector catch
//! its class?". This module closes the *coverage* loop on top of it:
//!
//! 1. **Baseline round** — the seven E17-style single-class cases run
//!    with transition witnessing on, establishing the single-fault
//!    coverage floor.
//! 2. **Pairwise round** — fault classes composed two at a time through
//!    [`FaultBurst`] schedules, re-proving the E17 catch property under
//!    composition (the `pairwise gate`).
//! 3. **Adaptive rounds** — the driver diffs witnessed transitions
//!    against the reachable sets of the lint protocol-model artifact
//!    ([`ReachableModel`]) and schedules *recipes* (workload × backend ×
//!    mild fault schedule) biased toward the still-unexercised pairs,
//!    until coverage plateaus or the round budget runs out.
//!
//! Every case runs through the ordinary pool/manifest/artifact pipeline,
//! so an interrupted campaign resumes from its per-case artifacts. The
//! accumulated coverage lands in a deterministic
//! `stashdir/chaos-coverage/v1` artifact, and the first reproducible
//! bursty failure is delta-debugged ([`minimize`]) down to the smallest
//! seeded [`FaultConfig`] that still reproduces it, saved next to the
//! case's artifact (and its embedded diag snapshot).

use crate::experiments::ResultSet;
use crate::fsio::write_atomic;
use crate::params::Params;
use crate::plan::{derive_seed, CaseSpec};
use crate::pool::RunOptions;
use crate::runner::{execute_cases, PersistOptions};
use stashdir::common::json::Value;
use stashdir::protocol::model::ReachableModel;
use stashdir::{
    expected_detector, CoverageRatio, DirReplPolicy, DirSpec, FaultBurst, FaultClass, FaultConfig,
    Machine, SimReport, SystemConfig, Workload,
};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};

/// Schema id of the campaign coverage artifact.
pub const COVERAGE_SCHEMA: &str = "stashdir/chaos-coverage/v1";

/// Witnessed hit counts, keyed section → (row, col). `BTreeMap` keeps
/// artifact rendering deterministic.
pub type CoverageMap = BTreeMap<String, BTreeMap<(String, String), u64>>;

/// Everything one campaign invocation needs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Run name: manifest, case artifacts and `coverage.json` live in
    /// `<out_root>/<run>/`.
    pub run: String,
    /// Output root (the sweep default is `results/`).
    pub out_root: PathBuf,
    /// Ops/seed driving every case.
    pub params: Params,
    /// Adaptive-round budget (beyond the baseline and pairwise rounds).
    pub rounds: usize,
    /// Stop after this many consecutive adaptive rounds with no new
    /// witnessed pairs.
    pub plateau: usize,
    /// Path to a `protocol_model.json` artifact; `None` falls back to
    /// the in-crate model checker ([`ReachableModel::builtin`]).
    pub model_path: Option<PathBuf>,
    /// Pool options (jobs, progress, timeouts).
    pub options: RunOptions,
    /// Artifact persistence (campaigns force `resume` internally so
    /// later rounds reuse earlier rounds' artifacts).
    pub persist: PersistOptions,
}

impl CampaignConfig {
    /// A campaign with defaults mirroring the sweep binary.
    pub fn new(run: impl Into<String>) -> CampaignConfig {
        CampaignConfig {
            run: run.into(),
            out_root: PathBuf::from("results"),
            params: Params::default(),
            rounds: 4,
            plateau: 2,
            model_path: None,
            options: RunOptions::default(),
            persist: PersistOptions::default(),
        }
    }
}

/// One round's ledger line in the coverage artifact.
#[derive(Debug, Clone)]
pub struct RoundRecord {
    /// Round name (`baseline`, `pairwise`, `adaptive-1`, ...).
    pub name: String,
    /// Cases scheduled this round.
    pub cases: usize,
    /// Reachable pairs first witnessed this round.
    pub new_pairs: usize,
    /// Cumulative witnessed reachable pairs after the round.
    pub witnessed: usize,
}

/// The smallest reproducer the minimizer found for a failing case.
#[derive(Debug, Clone)]
pub struct MinimizedFailure {
    /// Id of the failing case the reproducer was minimized from.
    pub case_id: String,
    /// Failure signature both the original and the reproducer show.
    pub signature: String,
    /// The minimized plan, replayable via `FaultConfig::from_str`.
    pub plan: FaultConfig,
    /// Where the reproducer artifact was written.
    pub path: PathBuf,
}

/// What a finished campaign produced.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Path of the `stashdir/chaos-coverage/v1` artifact.
    pub artifact_path: PathBuf,
    /// Reachable pairs witnessed across all rounds.
    pub witnessed: usize,
    /// Reachable pairs in the model (all sections).
    pub reachable: usize,
    /// Reachable pairs the single-fault baseline round witnessed — the
    /// floor the campaign must strictly improve on.
    pub baseline_witnessed: usize,
    /// Fault classes caught by their expected detector in at least one
    /// pairwise-composed case.
    pub classes_caught: usize,
    /// Total fault classes (the pairwise gate denominator).
    pub classes_total: usize,
    /// Per-round ledger.
    pub rounds: Vec<RoundRecord>,
    /// The minimized reproducer, when a bursty case failed.
    pub minimized: Option<MinimizedFailure>,
    /// Cases that panicked or timed out across all rounds.
    pub failed: usize,
}

impl CampaignOutcome {
    /// `true` when composing classes pairwise caught every class.
    pub fn pairwise_pass(&self) -> bool {
        self.classes_caught == self.classes_total
    }

    /// `true` when the campaign witnessed strictly more reachable pairs
    /// than the single-fault baseline round.
    pub fn improved(&self) -> bool {
        self.witnessed > self.baseline_witnessed
    }
}

// ---------------------------------------------------------------- model

/// Loads the reachable-transition model: the lint artifact when `path`
/// is given and readable, the in-crate model checker otherwise. Either
/// way the `fault_response` section (which lives above the protocol
/// crate) is filled in from the fault taxonomy when absent.
///
/// # Errors
///
/// Returns `InvalidData` when a given artifact exists but does not
/// parse; a missing file silently falls back to the builtin model so
/// scratch checkouts work.
pub fn load_model(path: Option<&Path>) -> io::Result<(ReachableModel, String)> {
    let (mut model, origin) = match path {
        Some(p) if p.exists() => {
            let text = std::fs::read_to_string(p)?;
            let model = ReachableModel::parse(&text).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", p.display()))
            })?;
            (model, p.display().to_string())
        }
        _ => (ReachableModel::builtin(), "builtin".to_string()),
    };
    model
        .sections
        .entry("fault_response".to_string())
        .or_insert_with(|| {
            FaultClass::ALL
                .iter()
                .map(|&c| (format!("{c:?}"), format!("{:?}", expected_detector(c))))
                .collect()
        });
    Ok((model, origin))
}

// ---------------------------------------------------------------- cases

fn eighth() -> CoverageRatio {
    CoverageRatio::new(1, 8)
}

/// The E17 chaos machine: 8 cores, deliberately tight 2-way stash@1/8 so
/// eviction pressure creates victims for every fault class.
fn tight_stash() -> DirSpec {
    DirSpec::Stash {
        coverage: eighth(),
        assoc: 2,
        repl: DirReplPolicy::PrivateFirstLru,
    }
}

fn chaos_config(dir: DirSpec) -> SystemConfig {
    SystemConfig::default().with_cores(8).with_dir(dir)
}

/// Chaos rounds cap ops like E17: a few hundred suffice to build victim
/// state, and liveness cases burn watchdog-bound cycles regardless.
fn chaos_ops(p: Params) -> usize {
    p.ops.min(400)
}

/// An always-on burst window (len 0 = never switches off).
fn steady(class: FaultClass, onset: u64, rate_per_mille: u32) -> FaultBurst {
    FaultBurst {
        class,
        onset,
        len: 0,
        gap: 0,
        rate_per_mille,
    }
}

/// The baseline round: every fault class alone, E17's machine and
/// workload, with transition witnessing on. This is the single-fault
/// coverage floor the campaign must beat.
pub fn baseline_cases(p: Params) -> Vec<CaseSpec> {
    FaultClass::ALL
        .iter()
        .map(|&class| {
            CaseSpec::new(
                chaos_config(tight_stash()),
                Workload::DataParallel,
                chaos_ops(p),
                p.seed,
            )
            .with_fault(FaultConfig::for_class(class, p.seed).with_witness())
        })
        .collect()
}

/// The pairwise round: all seven classes composed two at a time through
/// burst schedules, each pair scheduled so both members inject before
/// the run's only detection point. A faulty run has exactly one such
/// point — the state-corruption classes quiesce at first application,
/// the watchdog stops the clock, and dropped grants surface only at the
/// final invariant sweep of a run that completes — so every pair is
/// built around which point fires and what still injects before it:
///
/// * `sharer_flip` rides with `noc_duplicate`: both strike within the
///   first few directory transactions, and the duplicate is sent before
///   the flip's quiesce freezes the network;
/// * `stash_spurious` and `stash_clear` each ride with a *mild*
///   `noc_delay` (64-cycle jitter, not the default black-hole): jitter
///   injects from the first message without hanging any requester, so
///   the corruption's victim still forms. That matters for
///   `stash_clear`, whose victim needs tens of kilocycles of
///   eviction-pressure warm-up that any traffic-hanging partner
///   (drops, black-holed messages) starves out entirely;
/// * `drop_grant` also rides with mild `noc_delay`: neither quiesces,
///   so the run completes and the final sweep flags the dropped grants;
/// * the two watchdog classes share a case, phased so the stuck block
///   lands in the first hundred cycles and message black-holing starts
///   only after it — starving progress together until the watchdog
///   trips once for both. This is the one pair that keeps the
///   black-hole delay, since `noc_delay`'s catch is *being* the stall.
pub fn pairwise_cases(p: Params) -> Vec<CaseSpec> {
    use FaultClass::*;
    // A single hot window: on at `onset`, off `len` cycles later for the
    // rest of any realistic run.
    let window = |class, onset, len, rate_per_mille| FaultBurst {
        class,
        onset,
        len,
        gap: 1 << 30,
        rate_per_mille,
    };
    const JITTER: u64 = 64;
    const BLACK_HOLE: u64 = 50_000_000;
    let pairs: [([FaultBurst; 2], u64); 5] = [
        (
            [steady(SharerFlip, 0, 1000), steady(NocDuplicate, 0, 1000)],
            BLACK_HOLE,
        ),
        (
            [steady(StashSpurious, 0, 1000), steady(NocDelay, 0, 1000)],
            JITTER,
        ),
        (
            [steady(StashClear, 0, 1000), steady(NocDelay, 0, 100)],
            JITTER,
        ),
        (
            [steady(DropGrant, 0, 100), steady(NocDelay, 0, 200)],
            JITTER,
        ),
        (
            [
                window(StuckTransient, 0, 100, 400),
                steady(NocDelay, 100, 1000),
            ],
            BLACK_HOLE,
        ),
    ];
    pairs
        .iter()
        .map(|&([a, b], delay_cycles)| {
            let mut fault = FaultConfig::for_campaign(p.seed)
                .with_burst(a)
                .with_burst(b)
                .with_witness();
            fault.delay_cycles = delay_cycles;
            CaseSpec::new(
                chaos_config(tight_stash()),
                Workload::DataParallel,
                chaos_ops(p),
                p.seed,
            )
            .with_fault(fault)
        })
        .collect()
}

/// Evaluates the pairwise gate over `cases`: a class counts as caught
/// when at least one composed case both injected it and saw its
/// expected detector fire.
pub fn pairwise_catch(cases: &[CaseSpec], results: &ResultSet) -> (usize, usize) {
    let caught = FaultClass::ALL
        .iter()
        .filter(|&&class| {
            cases.iter().any(|c| {
                let Some(f) = &c.fault else { return false };
                f.enabled_classes().contains(&class)
                    && results.get(&c.id()).is_some_and(|r| {
                        r.fault.injected_for(class) > 0
                            && r.fault.detected_for(expected_detector(class)) > 0
                    })
            })
        })
        .count();
    (caught, FaultClass::ALL.len())
}

// ---------------------------------------------------------------- recipes

/// A coverage recipe: a machine/workload shape that exercises a family
/// of transitions, plus the predicate naming the (section, row, col)
/// pairs it targets. Adaptive rounds schedule exactly the recipes whose
/// targets are still unwitnessed.
struct Recipe {
    dir: fn() -> DirSpec,
    workload: Workload,
    notify_clean: bool,
    /// Pins the [`mild_fault`] flavor instead of rotating — recipes
    /// whose targets *depend* on the perturbation (the drop-grant
    /// recipes chasing Invalid-row probes) set this.
    flavor: Option<u64>,
    /// Shrinks the private hierarchy so the working set overflows L2.
    /// The home Put rows only exist as L2-eviction notifications, which
    /// the default 256 KiB L2 almost never sends at campaign op counts.
    tiny_l2: bool,
    targets: fn(&str, &str, &str) -> bool,
}

impl Default for Recipe {
    fn default() -> Recipe {
        Recipe {
            dir: tight_stash,
            workload: Workload::Uniform,
            notify_clean: true,
            flavor: None,
            tiny_l2: false,
            targets: |_, _, _| false,
        }
    }
}

/// Applies a recipe's machine shape: backend, clean-eviction
/// notifications, and (optionally) a 16 KiB L2 over a 4 KiB L1 so
/// evictions — and therefore Put requests — are constant.
fn recipe_config(r: &Recipe) -> SystemConfig {
    use stashdir::mem::{CacheConfig, ReplKind};
    let mut config = chaos_config((r.dir)());
    config.notify_clean_evictions = r.notify_clean;
    if r.tiny_l2 {
        config.l1 = CacheConfig::new(4 * 1024, 2, 64, 1, ReplKind::Lru);
        config.l2 = CacheConfig::new(16 * 1024, 2, 64, 8, ReplKind::Lru);
    }
    config
}

/// The recipe menu, in scheduling priority order. Every recipe runs
/// under a *mild* fault schedule (sparse, short perturbations that keep
/// the run live), so its transitions count as witnessed-under-fault.
fn recipes() -> Vec<Recipe> {
    vec![
        Recipe {
            // Migratory RMW objects silently evicted from a tight stash:
            // discovery rounds against M/E hidden copies.
            workload: Workload::Migratory,
            targets: |s, _, c| s == "private_probe" && c.starts_with("Discovery"),
            ..Recipe::default()
        },
        Recipe {
            // Ring buffers force reader/writer forwarding.
            workload: Workload::ProducerConsumer,
            targets: |s, _, c| s == "private_probe" && (c == "FwdGetS" || c == "FwdGetM"),
            ..Recipe::default()
        },
        Recipe {
            // Silent clean evictions leave stale sharer entries, so
            // probes chase copies that are already Invalid.
            workload: Workload::Canneal,
            notify_clean: false,
            targets: |s, r, _| s == "private_probe" && r == "Invalid",
            ..Recipe::default()
        },
        Recipe {
            // Contended locks upgrade Shared lines in place.
            workload: Workload::LockContended,
            targets: |s, r, _| s == "home" && r == "Upgrade",
            ..Recipe::default()
        },
        Recipe {
            // Tree traversal under constant L2 pressure with clean-
            // eviction notifications: the Put request rows, including
            // the silent-eviction Untracked columns.
            workload: Workload::Tree,
            tiny_l2: true,
            targets: |s, r, _| s == "home" && r.starts_with("Put"),
            ..Recipe::default()
        },
        Recipe {
            // Sparse backend at the same pressure: inclusion Recalls and
            // eviction invalidations.
            dir: || DirSpec::Sparse {
                coverage: CoverageRatio::new(1, 8),
                assoc: 2,
                repl: DirReplPolicy::Lru,
            },
            workload: Workload::Stencil,
            targets: |s, _, c| s == "private_probe" && (c == "Recall" || c == "Inv"),
            ..Recipe::default()
        },
        Recipe {
            // Limited pointers overflow into Inv broadcasts under
            // all-to-all sharing.
            dir: || DirSpec::LimitedPtr {
                coverage: CoverageRatio::new(1, 8),
                assoc: 2,
                k: 2,
            },
            workload: Workload::Fft,
            targets: |s, _, c| s == "private_probe" && c == "Inv",
            ..Recipe::default()
        },
        Recipe {
            // DLS recalls the single tracked copy on second touch.
            dir: || DirSpec::Dls,
            workload: Workload::Migratory,
            targets: |s, _, c| s == "private_probe" && c == "Recall",
            ..Recipe::default()
        },
        Recipe {
            // Opaque backend runs the same home decisions through its
            // indirection table.
            dir: || DirSpec::Opaque {
                coverage: CoverageRatio::new(1, 8),
                assoc: 2,
            },
            workload: Workload::DataParallel,
            targets: |s, _, _| s == "home",
            ..Recipe::default()
        },
        Recipe {
            // Hot read-shared table: wide Shared views at the home.
            workload: Workload::ReadMostly,
            targets: |s, _, c| s == "home" && c == "Shared",
            ..Recipe::default()
        },
        Recipe {
            // A full-map home never loses track of a block, so the L2
            // eviction stream notifies a directory that still holds the
            // Exclusive view — the tracked PutE/PutM columns.
            dir: || DirSpec::FullMap,
            workload: Workload::DataParallel,
            tiny_l2: true,
            targets: |s, r, c| s == "home" && r.starts_with("Put") && c == "Exclusive",
            ..Recipe::default()
        },
        Recipe {
            // Full-map under a read-shared table: PutS notifications
            // while the home still holds the Shared view.
            dir: || DirSpec::FullMap,
            workload: Workload::ReadMostly,
            tiny_l2: true,
            targets: |s, r, c| s == "home" && r == "PutS" && c == "Shared",
            ..Recipe::default()
        },
        Recipe {
            // Read-mostly writes on a tight stash under L2 pressure:
            // upgrades and shared-eviction Puts race the directory's own
            // evictions onto Untracked views, and the churn of silently
            // dropped then re-learned entries feeds discovery rounds
            // against Modified and Shared hidden copies.
            workload: Workload::ReadMostly,
            tiny_l2: true,
            targets: |s, r, c| {
                (s == "home" && (r == "Upgrade" || r.starts_with("Put")) && c == "Untracked")
                    || (s == "private_probe"
                        && (r == "Modified" || r == "Shared")
                        && c.starts_with("Discovery"))
            },
            ..Recipe::default()
        },
        Recipe {
            // Dropped grants strand forwarding targets Invalid: the
            // directory still routes FwdGetS/FwdGetM at the phantom
            // owner.
            workload: Workload::ProducerConsumer,
            flavor: Some(2),
            targets: |s, r, c| {
                s == "private_probe" && r == "Invalid" && (c == "FwdGetS" || c == "FwdGetM")
            },
            ..Recipe::default()
        },
        Recipe {
            // Same trickle against eviction pressure: Inv and Recall
            // probes chase phantom holders left by dropped grants.
            dir: || DirSpec::Sparse {
                coverage: CoverageRatio::new(1, 8),
                assoc: 2,
                repl: DirReplPolicy::Lru,
            },
            workload: Workload::Stencil,
            flavor: Some(2),
            targets: |s, r, c| {
                s == "private_probe" && r == "Invalid" && (c == "Inv" || c == "Recall")
            },
            ..Recipe::default()
        },
        Recipe {
            // Contended RMW with dropped grants on the tight stash: the
            // widest chaos mix for the remaining Invalid-row probes.
            workload: Workload::LockContended,
            flavor: Some(2),
            targets: |s, r, _| s == "private_probe" && r == "Invalid",
            ..Recipe::default()
        },
        Recipe {
            // Generic stressor — catch-all for any remaining protocol
            // pair (never scheduled while targeted recipes still apply).
            workload: Workload::Uniform,
            targets: |s, _, _| s != "fault_response",
            ..Recipe::default()
        },
    ]
}

/// A mild schedule for coverage runs: sparse, short perturbations that
/// keep the machine live to the end of the trace. Flavor 0 gets brief
/// NoC-delay bursts (64-cycle hiccups, not black holes); flavor 1 gets
/// brief stuck-transient windows (400-cycle busy pins); flavor 2 gets a
/// low-rate drop-grant trickle, whose dropped grants strand requesters
/// Invalid while the directory still lists them — the only way probes
/// ever chase an Invalid "owner". Either way the fault layer is active
/// for the whole run, so every transition the run crosses is witnessed
/// under fault.
fn mild_fault(seed: u64, flavor: u64) -> FaultConfig {
    let mut cfg = FaultConfig::for_campaign(seed);
    match flavor % 3 {
        0 => {
            cfg.delay_cycles = 64;
            cfg = cfg.with_burst(FaultBurst {
                class: FaultClass::NocDelay,
                onset: 0,
                len: 400,
                gap: 4_000,
                rate_per_mille: 60,
            });
        }
        1 => {
            cfg.stuck_cycles = 400;
            cfg = cfg.with_burst(FaultBurst {
                class: FaultClass::StuckTransient,
                onset: 0,
                len: 300,
                gap: 3_000,
                rate_per_mille: 30,
            });
        }
        _ => {
            cfg = cfg.with_burst(FaultBurst {
                class: FaultClass::DropGrant,
                onset: 0,
                len: 200,
                gap: 2_000,
                rate_per_mille: 50,
            });
        }
    }
    cfg.with_witness()
}

/// Expands the recipes targeting still-unwitnessed pairs into cases for
/// adaptive round `round` (0-based). Deterministic given (uncovered,
/// params, round).
fn adaptive_cases(
    uncovered: &BTreeMap<String, BTreeSet<(String, String)>>,
    p: Params,
    round: usize,
) -> Vec<CaseSpec> {
    let wants = |r: &Recipe| {
        uncovered
            .iter()
            .any(|(s, pairs)| pairs.iter().any(|(row, col)| (r.targets)(s, row, col)))
    };
    recipes()
        .iter()
        .filter(|r| wants(r))
        .enumerate()
        .map(|(i, r)| {
            let seed = derive_seed(p.seed, (round as u64) * 97 + i as u64 + 1);
            let flavor = r.flavor.unwrap_or(i as u64 + round as u64);
            CaseSpec::new(recipe_config(r), r.workload, p.ops.min(2_000), seed)
                .with_fault(mild_fault(seed, flavor))
        })
        .collect()
}

// ---------------------------------------------------------------- coverage

/// Folds one report's witnessed transitions into the accumulator.
pub fn accumulate(acc: &mut CoverageMap, report: &SimReport) {
    for h in &report.coverage {
        *acc.entry(h.section.clone())
            .or_default()
            .entry((h.row.clone(), h.col.clone()))
            .or_insert(0) += h.hits;
    }
}

/// Counts witnessed pairs that are also reachable in the model.
pub fn witnessed_reachable(model: &ReachableModel, acc: &CoverageMap) -> usize {
    model
        .sections
        .iter()
        .map(|(name, reachable)| {
            acc.get(name)
                .map(|hits| hits.keys().filter(|p| reachable.contains(p)).count())
                .unwrap_or(0)
        })
        .sum()
}

/// Reachable pairs not yet witnessed, per section.
fn uncovered_pairs(
    model: &ReachableModel,
    acc: &CoverageMap,
) -> BTreeMap<String, BTreeSet<(String, String)>> {
    model
        .sections
        .iter()
        .map(|(name, reachable)| {
            let empty = BTreeMap::new();
            let hits = acc.get(name).unwrap_or(&empty);
            let missing: BTreeSet<(String, String)> = reachable
                .iter()
                .filter(|p| !hits.contains_key(*p))
                .cloned()
                .collect();
            (name.clone(), missing)
        })
        .collect()
}

/// Renders the coverage artifact. Everything is drawn from `BTreeMap`s
/// and sorted vectors, so the same campaign inputs produce byte-
/// identical artifacts.
#[allow(clippy::too_many_arguments)]
fn coverage_artifact(
    model: &ReachableModel,
    origin: &str,
    acc: &CoverageMap,
    rounds: &[RoundRecord],
    pairwise: (usize, usize),
    baseline_witnessed: usize,
    params: Params,
    case_ids: &BTreeSet<String>,
) -> Value {
    let pair = |row: &str, col: &str| Value::array(vec![Value::from(row), Value::from(col)]);
    let empty = BTreeMap::new();
    let sections: Vec<Value> = model
        .sections
        .iter()
        .map(|(name, reachable)| {
            let hits_map = acc.get(name).unwrap_or(&empty);
            let hits: Vec<Value> = hits_map
                .iter()
                .filter(|(p, _)| reachable.contains(*p))
                .map(|((row, col), n)| {
                    Value::array(vec![
                        Value::from(row.as_str()),
                        Value::from(col.as_str()),
                        Value::from(*n),
                    ])
                })
                .collect();
            let unwitnessed: Vec<Value> = reachable
                .iter()
                .filter(|p| !hits_map.contains_key(*p))
                .map(|(row, col)| pair(row, col))
                .collect();
            let unexpected: Vec<Value> = hits_map
                .keys()
                .filter(|p| !reachable.contains(*p))
                .map(|(row, col)| pair(row, col))
                .collect();
            Value::object(vec![
                ("name".into(), Value::from(name.as_str())),
                ("reachable".into(), Value::from(reachable.len() as u64)),
                ("witnessed".into(), Value::from(hits.len() as u64)),
                ("hits".into(), Value::array(hits)),
                ("unwitnessed".into(), Value::array(unwitnessed)),
                ("unexpected".into(), Value::array(unexpected)),
            ])
        })
        .collect();
    let rounds: Vec<Value> = rounds
        .iter()
        .map(|r| {
            Value::object(vec![
                ("name".into(), Value::from(r.name.as_str())),
                ("cases".into(), Value::from(r.cases as u64)),
                ("new_pairs".into(), Value::from(r.new_pairs as u64)),
                ("witnessed".into(), Value::from(r.witnessed as u64)),
            ])
        })
        .collect();
    Value::object(vec![
        ("schema".into(), Value::from(COVERAGE_SCHEMA)),
        ("model".into(), Value::from(origin)),
        ("seed".into(), Value::from(params.seed)),
        ("ops".into(), Value::from(params.ops as u64)),
        ("rounds".into(), Value::array(rounds)),
        ("sections".into(), Value::array(sections)),
        (
            "pairwise".into(),
            Value::object(vec![
                ("caught".into(), Value::from(pairwise.0 as u64)),
                ("total".into(), Value::from(pairwise.1 as u64)),
            ]),
        ),
        (
            "total".into(),
            Value::object(vec![
                (
                    "reachable".into(),
                    Value::from(model.total_reachable() as u64),
                ),
                (
                    "witnessed".into(),
                    Value::from(witnessed_reachable(model, acc) as u64),
                ),
                (
                    "baseline_witnessed".into(),
                    Value::from(baseline_witnessed as u64),
                ),
            ]),
        ),
        (
            "cases".into(),
            Value::array(case_ids.iter().map(|id| Value::from(id.as_str())).collect()),
        ),
    ])
}

// ---------------------------------------------------------------- minimizer

/// A failure's identity for minimization: the detector-level prefix of
/// the first violation (up to the first `:`), or `watchdog` for trips
/// that only the watchdog counters show. Two runs with equal signatures
/// fail the same way.
pub fn failure_signature(report: &SimReport) -> Option<String> {
    if let Some(v) = report.violations.first() {
        return Some(v.split(':').next().unwrap_or(v).trim().to_string());
    }
    if report.fault.detected_watchdog > 0 {
        return Some("watchdog".to_string());
    }
    None
}

/// Replays `spec` with `fault` substituted, off the pool (the minimizer
/// probes dozens of candidate plans; direct machine runs keep that
/// cheap and strictly deterministic).
fn replay(spec: &CaseSpec, fault: &FaultConfig) -> SimReport {
    let traces = spec
        .workload
        .generate(spec.config.cores, spec.ops, spec.seed);
    Machine::new(spec.config.clone())
        .with_faults(fault.clone())
        .run(traces)
}

/// Delta-debugs `spec`'s fault plan down to a 1-minimal reproducer for
/// `signature`: greedily removes bursts while the failure reproduces
/// (so in the result, removing *any* burst loses the failure), then
/// tries to pin the plan to a single injection site.
///
/// The returned config replays the failure via
/// `Machine::with_faults` — its `Display` string round-trips through
/// `FaultConfig::from_str` for use from a shell.
pub fn minimize(spec: &CaseSpec, signature: &str) -> FaultConfig {
    let mut cfg = spec.fault.clone().expect("minimize needs a faulty case");
    cfg.witness = false;
    loop {
        let shrunk = (0..cfg.bursts.len()).find_map(|i| {
            let mut cand = cfg.clone();
            cand.bursts.remove(i);
            (failure_signature(&replay(spec, &cand)).as_deref() == Some(signature)).then_some(cand)
        });
        match shrunk {
            Some(cand) => cfg = cand,
            None => break,
        }
    }
    // Finest granularity: a single would-fire opportunity. Only a few
    // early sites matter — the failure was already minimal per-burst.
    if cfg.sites.is_empty() {
        for site in 0..8 {
            let mut cand = cfg.clone();
            cand.sites = vec![site];
            if failure_signature(&replay(spec, &cand)).as_deref() == Some(signature) {
                cfg = cand;
                break;
            }
        }
    }
    cfg
}

/// Renders the minimized-reproducer artifact saved next to the failing
/// case's artifact (which embeds the diag snapshot).
fn minimized_artifact(m: &MinimizedFailure) -> Value {
    Value::object(vec![
        ("schema".into(), Value::from("stashdir/minimized-fault/v1")),
        ("case".into(), Value::from(m.case_id.as_str())),
        ("signature".into(), Value::from(m.signature.as_str())),
        ("plan".into(), Value::from(m.plan.to_string().as_str())),
        ("bursts".into(), Value::from(m.plan.bursts.len() as u64)),
    ])
}

// ---------------------------------------------------------------- driver

/// Runs a full campaign: baseline round, pairwise round, adaptive
/// rounds until plateau or budget, coverage artifact, and minimization
/// of the first reproducible bursty failure.
///
/// # Errors
///
/// Returns any I/O error from persisting artifacts, the manifest or the
/// coverage artifact, and `InvalidData` for an unparseable model.
pub fn run_campaign(cfg: &CampaignConfig) -> io::Result<CampaignOutcome> {
    let (model, origin) = load_model(cfg.model_path.as_deref())?;
    let persist = PersistOptions {
        resume: true,
        style: cfg.persist.style,
    };
    let mut all_cases: Vec<CaseSpec> = Vec::new();
    let mut acc: CoverageMap = CoverageMap::new();
    let mut results: ResultSet = ResultSet::new();
    let mut rounds: Vec<RoundRecord> = Vec::new();
    let mut failed = 0usize;

    // Executes the cumulative case list (earlier rounds resume from
    // their artifacts) and folds the new reports into the accumulator.
    let run_round = |name: &str,
                     new_cases: Vec<CaseSpec>,
                     all_cases: &mut Vec<CaseSpec>,
                     acc: &mut CoverageMap,
                     results: &mut ResultSet,
                     rounds: &mut Vec<RoundRecord>,
                     failed: &mut usize|
     -> io::Result<()> {
        let known: BTreeSet<String> = all_cases.iter().map(CaseSpec::id).collect();
        let fresh: Vec<CaseSpec> = new_cases
            .into_iter()
            .filter(|c| !known.contains(&c.id()))
            .collect();
        let count = fresh.len();
        all_cases.extend(fresh);
        let before = witnessed_reachable(&model, acc);
        let exec = execute_cases(
            all_cases,
            &cfg.run,
            &cfg.out_root,
            vec!["campaign".to_string()],
            cfg.params,
            &cfg.options,
            persist,
        )?;
        *failed = exec.failed + exec.timed_out;
        acc.clear();
        results.clear();
        for (id, report) in &exec.results {
            accumulate(acc, report);
            results.insert(id.clone(), report.clone());
        }
        let witnessed = witnessed_reachable(&model, acc);
        rounds.push(RoundRecord {
            name: name.to_string(),
            cases: count,
            new_pairs: witnessed.saturating_sub(before),
            witnessed,
        });
        Ok(())
    };

    run_round(
        "baseline",
        baseline_cases(cfg.params),
        &mut all_cases,
        &mut acc,
        &mut results,
        &mut rounds,
        &mut failed,
    )?;
    let baseline_witnessed = rounds.last().map(|r| r.witnessed).unwrap_or(0);

    let pairwise = pairwise_cases(cfg.params);
    run_round(
        "pairwise",
        pairwise.clone(),
        &mut all_cases,
        &mut acc,
        &mut results,
        &mut rounds,
        &mut failed,
    )?;
    let (classes_caught, classes_total) = pairwise_catch(&pairwise, &results);

    let mut flat_rounds = 0usize;
    for round in 0..cfg.rounds {
        let uncovered = uncovered_pairs(&model, &acc);
        if uncovered.values().all(BTreeSet::is_empty) {
            break;
        }
        let cases = adaptive_cases(&uncovered, cfg.params, round);
        if cases.is_empty() {
            break;
        }
        run_round(
            &format!("adaptive-{}", round + 1),
            cases,
            &mut all_cases,
            &mut acc,
            &mut results,
            &mut rounds,
            &mut failed,
        )?;
        if rounds.last().is_some_and(|r| r.new_pairs == 0) {
            flat_rounds += 1;
            if flat_rounds >= cfg.plateau {
                break;
            }
        } else {
            flat_rounds = 0;
        }
    }

    // Minimize the first bursty failure, in deterministic case order.
    let run_dir = cfg.out_root.join(&cfg.run);
    let minimized = all_cases
        .iter()
        .filter(|c| c.fault.as_ref().is_some_and(FaultConfig::has_bursts))
        .find_map(|c| {
            let sig = results.get(&c.id()).and_then(failure_signature)?;
            Some((c, sig))
        })
        .map(|(c, sig)| {
            let plan = minimize(c, &sig);
            let path = run_dir
                .join("cases")
                .join(format!("{}.minimized.json", c.id()));
            let m = MinimizedFailure {
                case_id: c.id(),
                signature: sig,
                plan,
                path,
            };
            write_atomic(&m.path, &(minimized_artifact(&m).render_pretty() + "\n")).map(|_| m)
        })
        .transpose()?;

    let case_ids: BTreeSet<String> = all_cases.iter().map(CaseSpec::id).collect();
    let artifact = coverage_artifact(
        &model,
        &origin,
        &acc,
        &rounds,
        (classes_caught, classes_total),
        baseline_witnessed,
        cfg.params,
        &case_ids,
    );
    let artifact_path = run_dir.join("coverage.json");
    write_atomic(&artifact_path, &(artifact.render_pretty() + "\n"))?;

    Ok(CampaignOutcome {
        artifact_path,
        witnessed: witnessed_reachable(&model, &acc),
        reachable: model.total_reachable(),
        baseline_witnessed,
        classes_caught,
        classes_total,
        rounds,
        minimized,
        failed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Params {
        // The pairwise compositions need the same victim-formation
        // warm-up as the E17 mutation gate (which also runs at 400).
        Params { ops: 400, seed: 7 }
    }

    fn tmp_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("stashdir_campaign_{tag}_{}", std::process::id()))
    }

    fn tiny_campaign(tag: &str) -> CampaignConfig {
        let mut cfg = CampaignConfig::new("camp");
        cfg.out_root = tmp_root(tag);
        cfg.params = tiny_params();
        cfg.rounds = 1;
        cfg.plateau = 1;
        cfg.options.jobs = 2;
        cfg.options.progress = false;
        cfg
    }

    #[test]
    fn model_fallback_has_all_four_sections() {
        let (model, origin) = load_model(None).expect("builtin model");
        assert_eq!(origin, "builtin");
        assert_eq!(model.sections.len(), 4);
        assert_eq!(model.section("fault_response").len(), 7);
        assert_eq!(model.total_reachable(), 48);
    }

    #[test]
    fn baseline_and_pairwise_cases_are_distinct_and_bursty() {
        let p = tiny_params();
        let base = baseline_cases(p);
        let pair = pairwise_cases(p);
        assert_eq!(base.len(), 7);
        assert_eq!(pair.len(), 5);
        let mut ids: Vec<String> = base.iter().chain(&pair).map(CaseSpec::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 12, "all campaign case ids unique");
        for c in &pair {
            let f = c.fault.as_ref().expect("pairwise cases carry faults");
            assert_eq!(f.bursts.len(), 2);
            assert!(f.witness);
        }
        // Every class appears in some pairwise composition.
        let mut classes: BTreeSet<&'static str> = BTreeSet::new();
        for c in &pair {
            for class in c.fault.as_ref().unwrap().enabled_classes() {
                classes.insert(class.label());
            }
        }
        assert_eq!(classes.len(), FaultClass::ALL.len());
    }

    #[test]
    fn adaptive_cases_target_only_uncovered_sections() {
        let (model, _) = load_model(None).unwrap();
        // Everything covered -> no recipes scheduled.
        let mut acc = CoverageMap::new();
        for (name, pairs) in &model.sections {
            for (row, col) in pairs {
                acc.entry(name.clone())
                    .or_default()
                    .insert((row.clone(), col.clone()), 1);
            }
        }
        let uncovered = uncovered_pairs(&model, &acc);
        assert!(adaptive_cases(&uncovered, tiny_params(), 0).is_empty());
        // Only Put rows missing -> the Put recipe (and the catch-all)
        // lead the schedule, and every scheduled case is witnessed.
        acc.get_mut("home")
            .unwrap()
            .retain(|(row, _), _| !row.starts_with("Put"));
        let uncovered = uncovered_pairs(&model, &acc);
        let cases = adaptive_cases(&uncovered, tiny_params(), 0);
        assert!(!cases.is_empty());
        // Every scheduled recipe targets a Put pair (or is the
        // catch-all); untargeted recipes stay off the schedule.
        assert!(cases.len() < recipes().len());
        for c in &cases {
            let f = c.fault.as_ref().expect("adaptive cases carry faults");
            assert!(f.witness && f.has_bursts());
        }
        assert!(cases.iter().any(|c| c.workload == Workload::Tree));
    }

    #[test]
    fn minimizer_result_is_one_minimal() {
        // Three bursts, only one of which can fail: the sharer flip.
        // The other two never reach their onset inside the run.
        let p = tiny_params();
        let never = 1_u64 << 40;
        let fault = FaultConfig::for_campaign(p.seed)
            .with_burst(steady(FaultClass::SharerFlip, 0, 1000))
            .with_burst(steady(FaultClass::NocDelay, never, 1000))
            .with_burst(steady(FaultClass::StuckTransient, never, 1000));
        let spec = CaseSpec::new(
            chaos_config(tight_stash()),
            Workload::DataParallel,
            chaos_ops(p),
            p.seed,
        )
        .with_fault(fault);
        let report = replay(&spec, spec.fault.as_ref().unwrap());
        let sig = failure_signature(&report).expect("sharer flip must fail");
        let min = minimize(&spec, &sig);
        assert_eq!(min.bursts.len(), 1, "dead bursts are removed");
        assert_eq!(min.bursts[0].class, FaultClass::SharerFlip);
        // 1-minimality: removing the surviving burst loses the failure.
        for i in 0..min.bursts.len() {
            let mut cand = min.clone();
            cand.bursts.remove(i);
            assert_ne!(
                failure_signature(&replay(&spec, &cand)).as_deref(),
                Some(sig.as_str()),
                "burst {i} is load-bearing"
            );
        }
        // The reproducer round-trips through its Display string.
        let text = min.to_string();
        let parsed: FaultConfig = text.parse().expect("replayable plan parses");
        assert_eq!(parsed, min);
    }

    #[test]
    fn campaign_is_deterministic_and_improves_on_baseline() {
        let cfg_a = tiny_campaign("det_a");
        let cfg_b = tiny_campaign("det_b");
        let a = run_campaign(&cfg_a).expect("campaign a");
        let b = run_campaign(&cfg_b).expect("campaign b");
        assert_eq!(a.failed, 0);
        assert!(a.improved(), "campaign must beat the single-fault floor");
        assert!(
            a.pairwise_pass(),
            "pairwise gate: {}/{}",
            a.classes_caught,
            a.classes_total
        );
        let text_a = std::fs::read_to_string(&a.artifact_path).unwrap();
        let text_b = std::fs::read_to_string(&b.artifact_path).unwrap();
        assert_eq!(text_a, text_b, "coverage artifacts are byte-identical");
        let ma = a.minimized.expect("pairwise failures minimize");
        let mb = b.minimized.expect("pairwise failures minimize");
        assert_eq!(ma.plan, mb.plan, "minimized plans are identical");
        assert!(ma.plan.bursts.len() <= 2);
        assert!(ma.path.exists());
        std::fs::remove_dir_all(&cfg_a.out_root).ok();
        std::fs::remove_dir_all(&cfg_b.out_root).ok();
    }
}
