//! Integration tests for the chaos layer's harness-facing guarantees:
//!
//! 1. **The hook layer is provably zero-cost.** Threading a *disabled*
//!    `FaultConfig` through the pool yields `SimReport` JSON byte-identical
//!    to plain runs of the same cases, and the artifacts carry no
//!    fault/snapshot keys — the chaos layer cannot perturb production
//!    sweeps it is not asked to perturb.
//! 2. **Faulty runs persist their evidence.** A case that injects damage
//!    completes (no panic, no hang), its artifact records the injection
//!    and detection counters, and the diagnostic snapshot survives the
//!    save/load round trip still matching the published schema.

use stashdir::common::json::Value;
use stashdir::sim::fault::validate_snapshot;
use stashdir::{
    expected_detector, CoverageRatio, DirReplPolicy, DirSpec, FaultClass, FaultConfig,
    SystemConfig, Workload,
};
use stashdir_harness::artifact::{load_report, report_to_json, ArtifactStyle};
use stashdir_harness::runner::{execute_cases, PersistOptions};
use stashdir_harness::{run_cases, CaseSpec, CaseStatus, ExperimentPlan, Params, RunOptions};
use std::path::PathBuf;

fn tmp_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("stashdir_chaos_{tag}_{}", std::process::id()))
}

/// A small cross-scheme plan: the zero-cost property must hold for every
/// directory organization, not just the one the chaos suite runs.
fn small_plan() -> ExperimentPlan {
    ExperimentPlan::new("chaos", SystemConfig::default().with_cores(4), 200)
        .dirs(vec![
            DirSpec::FullMap,
            DirSpec::stash(CoverageRatio::new(1, 8)),
        ])
        .workloads(vec![Workload::DataParallel, Workload::ProducerConsumer])
        .seeds(vec![7, 1234])
}

#[test]
fn disabled_fault_layer_is_byte_identical_at_the_artifact_level() {
    let plain = small_plan().expand();
    let threaded: Vec<CaseSpec> = plain
        .iter()
        .map(|c| c.clone().with_fault(FaultConfig::disabled()))
        .collect();

    let plain_out = run_cases(&plain, &RunOptions::default());
    let threaded_out = run_cases(&threaded, &RunOptions::default());

    for ((spec, p), t) in plain.iter().zip(&plain_out).zip(&threaded_out) {
        assert_eq!(p.status, CaseStatus::Completed, "{}", spec.id());
        assert_eq!(t.status, CaseStatus::Completed, "{}", spec.id());
        let p_json = report_to_json(p.report.as_ref().unwrap()).render_pretty();
        let t_json = report_to_json(t.report.as_ref().unwrap()).render_pretty();
        assert_eq!(
            p_json,
            t_json,
            "threading a disabled FaultConfig changed the artifact for {}",
            spec.id()
        );
        assert!(
            !p_json.contains("\"fault\"") && !p_json.contains("\"snapshot\""),
            "fault-free artifacts must keep the historical key set"
        );
    }
}

/// The chaos case the persistence test runs: tight 2-way stash directory
/// (so every fault class finds a victim) with one sharer-flip injection.
fn faulty_case() -> CaseSpec {
    let dir = DirSpec::Stash {
        coverage: CoverageRatio::new(1, 8),
        assoc: 2,
        repl: DirReplPolicy::PrivateFirstLru,
    };
    CaseSpec::new(
        SystemConfig::default().with_cores(8).with_dir(dir),
        Workload::DataParallel,
        400,
        7,
    )
    .with_fault(FaultConfig::for_class(FaultClass::SharerFlip, 7))
}

#[test]
fn faulty_artifact_persists_counters_and_snapshot() {
    let root = tmp_root("persist");
    std::fs::remove_dir_all(&root).ok();
    let cases = vec![faulty_case()];
    let exec = execute_cases(
        &cases,
        "run",
        &root,
        vec!["chaos".into()],
        Params { ops: 400, seed: 7 },
        &RunOptions::default(),
        PersistOptions {
            resume: false,
            style: ArtifactStyle::Pretty,
        },
    )
    .unwrap();
    assert_eq!(exec.failed, 0, "a faulty run must quiesce, not panic");

    let report = load_report(&exec.run_dir, &cases[0].id()).expect("artifact on disk");
    let f = report.fault;
    assert_eq!(f.injected_for(FaultClass::SharerFlip), 1);
    assert!(
        f.detected_for(expected_detector(FaultClass::SharerFlip)) > 0,
        "the checker must flag the flipped sharer: {f:?}"
    );
    assert_eq!(f.quiesced, 1, "detection quiesces the machine");
    let snapshot = report.snapshot.expect("quiesced run dumps a snapshot");
    let parsed = Value::parse(&snapshot).expect("snapshot is valid JSON");
    validate_snapshot(&parsed).expect("persisted snapshot matches the published schema");

    std::fs::remove_dir_all(&root).ok();
}
